"""PR 7 — crash recovery vs. full event replay.

Durability exists so a restarted session does *not* pay O(history): the
:class:`~repro.persist.SessionPersister` restores the newest snapshot
(O(live population)) and replays only the WAL tail past its watermark.
This benchmark builds a churn history (arrivals + expiries keeping a
bounded live population), checkpoints shortly before the "crash", then
measures

* ``replay``   — a fresh engine applying the full event history, and
* ``recover``  — snapshot restore + WAL-tail replay of the same state,

asserting bit-identical results and a >= 10x recovery speedup at the
100k-event acceptance scale.  Recovery cost tracks ``live + tail``, not
``history``, so the gap *widens* with longer histories.
"""

from __future__ import annotations

import json
import random
import tempfile
import time
from pathlib import Path

import pytest

from repro.core import FlexOffer
from repro.persist import SessionPersister
from repro.stream import OfferArrived, OfferExpired, StreamingEngine

try:
    from conftest import report
except ImportError:  # pragma: no cover - loaded by path (bench_to_json)

    def report(title: str, lines) -> None:
        """Plain-stdout stand-in when pytest's conftest is not importable."""
        print(f"\n=== {title} ===")
        for line in lines:
            print(f"  {line}")

#: Cheap per-offer measures so event application is not the bottleneck.
MEASURES = ["time", "energy", "vector"]

#: (total events in the history, live population held, WAL tail after the
#: last checkpoint)
SCALES = [
    (10_000, 1_000, 64),
    (100_000, 2_000, 64),
]


def synthetic_offer(rng: random.Random, index: int) -> FlexOffer:
    earliest = rng.randrange(0, 96)
    slices = []
    for _ in range(rng.randint(1, 4)):
        low = rng.randint(0, 3)
        slices.append((low, low + rng.randint(0, 3)))
    return FlexOffer(earliest, earliest + rng.randrange(0, 8), slices,
                     name=f"syn-{index}")


def churn_history(total_events: int, live_size: int, seed: int = 0) -> list:
    """``total_events`` arrivals/expiries holding ~``live_size`` offers live."""
    rng = random.Random(seed)
    events: list = []
    for index in range(live_size):
        events.append(OfferArrived(f"o{index}", synthetic_offer(rng, index)))
    oldest = 0
    index = live_size
    while len(events) < total_events:
        events.append(OfferExpired(f"o{oldest}"))
        oldest += 1
        if len(events) < total_events:
            events.append(OfferArrived(f"o{index}", synthetic_offer(rng, index)))
            index += 1
    return events


def run_scale(total_events: int, live_size: int, tail_events: int) -> dict:
    events = churn_history(total_events, live_size)
    checkpoint_at = len(events) - tail_events

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "session"
        persister = SessionPersister(directory, fsync=False)
        engine = StreamingEngine(measures=MEASURES)
        for position, event in enumerate(events):
            engine.apply(event)
            persister.log_event(event)
            if position + 1 == checkpoint_at:
                persister.checkpoint(engine)
        persister.commit()
        persister.wal.close()  # the crash: no final checkpoint
        reference = json.dumps(engine.export_state(), sort_keys=True)

        # --- full replay baseline -------------------------------------- #
        start = time.perf_counter()
        replayed = StreamingEngine(measures=MEASURES)
        for event in events:
            replayed.apply(event)
        replay_seconds = time.perf_counter() - start
        assert json.dumps(replayed.export_state(), sort_keys=True) == reference

        # --- snapshot + tail recovery ---------------------------------- #
        start = time.perf_counter()
        recovering = SessionPersister(directory, fsync=False)
        recovered = StreamingEngine(measures=MEASURES)
        stats, _ = recovering.recover(recovered)
        recovery_seconds = time.perf_counter() - start
        recovering.close()
        assert json.dumps(recovered.export_state(), sort_keys=True) == reference
        assert stats.replayed == tail_events

    return {
        "events": total_events,
        "live": live_size,
        "tail": tail_events,
        "replay_seconds": round(replay_seconds, 4),
        "recovery_seconds": round(recovery_seconds, 4),
        "speedup": round(replay_seconds / recovery_seconds, 1),
    }


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``."""
    scales = [SCALES[1]] if gate_scale else [SCALES[0]]
    records = []
    for total_events, live_size, tail_events in scales:
        results = run_scale(total_events, live_size, tail_events)
        records.append(
            {
                "name": f"recovery_{total_events}",
                "scale": total_events,
                "replay_seconds": results["replay_seconds"],
                "recovery_seconds": results["recovery_seconds"],
                "speedup": results["speedup"],
            }
        )
    return records


@pytest.mark.parametrize(
    "total_events,live_size,tail_events", SCALES, ids=lambda value: str(value)
)
def test_recovery_speedup(total_events, live_size, tail_events):
    results = run_scale(total_events, live_size, tail_events)

    report(f"Snapshot+tail recovery vs full replay ({total_events} events)", [
        f"full replay : {results['replay_seconds']:>8.3f} s",
        f"recovery    : {results['recovery_seconds']:>8.3f} s",
        f"speedup     : {results['speedup']:.0f}x",
    ])
    print(json.dumps(results, indent=2))

    # The acceptance gate: recovery must beat full replay by >= 10x at the
    # 100k-event scale (and already decisively below it).
    if total_events >= 100_000:
        assert results["speedup"] >= 10
    else:
        assert results["speedup"] > 2
