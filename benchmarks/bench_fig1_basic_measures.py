"""E-F1 — Figure 1 / Examples 1-4: time, energy, product and vector measures.

Reproduces tf = 5, ef = 12 and product = 60 for the Figure 1 flex-offer and
reports the vector norms.  Note: the paper's Example 4 prints the vector as
⟨5, 10⟩ (norms 15 / 11.180) although its own Example 2 derives ef = 12; the
library follows Definition 4 (⟨tf, ef⟩ = ⟨5, 12⟩, norms 17 / 13.0) and the
discrepancy is documented in EXPERIMENTS.md.
"""

import pytest

from repro.measures import (
    energy_flexibility,
    product_flexibility,
    time_flexibility,
    vector_flexibility,
    vector_flexibility_norm,
)
from repro.workloads import figure1_flexoffer

from conftest import report


def _all_basic_measures(flex_offer):
    return (
        time_flexibility(flex_offer),
        energy_flexibility(flex_offer),
        product_flexibility(flex_offer),
        vector_flexibility(flex_offer),
        vector_flexibility_norm(flex_offer, "l1"),
        vector_flexibility_norm(flex_offer, "l2"),
    )


def test_fig1_basic_measures(benchmark):
    flex_offer = figure1_flexoffer()
    tf, ef, product, vector, l1, l2 = benchmark(_all_basic_measures, flex_offer)

    assert tf == 5          # Example 1
    assert ef == 12         # Example 2
    assert product == 60    # Example 3
    assert vector == (5, 12)
    assert l1 == 17
    assert l2 == pytest.approx(13.0)

    report("Figure 1 / Examples 1-4", [
        f"time flexibility        paper=5      measured={tf}",
        f"energy flexibility      paper=12     measured={ef}",
        f"product flexibility     paper=60     measured={product}",
        f"vector (per Def. 4)     paper=<5,10>* measured={vector}  (*Example 4 typo, see EXPERIMENTS.md)",
        f"vector L1 / L2          paper=15/11.180* measured={l1}/{l2:.3f}",
    ])
