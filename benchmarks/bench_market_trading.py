"""E-MARKET — Scenario 2: trading aggregated flex-offers and settling imbalance.

Runs the Aggregator → market → BRP pipeline on the neighbourhood workload:
aggregated lots are priced with a flexibility premium, the buyer purchases
the most flexible lots first, the BRP schedules the purchased flexibility
against its forecast supply, and imbalance is settled against spot prices.
Expected shape: using the purchased flexibility never increases the
imbalance cost compared to the no-flexibility baseline, and lots that retain
more flexibility command a higher premium.
"""

from repro.analysis import format_table
from repro.market import (
    Aggregator,
    BalanceResponsibleParty,
    FlexibilityPricer,
    ImbalanceSettlement,
    TradingSession,
)
from repro.scheduling import EarliestStartScheduler

from conftest import report


def _run_market(scenario):
    aggregator = Aggregator("agg")
    aggregator.collect(scenario.flex_offers)
    lots = aggregator.aggregate()

    session = TradingSession(
        FlexibilityPricer(measure="product", energy_price=1.0, premium_per_unit=2.0),
        budget=1e9,
    )
    accepted, rejected = session.clear(lots)

    brp = BalanceResponsibleParty("brp", scenario.supply)
    purchased = [bid.flex_offer for bid in accepted]
    flexible_schedule = brp.schedule_flexibility(purchased)
    baseline_schedule = EarliestStartScheduler().schedule(purchased)

    settlement = ImbalanceSettlement(scenario.prices)
    flexible_cost = settlement.settle(flexible_schedule, scenario.supply).imbalance_cost
    baseline_cost = settlement.settle(baseline_schedule, scenario.supply).imbalance_cost
    return lots, accepted, rejected, flexible_cost, baseline_cost


def test_market_trading_pipeline(benchmark, neighbourhood):
    lots, accepted, rejected, flexible_cost, baseline_cost = benchmark(
        _run_market, neighbourhood
    )

    assert len(accepted) + len(rejected) == len(lots)
    assert accepted
    assert flexible_cost <= baseline_cost

    premiums = [bid.flexibility_premium for bid in accepted]
    rows = [
        ["aggregated lots offered", len(lots), None],
        ["lots purchased", len(accepted), None],
        ["highest flexibility premium", max(premiums), None],
        ["lowest flexibility premium", min(premiums), None],
        ["imbalance cost (earliest-start baseline)", baseline_cost, None],
        ["imbalance cost (using flexibility)", flexible_cost, None],
        ["imbalance-cost savings", baseline_cost - flexible_cost, None],
    ]
    report(
        "Scenario 2 — Aggregator trading and BRP settlement",
        format_table(["quantity", "value", ""], rows).splitlines(),
    )
