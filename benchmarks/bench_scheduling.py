"""E-SCHED — Scenario 1: scheduling quality as a function of flexibility.

Schedules the neighbourhood workload against a wind-production profile with
four schedulers (earliest-start baseline, greedy, hill climbing,
evolutionary) and with the flexibility stripped from the flex-offers.
Expected shape: every flexibility-aware scheduler beats the earliest-start
baseline, and stripping flexibility removes (almost all of) the benefit —
the paper's core argument for why flexibility is valuable and must be
measurable.
"""

from repro.analysis import format_table
from repro.scheduling import (
    EarliestStartScheduler,
    EvolutionaryScheduler,
    GreedyImbalanceScheduler,
    HillClimbingScheduler,
    ImbalanceObjective,
)

from conftest import report


def _run_schedulers(flex_offers, supply):
    objective = ImbalanceObjective("absolute", supply)
    schedulers = {
        "earliest-start": EarliestStartScheduler(),
        "greedy": GreedyImbalanceScheduler(objective),
        "hill-climbing": HillClimbingScheduler(
            iterations=300, restarts=2, seed=1, objective=objective
        ),
        "evolutionary": EvolutionaryScheduler(
            population_size=12, generations=20, seed=1, objective=objective
        ),
    }
    return {
        name: objective.of_schedule(scheduler.schedule(flex_offers, supply))
        for name, scheduler in schedulers.items()
    }


def test_scheduling_with_and_without_flexibility(benchmark, neighbourhood):
    flex_offers = list(neighbourhood.flex_offers)
    supply = neighbourhood.supply
    objective = ImbalanceObjective("absolute", supply)

    imbalances = benchmark(_run_schedulers, flex_offers, supply)

    pinned = [
        f.without_time_flexibility().without_energy_flexibility() for f in flex_offers
    ]
    pinned_imbalance = objective.of_schedule(
        GreedyImbalanceScheduler(objective).schedule(pinned, supply)
    )

    baseline = imbalances["earliest-start"]
    for name in ("greedy", "hill-climbing", "evolutionary"):
        assert imbalances[name] <= baseline
    # Using flexibility is at least as good as having none at all.
    assert imbalances["greedy"] <= pinned_imbalance

    rows = [[name, value, 1 - value / baseline if baseline else 0.0]
            for name, value in imbalances.items()]
    rows.append(["greedy (flexibility stripped)", pinned_imbalance,
                 1 - pinned_imbalance / baseline if baseline else 0.0])
    report(
        "Scenario 1 — imbalance vs wind production "
        f"({len(flex_offers)} flex-offers, horizon {neighbourhood.horizon})",
        format_table(
            ["scheduler", "absolute imbalance", "improvement vs baseline"], rows
        ).splitlines(),
    )
