"""E-F2 — Figure 2 / Example 5: time-series flexibility of f1.

Reproduces the difference series ⟨0, 1⟩, its L1 and L2 norms (both 1), and
the 4-assignment count of the single-slice flex-offer f1.
"""

from repro.measures import assignment_flexibility, series_difference, series_flexibility
from repro.workloads import figure2_flexoffer

from conftest import report


def _series_measures(flex_offer):
    return (
        series_difference(flex_offer).to_dict(),
        series_flexibility(flex_offer, "l1"),
        series_flexibility(flex_offer, "l2"),
        assignment_flexibility(flex_offer),
    )


def test_fig2_series_flexibility(benchmark):
    flex_offer = figure2_flexoffer()
    difference, l1, l2, count = benchmark(_series_measures, flex_offer)

    assert difference == {0: 0, 1: 1}
    assert l1 == 1 and l2 == 1   # Example 5
    assert count == 4            # "f1 has 4 assignments"

    report("Figure 2 / Example 5", [
        f"difference series       paper=<0,1>  measured={difference}",
        f"series flexibility L1   paper=1      measured={l1}",
        f"series flexibility L2   paper=1      measured={l2}",
        f"number of assignments   paper=4      measured={count}",
    ])
