"""E-F4 — Figure 4 / Example 7: the area of a single assignment.

Reproduces the six grid cells covered by the assignment ⟨2, 1, 3⟩ starting at
time 1.
"""

from repro.core import TimeSeries, series_area

from conftest import report

PAPER_CELLS = {(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)}


def test_fig4_assignment_area(benchmark):
    series = TimeSeries(1, (2, 1, 3))
    cells = benchmark(series_area, series)

    assert cells == PAPER_CELLS

    report("Figure 4 / Example 7", [
        f"assignment              <2, 1, 3> starting at t=1",
        f"area cells (paper)      {sorted(PAPER_CELLS)}",
        f"area cells (measured)   {sorted(cells)}",
        f"area size               paper=6      measured={len(cells)}",
    ])
