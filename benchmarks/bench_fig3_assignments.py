"""E-F3 — Figure 3 / Examples 6 and 14: assignment flexibility of f2.

Reproduces the 9-assignment count and the sensitivity of the count to
removing time or energy flexibility.  Example 14 states "2 possible
assignments" for the energy-inflexible variant; the Definition 8 formula
gives (tls − tes + 1) · 1 = 3, which is what the library reports (see
EXPERIMENTS.md).
"""

from repro.measures import assignment_flexibility
from repro.workloads import figure3_flexoffer

from conftest import report


def _counts(flex_offer):
    return (
        assignment_flexibility(flex_offer),
        assignment_flexibility(flex_offer.without_time_flexibility()),
        assignment_flexibility(flex_offer.without_energy_flexibility()),
    )


def test_fig3_assignment_counts(benchmark):
    flex_offer = figure3_flexoffer()
    full, time_pinned, energy_pinned = benchmark(_counts, flex_offer)

    assert full == 9          # Example 6
    assert time_pinned == 3   # Example 14
    assert energy_pinned == 3  # Example 14 prints 2; Definition 8 gives 3

    report("Figure 3 / Examples 6 and 14 (f2)", [
        f"assignments             paper=9      measured={full}",
        f"assignments, tf=0       paper=3      measured={time_pinned}",
        f"assignments, ef=0       paper=2*     measured={energy_pinned}  (*Definition 8 gives 3)",
    ])
