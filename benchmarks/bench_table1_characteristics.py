"""E-T1 — Table 1: characteristics of the eight flexibility measures.

Regenerates the full characteristics matrix from the measure metadata and
asserts that every row matches the paper's Table 1 verbatim.
"""

from repro.measures import (
    PAPER_MEASURE_ORDER,
    characteristics_table,
    format_characteristics_table,
    matches_paper_table,
)

from conftest import report


def test_table1_characteristics(benchmark):
    table = benchmark(characteristics_table, PAPER_MEASURE_ORDER)

    agreement = matches_paper_table(PAPER_MEASURE_ORDER)
    assert all(agreement.values()), f"rows disagreeing with the paper: {agreement}"
    assert len(table) == 9 and len(table[0]) == 9

    report("Table 1 — measure characteristics (regenerated)",
           format_characteristics_table(PAPER_MEASURE_ORDER).splitlines())
