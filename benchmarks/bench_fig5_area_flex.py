"""E-F5 — Figure 5 / Examples 8 and 10: area-based flexibility of f4.

Reproduces union area 10, absolute area-based flexibility 8 and relative
area-based flexibility 4 for f4 = ([0,4], ⟨[2,2]⟩) with cmin = cmax = 2.
"""

import pytest

from repro.core import flexoffer_area_size
from repro.measures import absolute_area_flexibility, relative_area_flexibility
from repro.workloads import figure5_flexoffer

from conftest import report


def _area_measures(flex_offer):
    return (
        flexoffer_area_size(flex_offer),
        absolute_area_flexibility(flex_offer),
        relative_area_flexibility(flex_offer),
    )


def test_fig5_area_flexibility(benchmark):
    flex_offer = figure5_flexoffer()
    union, absolute, relative = benchmark(_area_measures, flex_offer)

    assert union == 10
    assert absolute == 8              # Example 8: 10 - 2
    assert relative == pytest.approx(4.0)  # Example 10: 2*8 / (2+2)

    report("Figure 5 / Examples 8 and 10 (f4)", [
        f"union area               paper=10     measured={union}",
        f"absolute area flexibility paper=8     measured={absolute}",
        f"relative area flexibility paper=4     measured={relative}",
    ])
