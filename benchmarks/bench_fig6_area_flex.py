"""E-F6 — Figure 6 / Examples 9 and 10: area-based flexibility of f5.

Reproduces absolute area-based flexibility 8 and relative flexibility 16/6
for f5 = ([0,4], ⟨[1,1],[2,2]⟩) with cmin = cmax = 3.  Example 9 prints the
computation as "10 − 2 = 8"; the union area implied by the figure is 11 and
11 − 3 = 8, so the final value matches (see EXPERIMENTS.md).
"""

import pytest

from repro.core import flexoffer_area_size
from repro.measures import absolute_area_flexibility, relative_area_flexibility
from repro.workloads import figure6_flexoffer

from conftest import report


def _area_measures(flex_offer):
    return (
        flexoffer_area_size(flex_offer),
        absolute_area_flexibility(flex_offer),
        relative_area_flexibility(flex_offer),
    )


def test_fig6_area_flexibility(benchmark):
    flex_offer = figure6_flexoffer()
    union, absolute, relative = benchmark(_area_measures, flex_offer)

    assert union == 11
    assert absolute == 8
    assert relative == pytest.approx(16 / 6)

    report("Figure 6 / Examples 9 and 10 (f5)", [
        f"union area               paper=10*    measured={union}  (*11 is implied by the figure)",
        f"absolute area flexibility paper=8     measured={absolute}",
        f"relative area flexibility paper=16/6  measured={relative:.4f}",
    ])
