"""E-LIVE — incremental live-matrix maintenance vs. wholesale re-packing.

Before this PR the streaming engine threw the packed
:class:`~repro.backend.ProfileMatrix` away on every population-mutating
event, so a consumer that wants the packed state back after a single
arrival paid a full O(population) Python re-pack.  The live matrix
(append / tombstone / compact) maintains the packed arrays in amortized
O(Δ) per event instead; this benchmark measures both costs per event, at
10k and (for the CI gate) 100k live offers, asserts the maintained matrix
is bit-identical to a fresh pack of the survivors, and times the
publication path (``engine.live_matrix()``: compact + zero-copy snapshot +
cache seed) against the re-pack it replaces.

The second half measures the other bulk op this PR adds:
``ComputeBackend.batch_objectives``.  A whole generation of schedules (the
evolutionary scheduler's population shape) is scored in one backend call
and compared against the per-schedule Python fold — same floats, ≥3x
faster at the gated shape.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_matrix.py

or through pytest (the CI acceptance gates: ≥10x per-event update at 100k,
≥3x generation objectives)::

    PYTHONPATH=../src python -m pytest bench_incremental_matrix.py -q -s
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.backend import NUMPY_AVAILABLE, matrix_cache, use_backend
from repro.core import FlexOffer
from repro.scheduling import ImbalanceObjective, build_validated_schedule, random_profile
from repro.stream import OfferArrived, OfferExpired, StreamingEngine

#: Cheap always-supported measures: the point is matrix maintenance, not
#: per-offer measure arithmetic (both sides of the comparison pay that).
MEASURES = ["time", "energy"]

GATE_SCALE = 100_000
GATE_UPDATE_SPEEDUP = 10.0
GATE_OBJECTIVE_SPEEDUP = 3.0


def population(size: int, seed: int = 0) -> list[FlexOffer]:
    """Streaming-shaped offers: 1–2 slices, small time flexibility."""
    rng = random.Random(seed)
    offers = []
    for index in range(size):
        earliest = rng.randrange(0, 96)
        slices = [(1, 1 + rng.randint(0, 4))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        offers.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 2),
                slices,
                name=f"offer-{index}",
            )
        )
    return offers


def _verify_bit_identical(engine: StreamingEngine) -> None:
    import numpy as np

    from repro.backend import ProfileMatrix

    live = engine.live_matrix()
    fresh = ProfileMatrix(engine.live_offers())
    for name in ("tes", "tls", "cmin", "cmax", "durations", "offsets", "amin", "amax"):
        assert np.array_equal(getattr(live, name), getattr(fresh, name)), name
    assert live.offers == fresh.offers


def bench_live_updates(size: int, events: int = 40, seed: int = 1) -> dict:
    """Per-event cost: O(Δ) live maintenance vs. full re-pack.

    Both engines see the same arrive/expire churn (population size held
    steady).  The *incremental* side is the engine as shipped — the live
    matrix rides along every event.  The *re-pack* side additionally
    rebuilds ``ProfileMatrix(live_offers())`` from scratch after each
    event: exactly what restoring the packed state cost under the old
    wholesale cache invalidation.
    """
    from repro.backend import ProfileMatrix

    offers = population(size, seed=seed)
    churn = population(events, seed=seed + 1)
    rng = random.Random(seed + 2)

    def build() -> StreamingEngine:
        engine = StreamingEngine(measures=MEASURES)
        with use_backend("numpy"):
            engine.bulk_arrive(
                (f"seed-{index}", offer) for index, offer in enumerate(offers)
            )
        return engine

    def churn_events(engine: StreamingEngine, repack: bool) -> float:
        victims = [f"seed-{rng.randrange(size)}" for _ in range(events)]
        seen = set()
        started = time.perf_counter()
        for index, offer in enumerate(churn):
            engine.apply(OfferArrived(f"churn-{index}", offer))
            victim = victims[index]
            if victim not in seen and victim in engine:
                seen.add(victim)
                engine.apply(OfferExpired(victim))
            if repack:
                ProfileMatrix(engine.live_offers())
        return (time.perf_counter() - started) / (events * 2)

    engine = build()
    incremental = churn_events(engine, repack=False)
    _verify_bit_identical(engine)
    publish_started = time.perf_counter()
    engine.live_matrix()
    publish = time.perf_counter() - publish_started

    rng = random.Random(seed + 2)  # identical victim sequence
    repack_engine = build()
    repacked = churn_events(repack_engine, repack=True)
    repack_started = time.perf_counter()
    ProfileMatrix(repack_engine.live_offers())
    repack_once = time.perf_counter() - repack_started

    matrix_cache.clear()
    return {
        "name": f"live_update_{size}",
        "scale": size,
        "events": events * 2,
        "incremental_s_per_event": incremental,
        "repack_s_per_event": repacked,
        "publish_s": publish,
        "full_repack_s": repack_once,
        "ops_per_s": 1.0 / incremental if incremental else 0.0,
        "speedup": repacked / incremental if incremental else 0.0,
    }


def _best_of(operation, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock of a few runs (robust against scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        best = min(best, time.perf_counter() - started)
    return best, result


def bench_generation_objectives(
    fleet_size: int = 400, generation: int = 24, seed: int = 5
) -> dict:
    """One ``batch_objectives`` call vs. the per-schedule Python fold."""
    rng = random.Random(seed)
    fleet = population(fleet_size, seed=seed)
    with use_backend("numpy"):
        schedules = [
            build_validated_schedule(
                fleet, [random_profile(offer, rng) for offer in fleet]
            )
            for _ in range(generation)
        ]
    objective = ImbalanceObjective("absolute")

    fold_elapsed, scalar = _best_of(
        lambda: [objective.of_schedule(schedule) for schedule in schedules]
    )

    with use_backend("numpy"):
        batch_elapsed, batched = _best_of(
            lambda: objective.of_generation(schedules)
        )

    assert batched == scalar  # bit-identical, not merely close
    return {
        "name": f"generation_objectives_{fleet_size}x{generation}",
        "fleet": fleet_size,
        "generation": generation,
        "fold_s": fold_elapsed,
        "batch_s": batch_elapsed,
        "ops_per_s": generation / batch_elapsed if batch_elapsed else 0.0,
        "speedup": fold_elapsed / batch_elapsed if batch_elapsed else 0.0,
    }


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``."""
    records = [bench_live_updates(10_000)]
    if gate_scale:
        records.append(bench_live_updates(GATE_SCALE))
    records.append(bench_generation_objectives())
    return records


def _print_record(record: dict) -> None:
    print(f"\n=== {record['name']} ===")
    for key, value in record.items():
        if key == "name":
            continue
        formatted = f"{value:.6f}" if isinstance(value, float) else value
        print(f"  {key:24s} {formatted}")
    print(json.dumps(record))


def main() -> None:
    for record in bench_records(gate_scale=True):
        _print_record(record)


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_live_updates_smoke_at_10k():
    """Correctness smoke at 10k: live maintenance beats re-packing and the
    maintained matrix is bit-identical (asserted inside the run)."""
    record = bench_live_updates(10_000)
    _print_record(record)
    assert record["speedup"] > 1.0


@pytest.mark.slow
@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_incremental_update_gate_at_100k():
    """CI gate (push-only job): ≥10x per-event update vs. re-pack at 100k."""
    record = bench_live_updates(GATE_SCALE)
    _print_record(record)
    assert record["speedup"] >= GATE_UPDATE_SPEEDUP, record


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_generation_objectives_gate():
    """CI gate: ≥3x generation scoring vs. the per-schedule fold, with
    bit-identical floats (asserted inside the run)."""
    record = bench_generation_objectives()
    _print_record(record)
    assert record["speedup"] >= GATE_OBJECTIVE_SPEEDUP, record


if __name__ == "__main__":
    main()
