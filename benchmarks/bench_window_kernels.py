"""W-KERNEL — vectorized tick sampling vs. the scalar window path.

Before this PR every :class:`~repro.stream.events.Tick` with a window
tracker cost, per tracked measure, a full O(population) Python fold —
``{offer_id: {measure: value}}`` dictionary lookups re-listed into Python,
summed scalar by scalar, and pushed into a ``deque``-backed window.  Tick
sampling now runs as **one bulk pass** over the engine's packed value
columns (one alive-mask gather, one exact ``cumsum`` per measure column —
:meth:`~repro.stream.live.LivePopulation.combined_values`) feeding the
array window kernel (:class:`~repro.stream.windowkernels.ArrayMeasureWindow`:
preallocated ``float64`` ring, monotonic-deque sliding extremes, single
memoised sort for the percentile block).

This benchmark replays the *old* scalar path — the dictionary fold into
scalar ``MeasureWindow`` records, exactly as ``_sample_values`` used to run
it — against the engine as shipped, on the same population and the same
tick schedule, asserts the resulting per-measure window summaries are
**identical floats**, and gates the speedup: ≥10x at 100k live offers (the
CI acceptance gate), with a correctness smoke at 10k on every run.  A
second record times the window kernels head to head on pure
record/summary churn (informational, no gate).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_window_kernels.py

or through pytest (the CI gate: ≥10x tick sampling at 100k)::

    PYTHONPATH=../src python -m pytest bench_window_kernels.py -q -s
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.backend import NUMPY_AVAILABLE
from repro.core import FlexOffer
from repro.measures import get_measure
from repro.stream import MeasureWindow, StreamingEngine, Tick, WindowTracker

#: Always-supported measures with integer per-offer values: the comparison
#: targets the sampling fold and the window kernel, and both paths must
#: reproduce identical floats (int sums are exact either way).
MEASURES = ["time", "energy"]

GATE_SCALE = 100_000
GATE_TICK_SPEEDUP = 10.0
WINDOW_CAPACITY = 64


def population(size: int, seed: int = 0) -> list[FlexOffer]:
    """Streaming-shaped offers: 1–2 slices, small time flexibility."""
    rng = random.Random(seed)
    offers = []
    for index in range(size):
        earliest = rng.randrange(0, 96)
        slices = [(1, 1 + rng.randint(0, 4))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        offers.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 2),
                slices,
                name=f"offer-{index}",
            )
        )
    return offers


def _scalar_tick_path(engine: StreamingEngine, tracker, tick_time: int) -> None:
    """The pre-PR sampling fold: per-measure dictionary walk + scalar window."""
    measures = [get_measure(key) for key in MEASURES]
    values = {
        measure.key: measure.combine_values(
            [engine._values[offer_id][measure.key] for offer_id in engine._index]
        )
        for measure in measures
    }
    tracker.sample(tick_time, values)


def bench_tick_sampling(size: int, ticks: int = 12, seed: int = 3) -> dict:
    """Per-tick cost: bulk column sampling vs. the scalar dictionary fold.

    One engine, one population; the scalar side drives the replicated
    old fold into a scalar-kernel tracker over the same tick schedule, and
    the summaries of both trackers must agree exactly — same counts, same
    totals, same percentiles — before any timing is trusted.
    """
    engine = StreamingEngine(
        measures=MEASURES,
        window_capacity=WINDOW_CAPACITY,
        backend="numpy",
    )
    engine.bulk_arrive(
        (f"offer-{index}", offer)
        for index, offer in enumerate(population(size, seed=seed))
    )
    assert engine.window_kernel == "array"
    scalar_tracker = WindowTracker(
        MEASURES, WINDOW_CAPACITY, window_factory=MeasureWindow
    )

    started = time.perf_counter()
    for tick_time in range(ticks):
        engine.apply(Tick(tick_time))
    bulk = (time.perf_counter() - started) / ticks

    started = time.perf_counter()
    for tick_time in range(ticks):
        _scalar_tick_path(engine, scalar_tracker, tick_time)
    scalar = (time.perf_counter() - started) / ticks

    assert engine.tracker.summary() == scalar_tracker.summary()
    return {
        "name": f"tick_sampling_{size}",
        "scale": size,
        "ticks": ticks,
        "measures": len(MEASURES),
        "scalar_s_per_tick": scalar,
        "bulk_s_per_tick": bulk,
        "ops_per_s": 1.0 / bulk if bulk else 0.0,
        "speedup": scalar / bulk if bulk else 0.0,
    }


def bench_window_dashboard(samples: int = 100_000, capacity: int = 256) -> dict:
    """Dashboard churn: record + min/max read per sample, scalar vs. array.

    The monitoring pattern: every sample is recorded and the sliding
    extremes are read back immediately.  The scalar kernel re-scans the
    whole retained window per extreme query (O(capacity)); the array
    kernel reads the front of its monotonic deques (O(1)) — that, not the
    record itself (a deque append is a perfectly good O(1) too), is where
    the kernel wins on pure window traffic.  Informational (no gate); the
    gated product win is the sampling fold above.
    """
    from repro.stream.windowkernels import ArrayMeasureWindow

    rng = random.Random(11)
    stream = [rng.uniform(-50.0, 50.0) for _ in range(samples)]

    def churn(window) -> tuple[float, float]:
        checksum = 0.0
        started = time.perf_counter()
        for tick_time, value in enumerate(stream):
            window.record(tick_time, value)
            checksum += window.minimum() + window.maximum()
            if tick_time % 1000 == 999:
                window.summary()
        return time.perf_counter() - started, checksum

    scalar_window = MeasureWindow(capacity)
    array_window = ArrayMeasureWindow(capacity)
    scalar, scalar_checksum = churn(scalar_window)
    array, array_checksum = churn(array_window)
    assert array_checksum == scalar_checksum
    assert array_window.summary() == scalar_window.summary()
    return {
        "name": f"window_dashboard_{samples}",
        "scale": samples,
        "capacity": capacity,
        "scalar_s": scalar,
        "array_s": array,
        "ops_per_s": samples / array if array else 0.0,
        "speedup": scalar / array if array else 0.0,
    }


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``."""
    records = [bench_tick_sampling(10_000)]
    if gate_scale:
        records.append(bench_tick_sampling(GATE_SCALE))
    records.append(bench_window_dashboard())
    return records


def _print_record(record: dict) -> None:
    print(f"\n=== {record['name']} ===")
    for key, value in record.items():
        if key == "name":
            continue
        formatted = f"{value:.6f}" if isinstance(value, float) else value
        print(f"  {key:24s} {formatted}")
    print(json.dumps(record))


def main() -> None:
    for record in bench_records(gate_scale=True):
        _print_record(record)


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_tick_sampling_smoke_at_10k():
    """Correctness smoke at 10k: bulk sampling beats the scalar fold and
    both trackers' summaries are identical (asserted inside the run)."""
    record = bench_tick_sampling(10_000)
    _print_record(record)
    assert record["speedup"] > 1.0


@pytest.mark.slow
@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_tick_sampling_gate_at_100k():
    """CI gate (push-only job): ≥10x tick sampling vs. the scalar window
    path at 100k live offers."""
    record = bench_tick_sampling(GATE_SCALE)
    _print_record(record)
    assert record["speedup"] >= GATE_TICK_SPEEDUP, record


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_window_dashboard_churn_matches_exactly():
    """The kernels agree float-for-float on 100k-sample dashboard churn
    (asserted inside the run); the O(1) extremes must beat the scan."""
    record = bench_window_dashboard()
    _print_record(record)
    assert record["speedup"] > 1.0


if __name__ == "__main__":
    main()
