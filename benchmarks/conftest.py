"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (or one
extended experiment from the discussion / future-work sections).  Each module
both *asserts* the paper's reported values (so a benchmark run doubles as a
reproduction check) and times the relevant code path with pytest-benchmark.
The ``report`` helper prints the reproduced rows so the console output of
``pytest benchmarks/ --benchmark-only`` can be compared against the paper
side by side; the printed values are also recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def report(title: str, lines: list[str]) -> None:
    """Print a small reproduction report block."""
    print()
    print(f"=== {title} ===")
    for line in lines:
        print(f"  {line}")


@pytest.fixture(scope="session")
def neighbourhood():
    """The Scenario 1 workload shared by the aggregation/scheduling benches."""
    from repro.workloads import neighbourhood_scenario

    return neighbourhood_scenario(households=24, seed=7, horizon=32)


@pytest.fixture(scope="session")
def balancing():
    """The Scenario 2 workload (contains production and mixed flex-offers)."""
    from repro.workloads import balancing_scenario

    return balancing_scenario(units=16, seed=11, horizon=32)
