"""E-CLUSTER — remote shard execution over loopback workers vs the
in-process pools.

The cluster executor's pitch is that crossing a wire does not have to
cost the fan-out its speedup: shard chunks are content-addressed and
*interned* per connection, so a warm evaluation ships only 16-byte keys
while the in-process ``process`` executor re-pickles every offer on every
call.  This benchmark pins both halves of that claim against a real
:class:`~repro.cluster.LocalCluster` (worker subprocesses on ephemeral
loopback ports — genuine sockets, pickles and process boundaries):

* **cold vs warm**: the first remote ``evaluate_set`` pays the chunk
  shipping pass; the second travels by reference.  Gate: warm is ≥5x
  faster than cold at the smoke scale.
* **remote vs process pool**: at the 1M-offer acceptance scale the warm
  remote path must land within 1.5x of the in-process ``process``
  executor's wall-clock (push-only CI gate; in practice interning makes
  it *faster*, since the process pool re-ships its shards every call).

Results are asserted identical to the single-process NumPy backend per
run, so the benchmark doubles as an end-to-end wire-serialization check.

Run standalone (30k smoke sweep)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py

or through pytest (the per-PR smoke; the 1M gate is ``slow``-marked)::

    PYTHONPATH=../src python -m pytest bench_cluster_scaling.py -q -s
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.backend import NUMPY_AVAILABLE, ShardedBackend, use_backend
from repro.cluster import LocalCluster
from repro.core import FlexOffer
from repro.measures import evaluate_set

#: Measures evaluated; all five stay dense-vectorizable at every scale on
#: the narrow population below (same shape as the sharded-scaling bench).
MEASURES = ["time", "energy", "product", "vector", "series"]

SMOKE_SCALE = 30_000
GATE_SCALE = 1_000_000
WORKERS = 4
CORES = os.cpu_count() or 1

#: The per-PR interning gate: a warm (reference-travelling) evaluation
#: must beat the cold (chunk-shipping) one by at least this factor.
INTERN_GATE = 5.0

#: The push-only scale gate: warm remote wall-clock within this factor of
#: the in-process ``process`` executor at 1M offers.
REMOTE_OVERHEAD_GATE = 1.5


def narrow_population(size: int, seed: int = 0) -> list[FlexOffer]:
    """The bulk-ingestion population of ``bench_sharded_scaling`` (narrow
    aligned width keeps every baseline on its fully vectorized path)."""
    rng = random.Random(seed)
    population = []
    for index in range(size):
        earliest = rng.randrange(0, 96)
        slices = [(1, 1 + rng.randint(0, 4))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        profile_min = sum(s[0] for s in slices)
        profile_max = sum(s[1] for s in slices)
        cmin = rng.randint(profile_min, profile_max)
        population.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 2),
                slices,
                cmin,
                rng.randint(cmin, profile_max),
                name=f"offer-{index}",
            )
        )
    return population


def _best_of(operation, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock of a few runs (robust against scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        best = min(best, time.perf_counter() - started)
    return best, result


def compare_cluster(
    size: int,
    workers: int = WORKERS,
    repeats: int = 3,
    population: list = None,
) -> dict[str, object]:
    """Time one ``evaluate_set`` scale: remote cold/warm vs the pools.

    ``population`` lets gate retries reuse the generated offers — building
    1M of them in Python dominates an attempt otherwise.
    """
    if population is None:
        population = narrow_population(size)
    operation = lambda: evaluate_set(population, MEASURES)  # noqa: E731
    results: dict[str, object] = {"scale": size, "workers": workers, "cores": CORES}

    with use_backend("numpy"):
        numpy_s, expected = _best_of(operation, repeats)
    results["numpy_s"] = numpy_s

    process = ShardedBackend(shards=workers, executor="process", min_population=1)
    try:
        with use_backend(process):
            process_s, report = _best_of(operation, repeats)
        assert report.values == expected.values
    finally:
        process.close()
    results["process_s"] = process_s

    with LocalCluster(workers=workers) as cluster:
        remote = ShardedBackend(
            shards=workers, executor="remote", min_population=1,
            cluster=cluster.spec(),
        )
        try:
            with use_backend(remote):
                cold_s, report = _best_of(operation, repeats=1)
                assert report.values == expected.values
                warm_s, report = _best_of(operation, repeats)
                assert report.values == expected.values
            stats = remote._pool.stats()
            results["remote"] = {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "intern_speedup": cold_s / warm_s if warm_s else 0.0,
                "vs_process": warm_s / process_s if process_s else 0.0,
                "ref_hits": stats["ref_hits"],
                "shipped_offers": stats["shipped_offers"],
            }
        finally:
            remote.close()
    return results


def _print_report(results: dict[str, object]) -> None:
    remote = results["remote"]
    print(
        f"\n=== cluster scaling @ {results['scale']} offers "
        f"({results['workers']} workers, {results['cores']} cores) ==="
    )
    print(
        f"  numpy   {results['numpy_s'] * 1e3:9.1f} ms   "
        f"process {results['process_s'] * 1e3:9.1f} ms"
    )
    print(
        f"  remote  cold {remote['cold_s'] * 1e3:9.1f} ms   "
        f"warm {remote['warm_s'] * 1e3:9.1f} ms   "
        f"intern {remote['intern_speedup']:5.2f}x   "
        f"warm/process {remote['vs_process']:5.2f}x"
    )
    print(json.dumps(results))


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``.

    Tracks the interning factor and the remote-vs-process ratio per PR at
    a smoke scale; the 1M acceptance number stays in the push-only gate.
    """
    scale = 100_000 if gate_scale else SMOKE_SCALE
    results = compare_cluster(scale, repeats=2)
    remote = results["remote"]
    return [
        {
            "name": f"cluster_intern_warm_{scale}",
            "scale": scale,
            "cold_s": remote["cold_s"],
            "warm_s": remote["warm_s"],
            "ops_per_s": 1.0 / remote["warm_s"] if remote["warm_s"] else 0.0,
            "speedup": remote["intern_speedup"],
        },
        {
            "name": f"cluster_vs_process_{scale}",
            "scale": scale,
            "process_s": results["process_s"],
            "remote_warm_s": remote["warm_s"],
            "ops_per_s": 1.0 / remote["warm_s"] if remote["warm_s"] else 0.0,
            "speedup": (
                results["process_s"] / remote["warm_s"] if remote["warm_s"] else 0.0
            ),
        },
    ]


def main() -> None:
    _print_report(compare_cluster(SMOKE_SCALE))


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_remote_matches_and_interning_wins_5x_at_30k():
    """Per-PR smoke: remote results are identical to numpy/process at 30k
    offers and the warm interned path beats the cold ship ≥5x.

    Wall-clock gates on shared runners are noisy, so a miss is measured
    once more before failing: a genuine regression fails twice, a
    noisy-neighbor flake rarely repeats.
    """
    population = narrow_population(SMOKE_SCALE)
    results: dict[str, object] = {}
    best = 0.0
    for _ in range(2):
        results = compare_cluster(SMOKE_SCALE, repeats=2, population=population)
        _print_report(results)
        best = results["remote"]["intern_speedup"]
        if best >= INTERN_GATE:
            break
    assert best >= INTERN_GATE, results


@pytest.mark.slow
@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
@pytest.mark.skipif(
    CORES < WORKERS,
    reason=f"cluster scale gate needs >= {WORKERS} cores, have {CORES}",
)
def test_remote_within_1_5x_of_process_pool_at_1m():
    """Acceptance gate: at 1M offers over 4 loopback workers, the warm
    remote ``evaluate_set`` lands within 1.5x of the in-process ``process``
    executor (retry-once against runner noise)."""
    population = narrow_population(GATE_SCALE)
    results: dict[str, object] = {}
    ratio = float("inf")
    for _ in range(2):
        results = compare_cluster(GATE_SCALE, repeats=2, population=population)
        _print_report(results)
        ratio = results["remote"]["vs_process"]
        if ratio <= REMOTE_OVERHEAD_GATE:
            break
    assert ratio <= REMOTE_OVERHEAD_GATE, results


if __name__ == "__main__":
    main()
