"""E-SHARD — shard-count scaling of the sharded backend at 100k–1M offers.

The ROADMAP's north star demands >1M-offer populations served fast; the
sharded backend delivers it by fanning the bulk operations across a worker
pool, shard by shard, on top of the NumPy inner backend.  This benchmark
sweeps the shard count on ``evaluate_set`` (time / energy / product /
vector / series measures — the paths that stay vectorized at every scale),
``feasible_profiles`` and start-aligned aggregation, against the
single-process NumPy backend at 100k and (for the acceptance gate) 1M
offers.  It also reports the fingerprint-keyed matrix cache's effect: a
*cold* ``evaluate_set`` pays the packing pass, a *warm* one skips it.

Both backends produce identical results (asserted here per run, pinned by
the conformance suite); the point is the wall-clock ratio.

The population is deliberately *narrow* (1–2 slices, small time
flexibility) so the dense series kernel stays under ``DENSE_CELL_LIMIT`` on
the unsharded baseline even at 1M offers — otherwise single-process NumPy
falls back to scalar loops there and the comparison would flatter sharding
for the wrong reason (that rescue effect is real, but it is a memory-cap
story, not a parallelism story).

Run standalone (100k sweep)::

    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py

or through pytest (the CI acceptance gate: ≥2x at 1M offers with ≥4
shards, on hosts with ≥4 cores)::

    PYTHONPATH=../src python -m pytest bench_sharded_scaling.py -q -s
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest

from repro.aggregation import aggregate_start_aligned
from repro.backend import (
    NUMPY_AVAILABLE,
    ShardedBackend,
    matrix_cache,
    register_backend,
    use_backend,
)
from repro.core import FlexOffer, batch_feasible_profiles
from repro.measures import evaluate_set

#: Shard counts swept in the report (capped by nothing — oversubscription of
#: a small host is part of the picture).
SHARD_SWEEP = [1, 2, 4, 8]

#: Measures evaluated; all five stay dense-vectorizable at every scale on
#: the narrow population below.
MEASURES = ["time", "energy", "product", "vector", "series"]

GATE_SCALE = 1_000_000
GATE_SHARDS = 4
CORES = os.cpu_count() or 1


def narrow_population(size: int, seed: int = 0) -> list[FlexOffer]:
    """A bulk-ingestion-style population with a small aligned column width.

    1–2 slices and time flexibility ≤ 2 keep ``size × width`` under the
    dense-kernel cell cap even at 1M offers, so the unsharded NumPy
    baseline competes with its best (fully vectorized) code path.
    """
    rng = random.Random(seed)
    population = []
    for index in range(size):
        earliest = rng.randrange(0, 96)
        slices = [(1, 1 + rng.randint(0, 4))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        profile_min = sum(s[0] for s in slices)
        profile_max = sum(s[1] for s in slices)
        cmin = rng.randint(profile_min, profile_max)
        population.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 2),
                slices,
                cmin,
                rng.randint(cmin, profile_max),
                name=f"offer-{index}",
            )
        )
    return population


def _best_of(operation, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall-clock of a few runs (robust against scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = operation()
        best = min(best, time.perf_counter() - started)
    return best, result


def compare_shards(
    size: int,
    shard_counts: list[int],
    repeats: int = 3,
    only: tuple = (),
    population: list = None,
) -> dict[str, object]:
    """Sweep shard counts against single-process NumPy at one scale.

    ``only`` restricts the timed operations (the CI gate times just
    ``evaluate_set``); ``population`` lets retries reuse the generated
    offers — building 1M of them in Python dominates a gate attempt.
    """
    if population is None:
        population = narrow_population(size)
    operations = {
        "evaluate_set": lambda: evaluate_set(population, MEASURES),
        "feasible_profiles": lambda: batch_feasible_profiles(population, "min"),
        "aggregate": lambda: aggregate_start_aligned(population),
    }
    if only:
        operations = {name: operations[name] for name in only}
    results: dict[str, object] = {"scale": size, "cores": CORES, "ops": {}}

    # Cache effect first: cold packing pass vs. warm (fingerprint-keyed) hit.
    matrix_cache.clear()
    with use_backend("numpy"):
        cold, _ = _best_of(operations["evaluate_set"], repeats=1)
        warm, baseline_report = _best_of(operations["evaluate_set"], repeats)
    results["cache"] = {
        "evaluate_set_cold": cold,
        "evaluate_set_warm": warm,
        "packing_skip_speedup": cold / warm if warm else 0.0,
    }

    baselines: dict[str, object] = {}
    with use_backend("numpy"):
        for name, operation in operations.items():
            elapsed, output = _best_of(operation, repeats)
            baselines[name] = (elapsed, output)

    for name, (elapsed, _) in baselines.items():
        results["ops"][name] = {"numpy": elapsed, "sharded": {}}

    for shards in shard_counts:
        backend = ShardedBackend(shards=shards, min_population=1)
        register_backend(backend)
        try:
            with use_backend("sharded"):
                for name, operation in operations.items():
                    elapsed, output = _best_of(operation, repeats)
                    assert output == baselines[name][1], name
                    row = results["ops"][name]["sharded"]
                    row[str(shards)] = {
                        "seconds": elapsed,
                        "speedup": baselines[name][0] / elapsed if elapsed else 0.0,
                    }
        finally:
            backend.close()
            register_backend(ShardedBackend())
    return results


def _print_report(results: dict[str, object]) -> None:
    scale = results["scale"]
    cache = results["cache"]
    print(f"\n=== sharded scaling @ {scale} offers ({results['cores']} cores) ===")
    print(
        f"  matrix cache: cold {cache['evaluate_set_cold'] * 1e3:9.1f} ms   "
        f"warm {cache['evaluate_set_warm'] * 1e3:9.1f} ms   "
        f"{cache['packing_skip_speedup']:5.2f}x"
    )
    for name, row in results["ops"].items():
        sweeps = "   ".join(
            f"{shards}sh {data['speedup']:5.2f}x"
            for shards, data in row["sharded"].items()
        )
        print(f"  {name:18s} numpy {row['numpy'] * 1e3:9.1f} ms   {sweeps}")
    print(json.dumps(results))


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``.

    Sweeps a trimmed shard set at a scale far below the 1M CI gate — the
    artifact tracks the *trajectory* of shard scaling and the cache's
    packing-skip factor per PR, not the acceptance number itself (that
    stays in the push-only gate job).
    """
    scale = 200_000 if gate_scale else 20_000
    results = compare_shards(scale, [2, 4], repeats=2)
    cache = results["cache"]
    records = [
        {
            "name": f"matrix_cache_warm_{scale}",
            "scale": scale,
            "cold_s": cache["evaluate_set_cold"],
            "warm_s": cache["evaluate_set_warm"],
            "ops_per_s": (
                1.0 / cache["evaluate_set_warm"]
                if cache["evaluate_set_warm"]
                else 0.0
            ),
            "speedup": cache["packing_skip_speedup"],
        }
    ]
    for operation, row in results["ops"].items():
        best_shards, best = max(
            row["sharded"].items(), key=lambda item: item[1]["speedup"]
        )
        records.append(
            {
                "name": f"sharded_{operation}_{scale}",
                "scale": scale,
                "numpy_s": row["numpy"],
                "sharded_s": best["seconds"],
                "best_shards": int(best_shards),
                "ops_per_s": 1.0 / best["seconds"] if best["seconds"] else 0.0,
                "speedup": best["speedup"],
            }
        )
    return records


def main() -> None:
    _print_report(compare_shards(100_000, SHARD_SWEEP))


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_sharded_sweep_matches_numpy_at_100k():
    """Correctness smoke at 100k: every shard count reproduces the numpy
    results exactly (the asserts live inside the sweep); report printed."""
    _print_report(compare_shards(100_000, SHARD_SWEEP, repeats=2))


@pytest.mark.slow
@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
@pytest.mark.skipif(
    CORES < GATE_SHARDS,
    reason=f"parallel speedup gate needs >= {GATE_SHARDS} cores, have {CORES}",
)
def test_sharded_wins_2x_on_evaluate_set_at_1m():
    """Acceptance gate: ≥2x over single-process NumPy on ``evaluate_set``
    at 1M offers with ≥4 shards (thread pool, warm matrix cache).

    Wall-clock gates on shared CI runners are noisy, so a miss is measured
    once more before failing: a genuine regression fails twice, a
    noisy-neighbor flake rarely repeats.
    """
    population = narrow_population(GATE_SCALE)
    best = 0.0
    results: dict[str, object] = {}
    for _ in range(2):
        results = compare_shards(
            GATE_SCALE,
            [GATE_SHARDS, 2 * GATE_SHARDS],
            repeats=2,
            only=("evaluate_set",),
            population=population,
        )
        _print_report(results)
        sweeps = results["ops"]["evaluate_set"]["sharded"]
        best = max(data["speedup"] for data in sweeps.values())
        if best >= 2.0:
            break
    assert best >= 2.0, results


if __name__ == "__main__":
    main()
