"""E-EX11 / E-EX12 / E-EX13 — the measure-limitation examples of Section 4.

Three benchmarks, one per example:

* Example 11: product flexibility collapses to zero when one dimension is
  inflexible and cannot distinguish flex-offers whose energy needs differ by
  two orders of magnitude.
* Example 12: vector flexibility is equally size-blind (identical L1/L2 norms
  for fx and fy).
* Example 13: the time-series measure is blind to time flexibility (f1 and
  its 10×-wider variant f1' obtain identical norms).
"""

import pytest

from repro.measures import (
    product_flexibility,
    series_flexibility,
    time_flexibility,
    vector_flexibility_norm,
)
from repro.workloads import (
    example11_large_flexoffer,
    example11_small_flexoffer,
    example11_zero_energy_flexoffer,
    example13_wide_time_flexoffer,
    figure2_flexoffer,
)

from conftest import report


def test_ex11_product_limitations(benchmark):
    zero_ef = example11_zero_energy_flexoffer()
    small = example11_small_flexoffer()
    large = example11_large_flexoffer()

    values = benchmark(
        lambda: (
            product_flexibility(zero_ef),
            product_flexibility(small),
            product_flexibility(large),
        )
    )
    zero_product, small_product, large_product = values

    assert time_flexibility(zero_ef) == 6 and zero_product == 0
    assert small_product == large_product == 8

    report("Example 11 — product flexibility limitations", [
        f"fx=([2,8],<[5,5]>)        paper product=0   measured={zero_product}",
        f"fx=([1,3],<[1,5]>)        paper product=8   measured={small_product}",
        f"fy=([1,3],<[101,105]>)    paper product=8   measured={large_product}",
        "-> equal values despite a >100x difference in minimum energy need",
    ])


def test_ex12_vector_limitations(benchmark):
    small = example11_small_flexoffer()
    large = example11_large_flexoffer()

    values = benchmark(
        lambda: (
            vector_flexibility_norm(small, "l1"),
            vector_flexibility_norm(large, "l1"),
            vector_flexibility_norm(small, "l2"),
            vector_flexibility_norm(large, "l2"),
        )
    )
    small_l1, large_l1, small_l2, large_l2 = values

    assert small_l1 == large_l1 == 6
    assert small_l2 == pytest.approx(4.472, abs=1e-3)
    assert large_l2 == pytest.approx(4.472, abs=1e-3)

    report("Example 12 — vector flexibility limitations", [
        f"L1 norm   paper=6 for both       measured fx={small_l1}, fy={large_l1}",
        f"L2 norm   paper=4.472 for both   measured fx={small_l2:.3f}, fy={large_l2:.3f}",
    ])


def test_ex13_series_limitations(benchmark):
    narrow = figure2_flexoffer()
    wide = example13_wide_time_flexoffer()

    values = benchmark(
        lambda: (
            series_flexibility(narrow, "l1"),
            series_flexibility(wide, "l1"),
            series_flexibility(narrow, "l2"),
            series_flexibility(wide, "l2"),
        )
    )
    narrow_l1, wide_l1, narrow_l2, wide_l2 = values

    assert time_flexibility(wide) == 10 * time_flexibility(narrow)
    assert narrow_l1 == wide_l1 == 1
    assert narrow_l2 == wide_l2 == 1

    report("Example 13 — time-series flexibility limitations", [
        f"f1  = ([0,1],<[0,1]>)   L1/L2 paper=1/1  measured={narrow_l1}/{narrow_l2}",
        f"f1' = ([0,10],<[0,1]>)  L1/L2 paper=1/1  measured={wide_l1}/{wide_l2}",
        "-> identical norms despite 10x more time flexibility",
    ])
