"""E-AGG — Scenario 1: flexibility loss of aggregation strategies.

For the synthetic neighbourhood workload, aggregates the flex-offers with
three strategies (grouping by similar time parameters, one single group, and
fixed-size bins) and reports the flexibility retained under every applicable
measure.  Expected shape (no absolute numbers in the paper): aggregation
compresses the population, start-alignment preserves total energy
flexibility exactly, and grouping by similar time parameters retains at least
as much time/product flexibility as throwing everything into one group.
"""

import pytest

from repro.aggregation import (
    GroupingParameters,
    aggregate_all,
    compare_strategies,
    group_all_together,
    group_by_grid,
    group_fixed_size,
)
from repro.analysis import format_loss_report

from conftest import report

MEASURES = ["time", "energy", "product", "vector", "series", "assignments"]


def _run_strategies(originals):
    strategies = {
        "grouped(tes,tf)": aggregate_all(
            group_by_grid(originals, GroupingParameters(4, 2)), prefix="grouped"
        ),
        "one-group": aggregate_all(group_all_together(originals), prefix="single"),
        "bins-of-4": aggregate_all(group_fixed_size(originals, 4), prefix="bin"),
    }
    return compare_strategies(originals, strategies, MEASURES)


def test_aggregation_flexibility_loss(benchmark, neighbourhood):
    originals = list(neighbourhood.flex_offers)
    reports = benchmark(_run_strategies, originals)

    grouped = reports["grouped(tes,tf)"]
    single = reports["one-group"]

    # Start-alignment aggregation preserves the summed energy flexibility.
    assert grouped.retained("energy") == pytest.approx(1.0)
    # Aggregation reduces the number of flex-offers.
    assert grouped.compression > 1.0
    assert single.aggregate_count == 1
    # Aggregation never creates time or product flexibility.
    for strategy_report in reports.values():
        assert strategy_report.retained("time") <= 1.0 + 1e-9
        assert strategy_report.retained("product") <= 1.0 + 1e-9
    # Grouping by similar time parameters retains at least as much time
    # flexibility as one big group (the Scenario 1 motivation for grouping).
    assert grouped.retained("time") >= single.retained("time") - 1e-9

    report(
        "Scenario 1 — aggregation flexibility loss "
        f"({len(originals)} flex-offers)",
        format_loss_report(reports, MEASURES).splitlines(),
    )
