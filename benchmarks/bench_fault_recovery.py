"""PR 9 — the price of self-healing: fault-free overhead + shard-loss recovery.

Two gates guard the robustness plane:

* **Fault-free overhead <= 5%.**  The retry/hedge/fault machinery sits on
  the hot fan-out path of every sharded operation, so its cost when
  *nothing fails* must be noise: a guarded backend (retry budget active,
  a fault plan attached whose rules never match) must stay within 5% of a
  bare backend (``retries=0``, no plan) on the same workload.
* **Shard-loss recovery.**  Killing a process-pool worker mid-evaluate
  must heal — pool rebuilt once, only lost shards re-dispatched, result
  bit-identical — within a bounded wall-clock envelope over the
  fault-free run (pool respawn is the dominant, constant cost).
"""

from __future__ import annotations

import json
import statistics
import time

import pytest

from repro.backend import NUMPY_AVAILABLE, ShardedBackend, get_backend
from repro.faults import SHARD_SUBMIT, FaultPlan, FaultRule
from repro.measures import get_measure
from repro.workloads import neighbourhood_scenario

try:
    from conftest import report
except ImportError:  # pragma: no cover - loaded by path (bench_to_json)

    def report(title: str, lines) -> None:
        """Plain-stdout stand-in when pytest's conftest is not importable."""
        print(f"\n=== {title} ===")
        for line in lines:
            print(f"  {line}")


#: Populations for the overhead measurement (smoke, gate).
SCALES = [2_000, 20_000]

#: Median-of-N timing; the 5% gate needs a stable central estimate.
REPEATS = 7

#: The overhead gate: guarded / bare, fault-free.
MAX_OVERHEAD_RATIO = 1.05

#: Shard-loss envelope: the faulted call may cost at most the fault-free
#: median plus this allowance (pool teardown + respawn + re-dispatch).
RECOVERY_ALLOWANCE_S = 10.0

MEASURE = get_measure("product")


def population(size: int) -> list:
    offers = []
    scenario = neighbourhood_scenario(households=64, seed=11)
    while len(offers) < size:
        for offer in scenario.flex_offers:
            offers.append(offer)
            if len(offers) == size:
                break
    return offers


def bare_backend(**kwargs) -> ShardedBackend:
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("min_population", 1)
    return ShardedBackend(retries=0, faults=None, **kwargs)


def guarded_backend(**kwargs) -> ShardedBackend:
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("min_population", 1)
    # A live plan whose rules can never match this workload's sites: the
    # fault plane is fully armed, counters tick, nothing fires.
    plan = FaultPlan([FaultRule(SHARD_SUBMIT, after=10**9)])
    return ShardedBackend(retries=2, faults=plan, **kwargs)


def median_seconds(backend, offers, repeats: int = REPEATS) -> float:
    backend.measure_values(MEASURE, offers)  # warm the pool + caches
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        backend.measure_values(MEASURE, offers)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def run_overhead(size: int) -> dict:
    offers = population(size)
    bare = bare_backend()
    guarded = guarded_backend()
    try:
        expected = get_backend("reference").measure_values(MEASURE, offers)
        assert guarded.measure_values(MEASURE, offers) == expected
        bare_s = median_seconds(bare, offers)
        guarded_s = median_seconds(guarded, offers)
    finally:
        bare.close()
        guarded.close()
    return {
        "population": size,
        "bare_seconds": round(bare_s, 5),
        "guarded_seconds": round(guarded_s, 5),
        "overhead_ratio": round(guarded_s / bare_s, 4),
    }


def run_shard_loss(size: int = 2_000) -> dict:
    offers = population(size)
    clean = ShardedBackend(shards=2, min_population=1, executor="process")
    try:
        expected = clean.measure_values(MEASURE, offers)
        clean_s = median_seconds(clean, offers, repeats=3)
    finally:
        clean.close()

    plan = FaultPlan([FaultRule(SHARD_SUBMIT, action="kill", after=2, count=1)])
    faulted = ShardedBackend(
        shards=2, min_population=1, executor="process", faults=plan
    )
    try:
        faulted.measure_values(MEASURE, offers)  # warm pool; no rule yet (hit 2 kills)
        start = time.perf_counter()
        healed = faulted.measure_values(MEASURE, offers)
        faulted_s = time.perf_counter() - start
        assert healed == expected  # bit-identical through the kill
        # The second call (or this one) observes the breakage; force it
        # fully drained so the rebuild is counted before we assert.
        assert faulted.measure_values(MEASURE, offers) == expected
        stats = faulted.resilience_stats()
    finally:
        faulted.close()
    assert stats["worker_kills"] == 1
    assert stats["pool_rebuilds"] == 1
    return {
        "population": size,
        "clean_seconds": round(clean_s, 5),
        "shard_loss_seconds": round(faulted_s, 5),
        "recovery_overhead_seconds": round(max(0.0, faulted_s - clean_s), 5),
    }


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``."""
    size = SCALES[1] if gate_scale else SCALES[0]
    overhead = run_overhead(size)
    loss = run_shard_loss()
    return [
        {
            "name": f"fault_plane_overhead_{size}",
            "scale": size,
            "bare_seconds": overhead["bare_seconds"],
            "guarded_seconds": overhead["guarded_seconds"],
            "overhead_ratio": overhead["overhead_ratio"],
        },
        {
            "name": f"shard_loss_recovery_{loss['population']}",
            "scale": loss["population"],
            "clean_seconds": loss["clean_seconds"],
            "shard_loss_seconds": loss["shard_loss_seconds"],
            "recovery_overhead_seconds": loss["recovery_overhead_seconds"],
        },
    ]


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
@pytest.mark.parametrize("size", SCALES, ids=lambda value: str(value))
def test_fault_free_overhead_gate(size):
    results = run_overhead(size)
    report(f"Fault-plane overhead, fault-free ({size} offers)", [
        f"bare (retries=0, no plan) : {results['bare_seconds'] * 1e3:>9.2f} ms",
        f"guarded (retries=2, plan) : {results['guarded_seconds'] * 1e3:>9.2f} ms",
        f"ratio                     : {results['overhead_ratio']:.3f}",
    ])
    print(json.dumps(results, indent=2))
    # The acceptance gate applies at the larger scale, where per-call cost
    # dominates timer noise; the smoke scale just has to stay sane.
    if size >= SCALES[1]:
        assert results["overhead_ratio"] <= MAX_OVERHEAD_RATIO
    else:
        assert results["overhead_ratio"] <= 1.5


def test_shard_loss_recovery_gate():
    results = run_shard_loss()
    report("Shard-loss recovery (process worker killed mid-evaluate)", [
        f"fault-free        : {results['clean_seconds'] * 1e3:>9.2f} ms",
        f"with worker kill  : {results['shard_loss_seconds'] * 1e3:>9.2f} ms",
        f"recovery overhead : {results['recovery_overhead_seconds'] * 1e3:>9.2f} ms",
    ])
    print(json.dumps(results, indent=2))
    assert results["shard_loss_seconds"] <= results["clean_seconds"] + RECOVERY_ALLOWANCE_S
