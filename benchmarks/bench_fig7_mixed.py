"""E-F7 — Figure 7 / Examples 14-15: the mixed flex-offer f6.

Reproduces the 240-assignment count (and its tf=0 / ef=0 variants), the
union area of 24 cells, and the Example 15 area-based values (32 and 6.4)
obtained with the paper's own convention for mixed flex-offers.
"""

import pytest

from repro.core import flexoffer_area_size
from repro.measures import (
    MixedPolicy,
    absolute_area_flexibility,
    assignment_flexibility,
    energy_flexibility,
    relative_area_flexibility,
    time_flexibility,
)
from repro.workloads import figure7_flexoffer

from conftest import report


def _mixed_measures(flex_offer):
    return (
        time_flexibility(flex_offer),
        energy_flexibility(flex_offer),
        assignment_flexibility(flex_offer),
        assignment_flexibility(flex_offer.without_time_flexibility()),
        assignment_flexibility(flex_offer.without_energy_flexibility()),
        flexoffer_area_size(flex_offer),
        absolute_area_flexibility(flex_offer, MixedPolicy.PAPER_EXAMPLE),
        relative_area_flexibility(flex_offer, MixedPolicy.PAPER_EXAMPLE),
    )


def test_fig7_mixed_flexoffer(benchmark):
    flex_offer = figure7_flexoffer()
    tf, ef, count, count_tf0, count_ef0, union, absolute, relative = benchmark(
        _mixed_measures, flex_offer
    )

    assert (tf, ef) == (2, 10)
    assert count == 240          # Example 14
    assert count_tf0 == 80       # Example 14
    assert count_ef0 == 3        # Example 14
    assert union == 24           # Example 15
    assert absolute == 32        # Example 15: 24 - (-8)
    assert relative == pytest.approx(6.4)  # Example 15

    report("Figure 7 / Examples 14-15 (mixed f6)", [
        f"tf / ef                  paper=2/10   measured={tf}/{ef}",
        f"assignments              paper=240    measured={count}",
        f"assignments, tf=0        paper=80     measured={count_tf0}",
        f"assignments, ef=0        paper=3      measured={count_ef0}",
        f"union area               paper=24     measured={union}",
        f"absolute area (Ex. 15)   paper=32     measured={absolute}",
        f"relative area (Ex. 15)   paper=6.4    measured={relative}",
    ])
