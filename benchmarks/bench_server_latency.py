"""S-GATEWAY — latency and throughput of the multi-tenant asyncio gateway.

The ROADMAP's "millions of users" proof point: one gateway process serving
1,000+ concurrent tenants, each with an isolated session, over the full
HTTP wire path (parse → ``request_from_dict`` → worker-pool submit →
``result_to_dict``), with mixed evaluate/schedule/trade/stream traffic
driven by :mod:`tools.loadgen` over the in-process asyncio transport.

Two CI gates:

* **sustained throughput + bounded tail** — 1,000 concurrent tenants,
  4 mixed requests each, must complete with zero failures at >= 200 req/s
  with p99 latency <= 10 s (measured ~1,200 req/s and p99 ~1.2 s on a
  single-core dev box; the gate leaves ~6x/8x headroom for noisy CI
  runners).
* **saturation behaviour** — a deliberately tiny gateway (1 execution
  slot, 1 waiting slot, zero per-session queue) flooded with concurrent
  requests must answer 429 + ``Retry-After`` for the overflow and keep
  every queue within its configured bound: backpressure, never unbounded
  queue growth.

``bench_records()`` feeds p50/p95/p99 and RPS into the cumulative
BENCH_PR6.json dashboard; ``speedup`` is the concurrency gain of the
closed-loop fleet over one solo tenant issuing the same mix sequentially.
"""

from __future__ import annotations

import asyncio
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

from loadgen import run_load  # noqa: E402

try:
    from conftest import report
except ImportError:  # pragma: no cover - loaded by path (bench_to_json)

    def report(title: str, lines) -> None:
        """Plain-stdout stand-in when pytest's conftest is not importable."""
        print(f"\n=== {title} ===")
        for line in lines:
            print(f"  {line}")


#: The CI smoke scale (the ISSUE acceptance floor) and its gates.
GATE_TENANTS = 1_000
GATE_REQUESTS = 4
GATE_MIN_RPS = 200.0
GATE_MAX_P99_MS = 10_000.0


def _summary_lines(summary: dict) -> list:
    return [
        f"tenants={summary['tenants']} completed={summary['completed']} "
        f"failures={summary['failures']} retries_429={summary['retries_429']}",
        f"rps={summary['rps']:.0f} p50={summary['p50_ms']:.1f}ms "
        f"p95={summary['p95_ms']:.1f}ms p99={summary['p99_ms']:.1f}ms",
    ]


def run_scale(tenants: int, requests: int = GATE_REQUESTS) -> dict:
    """One closed-loop mixed-traffic run at the given tenant count."""
    return asyncio.run(run_load(tenants=tenants, requests=requests))


def test_gateway_sustains_1000_concurrent_tenants():
    """ISSUE acceptance: >= 1,000 concurrent tenants, mixed traffic, zero
    failures, sustained throughput and a bounded p99."""
    summary = run_scale(GATE_TENANTS)
    report(
        f"gateway mixed traffic @ {GATE_TENANTS} tenants",
        _summary_lines(summary),
    )
    assert summary["completed"] == GATE_TENANTS * GATE_REQUESTS
    assert summary["failures"] == 0
    assert summary["rps"] >= GATE_MIN_RPS, (
        f"sustained throughput {summary['rps']:.0f} req/s below the "
        f"{GATE_MIN_RPS:.0f} req/s gate"
    )
    assert summary["p99_ms"] <= GATE_MAX_P99_MS, (
        f"p99 latency {summary['p99_ms']:.0f} ms above the "
        f"{GATE_MAX_P99_MS:.0f} ms gate"
    )


def test_saturated_gateway_rejects_with_429_and_bounded_queues():
    """Flooding a one-slot gateway yields 429 + Retry-After for the
    overflow — bounded queues, no unbounded growth, no errors."""
    from repro.server import Gateway, GatewayClient, GatewayConfig
    from repro.service import EvaluateRequest, SessionConfig

    flood = 40

    async def scenario():
        gateway = Gateway(
            GatewayConfig(
                max_concurrency=1,
                max_pending=1,
                session_queue_depth=0,
                workers=1,
                session_defaults=SessionConfig(backend="reference"),
            )
        )
        try:
            setup = GatewayClient.in_process(gateway)
            for name in ("flood-a", "flood-b"):
                created = await setup.create_session(name)
                assert created.status == 201

            async def one(index: int):
                client = GatewayClient.in_process(gateway)
                name = "flood-a" if index % 2 else "flood-b"
                response = await client.submit(name, EvaluateRequest())
                await client.close()
                return response

            responses = await asyncio.gather(
                *(one(index) for index in range(flood))
            )
            await setup.close()
            return responses, gateway.stats()
        finally:
            gateway.close()

    responses, stats = asyncio.run(scenario())
    statuses = sorted({response.status for response in responses})
    rejected = [r for r in responses if r.status == 429]
    report(
        f"saturation flood ({flood} concurrent, 1 slot)",
        [
            f"statuses={statuses} rejected={len(rejected)}",
            f"gate={stats['gate']}",
        ],
    )
    assert set(statuses) <= {200, 429}
    assert rejected, "a one-slot gateway must shed a 40-request flood"
    assert all(r.retry_after is not None for r in rejected)
    assert all(r.payload["error"] == "saturated" for r in rejected)
    # The bounded-queue invariant: nothing ever waited beyond the limits.
    assert stats["gate"]["waiting"] == 0
    assert stats["gate"]["rejected"] + stats["gate"]["admitted"] >= flood


def bench_records(gate_scale: bool = False) -> list:
    """Machine-readable records for the cumulative BENCH_PR*.json dashboard.

    ``speedup`` is the concurrency gain: fleet RPS over the RPS of a
    single tenant issuing the same request mix sequentially.
    """
    tenants = GATE_TENANTS if gate_scale else 200
    solo = asyncio.run(run_load(tenants=1, requests=64))
    fleet = run_scale(tenants)
    return [
        {
            "name": f"gateway_mixed_{tenants}_tenants",
            "tenants": tenants,
            "requests": fleet["completed"],
            "failures": fleet["failures"],
            "ops_per_s": fleet["rps"],
            "speedup": fleet["rps"] / solo["rps"] if solo["rps"] else float("nan"),
            "p50_ms": fleet["p50_ms"],
            "p95_ms": fleet["p95_ms"],
            "p99_ms": fleet["p99_ms"],
            "solo_rps": solo["rps"],
        }
    ]


if __name__ == "__main__":
    for record in bench_records(gate_scale="--gate-scale" in sys.argv):
        print(record)
