"""E-STREAM — throughput of the streaming engine vs. naive re-batching.

The ROADMAP's north star is heavy, continuous flex-offer traffic.  The batch
pipeline can only serve that by re-running ``group_by_grid`` →
``aggregate_all`` → ``evaluate_set`` after every event — O(population) work
for an O(1)-sized change.  This benchmark measures events/sec of the
:class:`~repro.stream.StreamingEngine` against that naive re-batching
baseline on populations of 1k / 10k / 100k offers, under a churn workload
(one expiry + one arrival per step, holding the population size constant).

Two engine numbers are reported:

* ``maintain`` — apply-only throughput (the engine's O(1)-per-event claim);
* ``query``    — apply plus a full population report every event (the worst
  case where a consumer wants batch-pipeline outputs after *each* event; the
  report combines cached per-offer values, so it is O(population) floating
  additions, not O(population) measure re-evaluations).

Each scale prints a JSON results block so runs can be scraped and compared;
the acceptance gate asserts the incremental path beats naive re-batching by
at least 10x at the 10k scale even on the conservative ``query`` number.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.aggregation import GroupingParameters, aggregate_all, group_by_grid
from repro.core import FlexOffer
from repro.measures import evaluate_set
from repro.stream import OfferArrived, OfferExpired, StreamingEngine

try:
    from conftest import report
except ImportError:  # pragma: no cover - loaded by path (bench_to_json)

    def report(title: str, lines) -> None:
        """Plain-stdout stand-in when pytest's conftest is not importable."""
        print(f"\n=== {title} ===")
        for line in lines:
            print(f"  {line}")

#: Cheap per-offer measures so the naive baseline stays runnable at 100k.
MEASURES = ["time", "energy", "vector"]
PARAMETERS = GroupingParameters()

#: (population size, churn events timed, naive re-batch events timed)
SCALES = [
    (1_000, 400, 10),
    (10_000, 400, 5),
    (100_000, 400, 2),
]


def synthetic_population(size: int, seed: int = 0) -> list[FlexOffer]:
    """A cheap day-ahead-style population (96 quarter-hour start slots)."""
    rng = random.Random(seed)
    population = []
    for index in range(size):
        earliest = rng.randrange(0, 96)
        time_flex = rng.randrange(0, 8)
        slices = []
        for _ in range(rng.randint(1, 4)):
            low = rng.randint(0, 3)
            slices.append((low, low + rng.randint(0, 3)))
        population.append(
            FlexOffer(earliest, earliest + time_flex, slices, name=f"syn-{index}")
        )
    return population


def run_scale(size: int, churn_events: int, naive_events: int) -> dict[str, float]:
    population = synthetic_population(size, seed=size)
    replacements = synthetic_population(churn_events, seed=size + 1)

    # --- incremental engine -------------------------------------------- #
    engine = StreamingEngine(parameters=PARAMETERS, measures=MEASURES)
    start = time.perf_counter()
    for index, flex_offer in enumerate(population):
        engine.apply(OfferArrived(f"o{index}", flex_offer))
    prefill_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for step in range(churn_events):
        engine.apply(OfferExpired(f"o{step}"))
        engine.apply(OfferArrived(f"n{step}", replacements[step]))
    maintain_seconds = time.perf_counter() - start
    maintain_eps = 2 * churn_events / maintain_seconds

    query_steps = max(10, naive_events * 4)
    start = time.perf_counter()
    for step in range(query_steps):
        engine.apply(OfferExpired(f"n{step}"))
        engine.apply(OfferArrived(f"n{step}", replacements[step]))
        engine.report()
    query_seconds = time.perf_counter() - start
    query_eps = 2 * query_steps / query_seconds

    # --- naive re-batching baseline ------------------------------------ #
    survivors = list(population)
    start = time.perf_counter()
    for step in range(naive_events):
        survivors[step] = replacements[step]  # same churn, batch world-view
        groups = group_by_grid(survivors, PARAMETERS)
        aggregate_all(groups)
        evaluate_set(survivors, MEASURES)
    naive_seconds = time.perf_counter() - start
    naive_eps = naive_events / naive_seconds

    return {
        "population": size,
        "prefill_seconds": round(prefill_seconds, 4),
        "engine_maintain_events_per_sec": round(maintain_eps, 1),
        "engine_query_events_per_sec": round(query_eps, 1),
        "naive_rebatch_events_per_sec": round(naive_eps, 3),
        "speedup_maintain": round(maintain_eps / naive_eps, 1),
        "speedup_query": round(query_eps / naive_eps, 1),
    }


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``."""
    scales = [(10_000, 400, 5)] if gate_scale else [(1_000, 300, 5)]
    records = []
    for size, churn, naive in scales:
        results = run_scale(size, churn, naive)
        records.append(
            {
                "name": f"stream_churn_{size}",
                "scale": size,
                "ops_per_s": results["engine_maintain_events_per_sec"],
                "query_ops_per_s": results["engine_query_events_per_sec"],
                "naive_ops_per_s": results["naive_rebatch_events_per_sec"],
                "speedup": results["speedup_maintain"],
                "speedup_query": results["speedup_query"],
            }
        )
    return records


@pytest.mark.parametrize(
    "size,churn_events,naive_events", SCALES, ids=lambda value: str(value)
)
def test_stream_throughput(size, churn_events, naive_events):
    results = run_scale(size, churn_events, naive_events)

    report(f"Streaming engine vs naive re-batching ({size} offers)", [
        f"engine maintain : {results['engine_maintain_events_per_sec']:>12.1f} events/sec",
        f"engine query    : {results['engine_query_events_per_sec']:>12.1f} events/sec",
        f"naive re-batch  : {results['naive_rebatch_events_per_sec']:>12.3f} events/sec",
        f"speedup         : {results['speedup_maintain']:.0f}x maintain, "
        f"{results['speedup_query']:.0f}x query",
    ])
    print(json.dumps(results, indent=2))

    # The incremental path must beat re-batching decisively; at the 10k
    # scale the acceptance gate is >= 10x even on the conservative
    # query-every-event number.
    assert results["speedup_maintain"] > 10
    if size >= 10_000:
        assert results["speedup_query"] >= 10


def test_engine_scales_sublinearly_per_event():
    """Per-event maintenance cost must not grow with the population."""
    small = run_scale(1_000, 300, 1)
    large = run_scale(10_000, 300, 1)
    # Allow generous noise: 10x population must cost far less than 10x
    # per-event time (it is ~O(1) amortised).
    assert (
        large["engine_maintain_events_per_sec"]
        > small["engine_maintain_events_per_sec"] / 3
    )
