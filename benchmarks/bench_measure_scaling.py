"""E-SCALE — throughput of every measure on growing flex-offer populations.

The measures must be cheap enough to evaluate on large populations (the
paper's Scenario 1 talks about "a large number of flex-offers, issued for a
variety of appliances").  This benchmark times the evaluation of all eight
measures over an EV-fleet population and checks that cost grows roughly
linearly with the population size.
"""

import pytest

from repro.measures import evaluate_set
from repro.workloads import scaling_scenario

from conftest import report

MEASURES = [
    "time", "energy", "product", "vector", "series", "assignments",
    "absolute_area", "relative_area",
]


@pytest.mark.parametrize("size", [50, 200])
def test_measure_scaling(benchmark, size):
    scenario = scaling_scenario(size, seed=3)
    flex_offers = list(scenario.flex_offers)

    result = benchmark(evaluate_set, flex_offers, MEASURES)

    assert result.size == size
    assert set(result.values) == set(MEASURES)
    assert result.values["time"] >= 0

    report(f"Measure-evaluation scaling (population of {size} EVs)", [
        f"{key:15s} set value = {value:.1f}" for key, value in result.values.items()
    ])


def test_single_flexoffer_measure_cost(benchmark):
    """Cost of evaluating every measure on one realistic flex-offer."""
    scenario = scaling_scenario(1, seed=4)
    flex_offer = scenario.flex_offers[0]
    result = benchmark(evaluate_set, [flex_offer], MEASURES)
    assert result.size == 1
