"""E-BACKEND — reference vs. NumPy compute backend across population sizes.

The ROADMAP's north star is "fast as the hardware allows"; the backend layer
delivers it by replacing the per-object Python loops of the hot paths with
packed-array arithmetic.  This benchmark times the bulk operations on
synthetic consumption populations (so every registered measure participates,
area-based ones included) at 100 / 1k / 10k offers:

* ``evaluate_set`` — all eight registered measures over the population;
* ``measure:series`` / ``measure:absolute_area`` — the two most expensive
  single measures, per-offer values;
* ``feasible_profiles`` — extreme-assignment profiles (min and max);
* ``aggregate`` — one start-aligned aggregate over the whole population;
* ``bulk_ingest`` — streaming-engine ingestion of the population
  (``bulk_arrive`` vs. per-event ``apply``).

Both backends produce *identical* results (the conformance suite pins
that); the point here is the wall-clock ratio.  The acceptance gate asserts
the NumPy backend wins by ≥10x on at least one hot path at the 10k scale.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backend_speedup.py

or through pytest (the 10k acceptance gate)::

    PYTHONPATH=src python -m pytest benchmarks/bench_backend_speedup.py -q -s
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.aggregation import aggregate_start_aligned
from repro.backend import NUMPY_AVAILABLE, get_backend, use_backend
from repro.core import FlexOffer, batch_feasible_profiles
from repro.measures import evaluate_set, get_measure
from repro.stream import OfferArrived, StreamingEngine

SCALES = [100, 1_000, 10_000]

#: Measures the streaming-ingestion comparison maintains.
ENGINE_MEASURES = ["time", "energy", "product", "vector", "series", "assignments"]


def synthetic_population(size: int, seed: int = 0) -> list[FlexOffer]:
    """A day-ahead-style consumption population (ragged 1–4 slice profiles)."""
    rng = random.Random(seed)
    population = []
    for index in range(size):
        earliest = rng.randrange(0, 96)
        time_flex = rng.randrange(0, 8)
        slices = []
        for position in range(rng.randint(1, 4)):
            # Keep the first slice strictly positive so |cmin| + |cmax| > 0
            # and the relative area measure is defined for every offer.
            low = rng.randint(1 if position == 0 else 0, 3)
            slices.append((low, low + rng.randint(0, 4)))
        profile_min = sum(s[0] for s in slices)
        profile_max = sum(s[1] for s in slices)
        cmin = rng.randint(profile_min, profile_max)
        cmax = rng.randint(cmin, profile_max)
        population.append(
            FlexOffer(
                earliest,
                earliest + time_flex,
                slices,
                cmin,
                cmax,
                name=f"offer-{index}",
            )
        )
    return population


def _timed(operation) -> tuple[float, object]:
    started = time.perf_counter()
    result = operation()
    return time.perf_counter() - started, result


def _operations(population: list[FlexOffer]):
    series = get_measure("series")
    area = get_measure("absolute_area")

    def ingest() -> StreamingEngine:
        engine = StreamingEngine(measures=ENGINE_MEASURES)
        if get_backend().name == "reference":
            for index, offer in enumerate(population):
                engine.apply(OfferArrived(f"f{index}", offer))
            return engine
        return engine.bulk_arrive(
            (f"f{index}", offer) for index, offer in enumerate(population)
        )

    return {
        "evaluate_set": lambda: evaluate_set(population),
        "measure:series": lambda: get_backend().measure_values(series, population),
        "measure:absolute_area": lambda: get_backend().measure_values(
            area, population
        ),
        "feasible_profiles": lambda: (
            batch_feasible_profiles(population, "min"),
            batch_feasible_profiles(population, "max"),
        ),
        "aggregate": lambda: aggregate_start_aligned(population),
        "bulk_ingest": ingest,
    }


def compare_backends(size: int, seed: int = 0) -> dict[str, dict[str, float]]:
    """``{operation: {reference, numpy, speedup}}`` wall-clock seconds."""
    population = synthetic_population(size, seed)
    results: dict[str, dict[str, float]] = {}
    for operation in _operations(population):
        row: dict[str, float] = {}
        outputs = {}
        for backend in ("reference", "numpy"):
            with use_backend(backend):
                elapsed, output = _timed(_operations(population)[operation])
            row[backend] = elapsed
            outputs[backend] = output
        if operation == "bulk_ingest":
            # Equality of full snapshots is its own (conformance) test; the
            # benchmark only sanity-checks the population-level report here.
            assert outputs["reference"].report() == outputs["numpy"].report()
        else:
            assert outputs["reference"] == outputs["numpy"]
        row["speedup"] = row["reference"] / row["numpy"] if row["numpy"] else 0.0
        results[operation] = row
    return results


def bench_records(gate_scale: bool = False) -> list[dict]:
    """Machine-readable records for ``tools/bench_to_json.py``.

    The default scale keeps the cross-PR perf artifact cheap to emit; the
    gate scale records the population the CI acceptance gate reasons about.
    """
    scale = 10_000 if gate_scale else 1_000
    records = []
    for operation, row in compare_backends(scale).items():
        elapsed = row["numpy"]
        records.append(
            {
                "name": f"{operation}_{scale}",
                "scale": scale,
                "reference_s": row["reference"],
                "numpy_s": elapsed,
                "ops_per_s": 1.0 / elapsed if elapsed else 0.0,
                "speedup": row["speedup"],
            }
        )
    return records


def main() -> None:
    for size in SCALES:
        results = compare_backends(size)
        print(f"\n=== backend speedup @ {size} offers ===")
        for operation, row in results.items():
            print(
                f"  {operation:22s} reference {row['reference'] * 1e3:9.2f} ms   "
                f"numpy {row['numpy'] * 1e3:8.2f} ms   {row['speedup']:7.1f}x"
            )
        print(json.dumps({"scale": size, "results": results}))


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
def test_numpy_backend_wins_10x_on_a_10k_hot_path():
    """Acceptance gate: ≥10x on at least one hot path at 10k offers."""
    results = compare_backends(10_000)
    best = max(results.items(), key=lambda item: item[1]["speedup"])
    print(
        f"\nbest 10k speedup: {best[0]} at {best[1]['speedup']:.1f}x "
        f"({best[1]['reference'] * 1e3:.1f} ms -> {best[1]['numpy'] * 1e3:.1f} ms)"
    )
    assert best[1]["speedup"] >= 10.0, results


if __name__ == "__main__":
    main()
