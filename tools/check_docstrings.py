#!/usr/bin/env python3
"""Docstring-coverage gate (a dependency-free stand-in for ``interrogate``).

Walks a package tree with :mod:`ast`, counts every public definition —
modules, classes, and functions/methods whose name does not start with an
underscore (dunders other than ``__init__`` are ignored, as are
``@overload`` stubs) — and fails when the fraction carrying a docstring
drops below the threshold.

Usage::

    python tools/check_docstrings.py src/repro --fail-under 80 [-v]

Exit status 0 when coverage >= threshold, 1 otherwise (and 2 on bad usage),
so the script can gate CI directly.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path


def is_public_function(node: ast.AST) -> bool:
    """Whether a function/method definition counts toward coverage."""
    name = node.name
    if name.startswith("__"):
        return name == "__init__"
    if name.startswith("_"):
        return False
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        attribute = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", "")
        )
        if attribute == "overload":
            return False
    return True


def scan_module(path: Path) -> list[tuple[str, bool]]:
    """``(qualified name, has_docstring)`` for every public definition."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found: list[tuple[str, bool]] = [
        (str(path), ast.get_docstring(tree) is not None)
    ]

    def visit(node: ast.AST, prefix: str, in_private: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                private = in_private or child.name.startswith("_")
                if not private:
                    found.append(
                        (
                            f"{path}::{prefix}{child.name}",
                            ast.get_docstring(child) is not None,
                        )
                    )
                visit(child, f"{prefix}{child.name}.", private)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not in_private and is_public_function(child):
                    found.append(
                        (
                            f"{path}::{prefix}{child.name}",
                            ast.get_docstring(child) is not None,
                        )
                    )
                # Nested defs are implementation detail: not visited.

    visit(tree, "", in_private=False)
    return found


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("roots", nargs="+", type=Path, help="package roots to scan")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=80.0,
        help="minimum coverage percentage (default: 80)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="list every undocumented public definition",
    )
    options = parser.parse_args(argv)

    entries: list[tuple[str, bool]] = []
    for root in options.roots:
        if not root.exists():
            print(f"error: {root} does not exist", file=sys.stderr)
            return 2
        for path in sorted(root.rglob("*.py")):
            entries.extend(scan_module(path))
    if not entries:
        print("error: nothing to scan", file=sys.stderr)
        return 2

    documented = sum(1 for _, has_doc in entries if has_doc)
    coverage = 100.0 * documented / len(entries)
    missing = [name for name, has_doc in entries if not has_doc]
    if options.verbose and missing:
        print("undocumented public definitions:")
        for name in missing:
            print(f"  {name}")
    print(
        f"docstring coverage: {documented}/{len(entries)} public definitions "
        f"({coverage:.1f}%), threshold {options.fail_under:.1f}%"
    )
    if coverage < options.fail_under:
        print("FAILED docstring-coverage gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
