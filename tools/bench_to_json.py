#!/usr/bin/env python3
"""Emit machine-readable benchmark results for cross-PR perf tracking.

Imports each given benchmark module (by file path), calls its
``bench_records()`` entry point — a list of dicts, each carrying at least
``name``, ``ops_per_s`` and ``speedup`` — and writes the merged results,
plus host metadata, as JSON.  CI runs this after the benchmark gates so the
perf trajectory (op/s and speedup per benchmark) is recorded per push
instead of living only in job logs.

Usage (the CI cross-PR dashboard emits all four benchmark modules)::

    PYTHONPATH=src python tools/bench_to_json.py \
        --output BENCH_PR5.json \
        benchmarks/bench_incremental_matrix.py \
        benchmarks/bench_backend_speedup.py \
        benchmarks/bench_sharded_scaling.py \
        benchmarks/bench_stream_throughput.py

Modules may accept no arguments in ``bench_records()``; pass
``--gate-scale`` to request the (slower) CI-gate scales from modules that
support a ``gate_scale`` keyword.  Exit status 0 on success, 2 on bad
usage or a module without ``bench_records``.
"""

from __future__ import annotations

import argparse
import importlib.util
import inspect
import json
import os
import platform
import sys
from pathlib import Path


def load_module(path: Path):
    """Import a benchmark module from its file path."""
    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def collect(path: Path, gate_scale: bool) -> list[dict]:
    """The records of one benchmark module."""
    module = load_module(path)
    records = getattr(module, "bench_records", None)
    if records is None:
        raise AttributeError(f"{path} does not define bench_records()")
    parameters = inspect.signature(records).parameters
    if "gate_scale" in parameters:
        return records(gate_scale=gate_scale)
    return records()


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("modules", nargs="+", type=Path)
    parser.add_argument("--output", type=Path, default=Path("BENCH_PR5.json"))
    parser.add_argument(
        "--gate-scale",
        action="store_true",
        help="also run the CI-gate scales (slower)",
    )
    args = parser.parse_args(argv)
    payload: dict = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": {},
    }
    for path in args.modules:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        try:
            records = collect(path, args.gate_scale)
        except AttributeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        payload["benchmarks"][path.stem] = records
        for record in records:
            print(
                f"{path.stem}/{record.get('name', '?')}: "
                f"{record.get('ops_per_s', float('nan')):.1f} op/s, "
                f"{record.get('speedup', float('nan')):.2f}x"
            )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
