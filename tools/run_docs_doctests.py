#!/usr/bin/env python3
"""Run doctest over the fenced Python examples in ``docs/*.md``.

Every ```` ```python ```` fence containing interpreter-style ``>>>``
examples is extracted and executed with :mod:`doctest`, each file in one
shared namespace (so a fence may build on names defined by earlier fences
in the same document).  Fences without ``>>>`` lines are treated as display
snippets and skipped.

Usage::

    PYTHONPATH=src python tools/run_docs_doctests.py docs/*.md

Exit status 0 when every example passes, 1 on any failure, 2 on bad usage.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

#: A fenced code block marked as python, non-greedy to the closing fence.
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_examples(text: str) -> list[str]:
    """The doctest-style fenced blocks of one markdown document."""
    return [
        block for block in FENCE.findall(text) if ">>>" in block
    ]


def run_file(path: Path) -> tuple[int, int]:
    """``(failures, attempts)`` over every doctest fence of one file."""
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(optionflags=doctest.ELLIPSIS)
    namespace: dict[str, object] = {}
    failures = attempts = 0
    for index, block in enumerate(extract_examples(path.read_text())):
        test = parser.get_doctest(
            block, namespace, f"{path.name}[{index}]", str(path), 0
        )
        result = runner.run(test, clear_globs=False)
        failures += result.failed
        attempts += result.attempted
        namespace = test.globs  # later fences may reuse earlier names
    return failures, attempts


def main(argv: list[str]) -> int:
    paths = [Path(arg) for arg in argv]
    if not paths:
        print("usage: run_docs_doctests.py <markdown files>", file=sys.stderr)
        return 2
    total_failures = total_attempts = 0
    for path in paths:
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
        failures, attempts = run_file(path)
        status = "FAILED" if failures else "ok"
        print(f"{path}: {attempts - failures}/{attempts} examples passed [{status}]")
        total_failures += failures
        total_attempts += attempts
    print(
        f"docs doctest total: {total_attempts - total_failures}/{total_attempts} "
        "examples passed"
    )
    return 1 if total_failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
