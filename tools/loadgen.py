#!/usr/bin/env python3
"""Asyncio load generator for the :mod:`repro.server` gateway.

Drives thousands of concurrent tenants — each with its own named session
and keep-alive connection — through a closed-loop mix of
``stream`` / ``evaluate`` / ``schedule`` / ``trade`` traffic, and reports
latency percentiles (p50/p95/p99) plus sustained RPS.  This is the
"millions of users" proof harness of the ROADMAP: per-tenant isolation at
gateway scale, backpressure instead of queue growth, and a measurable
latency distribution.

Two transports:

* ``memory`` (default) — the gateway's in-process asyncio transport.  No
  sockets, no file descriptors per tenant, so 1k+ concurrent tenants fit
  in any CI box; every byte still travels the full HTTP parse/serve path.
* ``tcp`` — real sockets against a gateway started in-process (or an
  external one via ``--host``/``--port``).

Usage::

    PYTHONPATH=src python tools/loadgen.py --tenants 1000 --requests 4
    PYTHONPATH=src python tools/loadgen.py --transport tcp --tenants 200
    PYTHONPATH=src python tools/loadgen.py --json   # machine-readable

Requests rejected with 429 are retried after the server's ``Retry-After``
hint (counted in the summary); any other non-2xx is a hard failure.

``--cluster HOST:PORT,...`` points every tenant session's sharded backend
at remote shard workers (start them with ``python -m repro.cluster.worker``
or :class:`repro.cluster.LocalCluster`); the summary then includes the
per-host dispatch counts from the gateway's merged cluster health block,
showing how the tenants' shards spread across the fleet.

``--fault-rate P`` arms the gateway's deterministic fault plane with two
probabilistic ``gateway.dispatch`` rules — half the budget surfaces as a
typed 429 (``SaturatedError``, which must carry a ``Retry-After`` hint),
half as an injected 500.  Both are transient, so tenants retry them; the
summary then separates *injected* rejections from real failures, proving
the 429/5xx accounting and backpressure hints hold up under failure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core import FlexOffer  # noqa: E402
from repro.faults import GATEWAY_DISPATCH, FaultPlan, FaultRule  # noqa: E402
from repro.io import request_to_dict  # noqa: E402
from repro.server import Gateway, GatewayClient, GatewayConfig, serve  # noqa: E402
from repro.service import (  # noqa: E402
    EvaluateRequest,
    ScheduleRequest,
    SessionConfig,
    StreamRequest,
    TradeRequest,
)
from repro.stream import Tick, population_events  # noqa: E402

#: The per-tenant closed-loop traffic cycle (after the initial ingest).
MIX = ("evaluate", "schedule", "trade", "stream")


def fault_plan(rate: float, seed: int = 0) -> FaultPlan:
    """A dispatch-site plan injecting transient 429s and 500s at ``rate``.

    The budget is split evenly: a typed ``SaturatedError`` (the gateway
    must keep its 429 status and attach a ``Retry-After`` hint) and a
    default ``FaultInjected`` (surfaces as a 500 whose detail names the
    injection site).  Rules are unbounded (``count=None``) so the fault
    pressure is sustained for the whole run.
    """
    return FaultPlan(
        [
            FaultRule(
                GATEWAY_DISPATCH,
                error="repro.server.limits.SaturatedError",
                count=None,
                probability=rate / 2,
            ),
            FaultRule(GATEWAY_DISPATCH, count=None, probability=rate / 2),
        ],
        seed=seed,
    )


def _is_injected(response) -> bool:
    """True when a 5xx came from the fault plane, not a real defect."""
    detail = (
        response.payload.get("detail", "")
        if isinstance(response.payload, dict)
        else ""
    )
    return "injected" in str(detail)


def tenant_population(index: int, size: int) -> List[FlexOffer]:
    """A small deterministic population unique to one tenant."""
    offers = []
    for i in range(size):
        start = 1 + (index + i) % 8
        width = 2 + (index + 3 * i) % 4
        offers.append(
            FlexOffer(
                start,
                start + width,
                [(1 + i % 2, 3 + i % 3), (2, 4)],
                name=f"tenant{index}-offer{i}",
            )
        )
    return offers


def tenant_requests(index: int, count: int, offers_per_tenant: int):
    """The tenant's wire-format request bodies: ingest, then the mix."""
    offers = tenant_population(index, offers_per_tenant)
    bodies = [
        request_to_dict(
            StreamRequest(events=tuple(population_events(offers)), bulk=True)
        )
    ]
    clock = 0
    for step in range(max(0, count - 1)):
        kind = MIX[(index + step) % len(MIX)]
        if kind == "evaluate":
            bodies.append(request_to_dict(EvaluateRequest()))
        elif kind == "schedule":
            bodies.append(request_to_dict(ScheduleRequest("earliest")))
        elif kind == "trade":
            bodies.append(request_to_dict(TradeRequest(budget=1e9)))
        else:
            clock += 1
            bodies.append(request_to_dict(StreamRequest(events=(Tick(clock),))))
    return bodies[:count]


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending list, linear interpolation."""
    if not sorted_values:
        return float("nan")
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


async def _drive_tenant(
    client_factory,
    index: int,
    requests: int,
    offers_per_tenant: int,
    session_config: Optional[dict],
    latencies_ms: List[float],
    counters: dict,
    max_retries: int = 50,
) -> None:
    """One tenant's closed loop: create the session, run the mix, evict.

    ``session_config`` of ``None`` creates the session with no explicit
    config, so the gateway's ``session_defaults`` apply (the cluster mode
    relies on this: an explicit payload would *replace* the defaults and
    drop the cluster spec).
    """
    client: GatewayClient = await client_factory()
    name = f"tenant-{index}"
    try:
        response = await client.create_session(name, session_config)
        while response.status == 429 and counters["retries"] < 10**6:
            counters["retries"] += 1
            await asyncio.sleep(response.retry_after or 0.01)
            response = await client.create_session(name, session_config)
        if response.status != 201:
            counters["failures"] += 1
            return
        for body in tenant_requests(index, requests, offers_per_tenant):
            attempts = 0
            while True:
                started = time.perf_counter()
                response = await client.submit(name, body)
                injected = _is_injected(response)
                transient = response.status == 429 or (
                    response.status >= 500 and injected
                )
                if transient and attempts < max_retries:
                    attempts += 1
                    if response.status == 429:
                        counters["retries"] += 1
                        if injected:
                            counters["injected_429"] += 1
                        # Every backoff-shaped rejection must carry a hint.
                        if response.retry_after is None:
                            counters["missing_retry_after"] += 1
                    else:
                        counters["injected_5xx"] += 1
                    await asyncio.sleep(response.retry_after or 0.01)
                    continue
                break
            if response.ok:
                latencies_ms.append((time.perf_counter() - started) * 1e3)
                counters["completed"] += 1
            else:
                counters["failures"] += 1
    except (ConnectionError, OSError):
        counters["failures"] += 1
    finally:
        try:
            await client.close()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def run_load(
    tenants: int = 1000,
    requests: int = 4,
    offers_per_tenant: int = 4,
    backend: str = "reference",
    transport: str = "memory",
    host: Optional[str] = None,
    port: Optional[int] = None,
    workers: Optional[int] = None,
    max_concurrency: Optional[int] = None,
    max_pending: Optional[int] = None,
    session_queue_depth: int = 8,
    request_timeout_s: Optional[float] = 30.0,
    access_log=None,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    cluster: Optional[str] = None,
) -> dict:
    """Run the mixed-traffic load and return the latency/throughput summary.

    When ``host``/``port`` are not given, a gateway is started in-process
    with a session cap sized to the tenant count and ``max_pending``
    defaulting to one waiting slot per tenant (bounded, closed-loop: each
    tenant holds at most one request in flight, so the wait queue cannot
    exceed the tenant count — anything above it is a saturation bug and
    should 429).
    """
    latencies_ms: List[float] = []
    counters = {
        "completed": 0,
        "failures": 0,
        "retries": 0,
        "injected_429": 0,
        "injected_5xx": 0,
        "missing_retry_after": 0,
    }
    external = host is not None and port is not None
    if fault_rate and external:
        raise ValueError("--fault-rate needs an in-process gateway")
    if cluster and external:
        raise ValueError("--cluster needs an in-process gateway")

    if cluster:
        # Every tenant session fans its shards out to the named remote
        # workers; tiny shard counts keep per-tenant populations sharded
        # rather than delegated whole to the inner backend.
        from repro.cluster import ClusterSpec

        backend = "sharded"
        session_defaults = SessionConfig(
            backend=backend,
            shards=2,
            shard_min_population=1,
            cluster=ClusterSpec.from_spec(cluster),
        )
    else:
        session_defaults = SessionConfig(backend=backend)

    gateway = None
    server = None
    if not external:
        config = GatewayConfig(
            max_sessions=max(tenants + 8, 16),
            workers=workers,
            max_concurrency=max_concurrency,
            max_pending=tenants + 64 if max_pending is None else max_pending,
            session_queue_depth=session_queue_depth,
            request_timeout_s=request_timeout_s,
            session_defaults=session_defaults,
            access_log=access_log,
            fault_plan=fault_plan(fault_rate, fault_seed) if fault_rate else None,
        )
        if transport == "memory":
            gateway = Gateway(config)
        else:
            server = await serve(config)
            gateway = server.gateway
            host, port = server.host, server.port

    if transport == "memory":

        async def client_factory():
            return GatewayClient.in_process(gateway)

    else:

        async def client_factory():
            return await GatewayClient.open_tcp(host, port)

    started = time.perf_counter()
    try:
        await asyncio.gather(
            *(
                _drive_tenant(
                    client_factory,
                    index,
                    requests,
                    offers_per_tenant,
                    None if cluster else {"backend": backend},
                    latencies_ms,
                    counters,
                )
                for index in range(tenants)
            )
        )
    finally:
        elapsed = time.perf_counter() - started
        gateway_stats = gateway.stats() if gateway is not None else {}
        if server is not None:
            await server.close()
        elif gateway is not None:
            gateway.close()

    latencies_ms.sort()
    cluster_hosts = {
        host: row.get("dispatched", 0)
        for host, row in gateway_stats.get("cluster", {}).get("hosts", {}).items()
    }
    return {
        "tenants": tenants,
        "requests_per_tenant": requests,
        "transport": transport,
        "backend": backend,
        "completed": counters["completed"],
        "failures": counters["failures"],
        "retries_429": counters["retries"],
        "fault_rate": fault_rate,
        "injected_429": counters["injected_429"],
        "injected_5xx": counters["injected_5xx"],
        "missing_retry_after": counters["missing_retry_after"],
        "elapsed_s": elapsed,
        "rps": counters["completed"] / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(latencies_ms, 0.50),
        "p95_ms": percentile(latencies_ms, 0.95),
        "p99_ms": percentile(latencies_ms, 0.99),
        "max_ms": latencies_ms[-1] if latencies_ms else float("nan"),
        "cluster": cluster or None,
        "cluster_dispatch": cluster_hosts,
        "gateway": gateway_stats,
    }


def format_summary(summary: dict) -> str:
    """A human-readable one-screen report of one load run."""
    lines = [
        f"tenants            {summary['tenants']}",
        f"transport          {summary['transport']} ({summary['backend']} backend)",
        f"completed          {summary['completed']} "
        f"({summary['failures']} failed, {summary['retries_429']} retried on 429)",
    ]
    if summary.get("fault_rate"):
        lines += [
            f"fault rate         {summary['fault_rate']:.2f} "
            f"({summary['injected_429']} injected 429, "
            f"{summary['injected_5xx']} injected 5xx, "
            f"{summary['missing_retry_after']} missing Retry-After)",
        ]
    if summary.get("cluster_dispatch"):
        dispatch = "   ".join(
            f"{host} {count}"
            for host, count in sorted(summary["cluster_dispatch"].items())
        )
        lines += [f"cluster dispatch   {dispatch}"]
    lines += [
        f"elapsed            {summary['elapsed_s']:.2f} s",
        f"throughput         {summary['rps']:.0f} req/s",
        f"latency p50        {summary['p50_ms']:.1f} ms",
        f"latency p95        {summary['p95_ms']:.1f} ms",
        f"latency p99        {summary['p99_ms']:.1f} ms",
        f"latency max        {summary['max_ms']:.1f} ms",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Mixed-traffic load generator for the repro.server gateway"
    )
    parser.add_argument("--tenants", type=int, default=1000)
    parser.add_argument(
        "--requests", type=int, default=4, help="requests per tenant"
    )
    parser.add_argument("--offers", type=int, default=4, help="offers per tenant")
    parser.add_argument(
        "--backend", default="reference", help="per-tenant session backend"
    )
    parser.add_argument(
        "--transport", choices=("memory", "tcp"), default="memory"
    )
    parser.add_argument("--host", default=None, help="external gateway host")
    parser.add_argument("--port", type=int, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--max-concurrency", type=int, default=None)
    parser.add_argument("--max-pending", type=int, default=None)
    parser.add_argument("--access-log", default=None)
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability of an injected dispatch fault per request "
        "(half typed 429s, half 500s; tenants retry both)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0, help="fault plan RNG seed"
    )
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="HOST:PORT,...",
        help="remote shard worker addresses; every tenant session uses the "
        "sharded backend over this cluster and the summary reports "
        "per-host dispatch counts",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    args = parser.parse_args(argv)

    summary = asyncio.run(
        run_load(
            tenants=args.tenants,
            requests=args.requests,
            offers_per_tenant=args.offers,
            backend=args.backend,
            transport=args.transport,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_concurrency=args.max_concurrency,
            max_pending=args.max_pending,
            access_log=args.access_log,
            fault_rate=args.fault_rate,
            fault_seed=args.fault_seed,
            cluster=args.cluster,
        )
    )
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(format_summary(summary))
    healthy = summary["failures"] == 0 and summary["missing_retry_after"] == 0
    return 0 if healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())
