#!/usr/bin/env python3
"""The paper's Section 1 use case: scheduling an EV charge against wind power.

An electric vehicle is plugged in at 23:00 with an empty battery, needs three
hours of charging, the owner accepts any state of charge between 60 % and
100 %, and the car must be ready by 6:00.  The flex-offer capturing that
flexibility is scheduled when wind production is high, and the example shows
how much imbalance (and imbalance cost) the flexibility avoids compared to
charging immediately.

Run with:  python examples/ev_charging_use_case.py
"""

from repro import FlexSession, ScheduleRequest
from repro.analysis import format_table
from repro.market import ImbalanceSettlement
from repro.scheduling import ImbalanceObjective
from repro.workloads import ev_use_case_flexoffer, spot_price_profile, wind_production_profile


def main() -> None:
    ev = ev_use_case_flexoffer()
    print(f"EV flex-offer: {ev}")
    print(f"  start-time window : {ev.tes}:00 - {ev.tls % 24}:00 (next day)")
    print(f"  acceptable charge : {ev.cmin}% - {ev.cmax}% of a full battery")
    print()

    # One session serves the whole use case: the EV's flex-offer streams
    # in, measures and schedules are requests against the live population.
    session = FlexSession()
    session.ingest([ev])

    print("Flexibility of the EV flex-offer:")
    for key, value in session.evaluate().report.values.items():
        print(f"  {key:15s} {value:.2f}")
    print()

    # A windy night: production ramps up after midnight (time units 24-30).
    horizon = 34
    wind = wind_production_profile(horizon, peak=40, seed=3)
    prices = spot_price_profile(horizon, seed=3)
    objective = ImbalanceObjective("absolute", wind)

    naive = session.schedule(ScheduleRequest("earliest")).schedule
    smart = session.schedule(
        ScheduleRequest("greedy", reference=wind)
    ).schedule
    session.close()

    settlement = ImbalanceSettlement(tuple(prices))
    naive_cost = settlement.settle(naive, wind).imbalance_cost
    smart_cost = settlement.settle(smart, wind).imbalance_cost

    rows = [
        ["charge immediately (23:00)", naive.assignments[0].start_time,
         objective.of_schedule(naive), naive_cost],
        ["schedule with flex-offer", smart.assignments[0].start_time,
         objective.of_schedule(smart), smart_cost],
    ]
    print(format_table(
        ["strategy", "charging start", "absolute imbalance", "imbalance cost"],
        rows,
        title="Charging the EV against the wind forecast",
    ))
    print()
    savings = naive_cost - smart_cost
    print(f"Imbalance-cost savings from using the flex-offer: {savings:.2f}")
    print("(the paper's argument: this value is what makes flexibility worth")
    print(" measuring, pricing and trading)")


if __name__ == "__main__":
    main()
