#!/usr/bin/env python3
"""Comparing the eight measures across devices — which measure says what?

Generates one flex-offer per device type (EV, heat pump, dishwasher,
refrigerator, solar panel, wind turbine, vehicle-to-grid battery), evaluates
every measure on every flex-offer, and shows how the measures disagree:
the dishwasher (pure time flexibility) is invisible to the time-series
measure and worthless to the product measure, the refrigerator (pure energy
flexibility) is the mirror image, only the area-based measures notice the
difference between a small and a large EV, and the vehicle-to-grid battery
is rejected by the area-based measures altogether (Section 4 of the paper).

Run with:  python examples/comparing_measures.py
"""

import random

from repro import FlexSession
from repro.analysis import format_table, measure_matrix, ranking_agreement
from repro.backend import available_backends
from repro.devices import (
    Dishwasher,
    ElectricVehicle,
    HeatPump,
    Refrigerator,
    SolarPanel,
    VehicleToGrid,
    WindTurbine,
)

MEASURES = [
    "time", "energy", "product", "vector", "series", "assignments",
    "absolute_area", "relative_area",
]


def main() -> None:
    # A session picks the best available backend; session.activate() routes
    # the analysis helpers (measure_matrix) through the session's backend
    # and cache — the example doubles as a dispatch-layer smoke test.
    with FlexSession() as session, session.activate():
        print(
            f"compute backend: {session.backend_name!r} "
            f"(available: {', '.join(available_backends())})"
        )
        print()
        run_comparison()


def run_comparison() -> None:
    """Evaluate every measure on every device and print the comparison."""
    rng = random.Random(2015)
    devices = [
        ("small EV", ElectricVehicle(charger_power=2, name="ev-small")),
        ("large EV", ElectricVehicle(charger_power=8, name="ev-large")),
        ("heat pump", HeatPump(name="heat-pump")),
        ("dishwasher", Dishwasher(name="dishwasher")),
        ("refrigerator", Refrigerator(name="refrigerator")),
        ("solar panel", SolarPanel(name="solar")),
        ("wind turbine", WindTurbine(name="wind")),
        ("V2G battery", VehicleToGrid(name="v2g")),
    ]
    flex_offers = [model.generate(rng, plug_in_time=10) for _, model in devices]

    matrix = measure_matrix(flex_offers, MEASURES)
    rows = []
    for (label, _), name in zip(devices, matrix.flexoffer_names):
        row = [label]
        for key in MEASURES:
            row.append(matrix.value(name, key))
        rows.append(row)
    print(format_table(["device"] + MEASURES, rows,
                       title="Every measure on every device ('-' = not applicable)"))
    print()

    print("Per-measure ranking of the devices (most flexible first):")
    for key in MEASURES:
        ranked = matrix.ranking(key)
        print(f"  {key:15s} {' > '.join(ranked)}")
    print()

    agreement = ranking_agreement(matrix, "product", "assignments")
    print(f"Ranking agreement between product and assignment flexibility: {agreement:.2f}")
    agreement = ranking_agreement(matrix, "vector", "relative_area")
    print(f"Ranking agreement between vector and relative-area flexibility: {agreement:.2f}")
    print()
    print("The disagreements are the paper's point: no single measure has all the")
    print("desirable characteristics of Table 1, so the measure must be chosen to")
    print("match the application scenario (aggregation, balancing, or trading).")


if __name__ == "__main__":
    main()
