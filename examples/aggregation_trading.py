#!/usr/bin/env python3
"""Scenario 1 & 2 combined: aggregate a neighbourhood, measure the loss, trade.

A residential neighbourhood offers its flexibility as many small flex-offers.
An Aggregator groups and aggregates them into tradable lots, the flexibility
lost by aggregation is quantified with the paper's measures (Scenario 1), and
the lots are sold with a flexibility premium to a Balance Responsible Party
that uses them to track its wind forecast (Scenario 2).

Run with:  python examples/aggregation_trading.py
"""

from repro import FlexSession, SessionConfig, TradeRequest
from repro.aggregation import (
    GroupingParameters,
    aggregate_all,
    compare_strategies,
    group_all_together,
)
from repro.analysis import format_loss_report, format_table
from repro.market import BalanceResponsibleParty, ImbalanceSettlement
from repro.scheduling import EarliestStartScheduler
from repro.workloads import neighbourhood_scenario

MEASURES = ["time", "energy", "product", "vector", "assignments"]


def main() -> None:
    scenario = neighbourhood_scenario(households=24, seed=7, horizon=32)
    originals = list(scenario.flex_offers)
    print(f"Neighbourhood workload: {len(originals)} flex-offers, "
          f"horizon {scenario.horizon} time units")
    print()

    # One session is the Aggregator's book: the neighbourhood streams in,
    # grouping/aggregation and market clearing are requests against it.
    session = FlexSession(
        SessionConfig(grouping=GroupingParameters(4, 2), measures=tuple(MEASURES))
    )
    session.ingest(originals)

    # --- Scenario 1: aggregation and its flexibility loss ----------------
    aggregated = session.aggregate()
    with session.activate():
        strategies = {
            "grouped(tes,tf)": list(aggregated.aggregates),
            "one-group": aggregate_all(
                group_all_together(originals), prefix="single"
            ),
        }
        reports = compare_strategies(originals, strategies, MEASURES)
    print(format_loss_report(reports, MEASURES))
    print()

    # --- Scenario 2: trade the aggregated lots ---------------------------
    # lots=None offers the session's own live aggregates — the same lots
    # the aggregation request above produced.
    trade = session.trade(
        TradeRequest(
            measure="product", energy_price=1.0, premium_per_unit=2.0, budget=1e9
        )
    )
    accepted, rejected = trade.accepted, trade.rejected
    rows = [
        [bid.flex_offer.name, bid.flex_offer.time_flexibility,
         bid.flex_offer.energy_flexibility, bid.energy_price,
         bid.flexibility_premium, bid.total_price]
        for bid in accepted
    ]
    print(format_table(
        ["lot", "tf", "ef", "energy price", "flexibility premium", "total"],
        rows,
        title=f"Cleared lots ({len(accepted)} accepted, {len(rejected)} rejected, "
              f"revenue {trade.revenue:.1f})",
    ))
    print()

    # --- The buyer uses the flexibility against its wind forecast --------
    purchased = [bid.flex_offer for bid in accepted]
    with session.activate():
        brp = BalanceResponsibleParty("brp", scenario.supply)
        flexible = brp.schedule_flexibility(purchased)
        baseline = EarliestStartScheduler().schedule(purchased)
        settlement = ImbalanceSettlement(scenario.prices)
        savings = settlement.savings(baseline, flexible, scenario.supply)
    session.close()
    print(f"BRP imbalance-cost savings from the purchased flexibility: {savings:.2f}")


if __name__ == "__main__":
    main()
