#!/usr/bin/env python3
"""Quickstart: build a flex-offer and evaluate all eight flexibility measures.

Recreates the paper's Figure 1 flex-offer, prints every measure the paper
proposes (Section 3), regenerates the Table 1 characteristics matrix, and
runs the set-wise evaluation through the session service API
(:class:`repro.FlexSession`), the recommended entry point.

Run with:  python examples/quickstart.py
"""

from repro import (
    FlexOffer,
    FlexSession,
    absolute_area_flexibility,
    assignment_flexibility,
    energy_flexibility,
    format_characteristics_table,
    product_flexibility,
    relative_area_flexibility,
    series_flexibility,
    time_flexibility,
    vector_flexibility,
    vector_flexibility_norm,
)
from repro.backend import available_backends


def main() -> None:
    # The flex-offer of Figure 1: start anywhere in [1, 6], four one-hour
    # slices with the energy ranges [1,3], [2,4], [0,5], [0,3].
    flex_offer = FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)], name="figure-1")
    print(f"Flex-offer: {flex_offer}")
    print()

    print("Individual flexibility dimensions (Section 3.1)")
    print(f"  time flexibility    tf(f) = {time_flexibility(flex_offer)}")
    print(f"  energy flexibility  ef(f) = {energy_flexibility(flex_offer)}")
    print()

    print("Combined measures (Section 3.2)")
    print(f"  product flexibility          = {product_flexibility(flex_offer)}")
    print(f"  vector flexibility           = {vector_flexibility(flex_offer)}")
    print(f"    Manhattan norm             = {vector_flexibility_norm(flex_offer, 'l1'):.3f}")
    print(f"    Euclidean norm             = {vector_flexibility_norm(flex_offer, 'l2'):.3f}")
    print(f"  time-series flexibility (L1) = {series_flexibility(flex_offer, 'l1'):.3f}")
    print(f"  time-series flexibility (L2) = {series_flexibility(flex_offer, 'l2'):.3f}")
    print(f"  assignment flexibility       = {assignment_flexibility(flex_offer)}")
    print(f"  absolute area flexibility    = {absolute_area_flexibility(flex_offer)}")
    print(f"  relative area flexibility    = {relative_area_flexibility(flex_offer):.3f}")
    print()

    print("Table 1 — characteristics of the proposed measures")
    print(format_characteristics_table())
    print()

    # The same measures through the service API: a FlexSession owns the
    # compute backend, the matrix cache and the streaming engine, and every
    # response reports which backend served it — doubling as a smoke test.
    with FlexSession() as session:
        session.ingest([flex_offer])
        result = session.evaluate()
        print(
            f"session evaluate on the {result.stats.backend!r} backend "
            f"(available: {', '.join(available_backends())}, "
            f"{result.stats.duration_s * 1e3:.2f} ms):"
        )
        for key, value in result.report.values.items():
            print(f"  {key:15s} {value:10.3f}")


if __name__ == "__main__":
    main()
