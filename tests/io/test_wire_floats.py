"""Non-finite float wire sentinels (PR 7 satellite).

``json.dumps(..., allow_nan=True)`` emits ``Infinity``/``NaN`` — not
JSON, rejected by strict parsers and every non-Python client.  The wire
convention instead spells non-finite floats as the string sentinels
``"inf"`` / ``"-inf"`` / ``"nan"`` and every serialiser passes
``allow_nan=False``, so a payload that would silently corrupt the wire
fails loudly at the producer.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.errors import SerializationError
from repro.io import (
    float_from_wire,
    float_to_wire,
    request_to_dict,
    result_from_dict,
    wire_safe,
)
from repro.service import TradeRequest


@pytest.mark.parametrize(
    ("value", "wire"),
    [
        (float("inf"), "inf"),
        (float("-inf"), "-inf"),
        (1.5, 1.5),
        (-0.0, -0.0),
        (7, 7),
        ("label", "label"),
        (None, None),
    ],
)
def test_float_to_wire_encodes_only_non_finite_floats(value, wire):
    assert float_to_wire(value) == wire


def test_nan_roundtrips_through_the_sentinel():
    assert float_to_wire(float("nan")) == "nan"
    assert math.isnan(float_from_wire("nan"))


def test_roundtrip_preserves_type_exactness():
    # Ints must not come back as floats — exactness bookkeeping depends on it.
    assert float_from_wire(float_to_wire(7)) == 7
    assert isinstance(float_from_wire(float_to_wire(7)), int)
    assert float_from_wire(float_to_wire(2.25)) == 2.25


@pytest.mark.parametrize("value", [float("inf"), float("-inf")])
def test_infinity_roundtrips(value):
    assert float_from_wire(float_to_wire(value)) == value


def test_non_numeric_string_raises():
    with pytest.raises(SerializationError):
        float_from_wire("not-a-number")


def test_wire_safe_deep_encodes_and_survives_strict_json():
    payload = {
        "metrics": [1.0, float("inf"), {"p99": float("nan")}],
        "label": "ok",
        "count": 3,
    }
    safe = wire_safe(payload)
    text = json.dumps(safe, allow_nan=False)  # must not raise
    decoded = json.loads(text)
    assert decoded["metrics"][1] == "inf"
    assert decoded["metrics"][2]["p99"] == "nan"
    assert decoded["label"] == "ok" and decoded["count"] == 3
    # The original is untouched (wire_safe copies).
    assert math.isinf(payload["metrics"][1])


def test_trade_request_infinite_budget_is_strict_json():
    payload = request_to_dict(TradeRequest(budget=float("inf")))
    text = json.dumps(payload, allow_nan=False)
    assert json.loads(text)["budget"] == "inf"


def test_result_from_dict_rejects_garbage_numeric_strings():
    with pytest.raises(SerializationError):
        result_from_dict(
            {
                "kind": "trade",
                "accepted": [],
                "rejected": [],
                "spent": "plenty",
                "stats": {
                    "kind": "trade",
                    "population": 0,
                    "duration_s": 0.0,
                    "backend": "reference",
                    "cache_hits": 0,
                    "cache_misses": 0,
                },
            }
        )
