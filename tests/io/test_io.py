"""Tests for JSON and CSV serialisation."""

import json

import pytest

from repro.core import Assignment, FlexOffer, SerializationError, TimeSeries
from repro.io import (
    assignment_from_dict,
    assignment_to_dict,
    flexoffer_from_dict,
    flexoffer_to_dict,
    flexoffers_from_csv,
    flexoffers_from_json,
    flexoffers_to_csv,
    flexoffers_to_json,
    measurements_to_csv,
    read_flexoffers_csv,
    schedule_from_dict,
    schedule_to_dict,
    timeseries_from_dict,
    timeseries_to_dict,
    write_flexoffers_csv,
)
from repro.scheduling import EarliestStartScheduler


class TestJsonRoundTrips:
    def test_flexoffer_round_trip(self, fig1, fig7_f6):
        for flex_offer in (fig1, fig7_f6):
            assert flexoffer_from_dict(flexoffer_to_dict(flex_offer)) == flex_offer

    def test_flexoffers_json_round_trip(self, fig1, fig5_f4):
        text = flexoffers_to_json([fig1, fig5_f4])
        parsed = flexoffers_from_json(text)
        assert parsed == [fig1, fig5_f4]
        assert isinstance(json.loads(text), list)

    def test_timeseries_round_trip(self):
        series = TimeSeries(3, (1, -2, 0))
        assert timeseries_from_dict(timeseries_to_dict(series)) == series

    def test_assignment_round_trip(self, fig1):
        assignment = Assignment(fig1, 2, (2, 3, 1, 2))
        restored = assignment_from_dict(assignment_to_dict(assignment))
        assert restored.start_time == 2
        assert restored.values == (2, 3, 1, 2)
        assert restored.flex_offer == fig1

    def test_schedule_round_trip(self, fig1, fig5_f4):
        schedule = EarliestStartScheduler().schedule([fig1, fig5_f4])
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert len(restored) == 2
        assert restored.total_energy() == schedule.total_energy()

    def test_malformed_payloads_raise_serialization_error(self):
        with pytest.raises(SerializationError):
            flexoffer_from_dict({"earliest_start": 0})
        with pytest.raises(SerializationError):
            flexoffers_from_json("{not json")
        with pytest.raises(SerializationError):
            flexoffers_from_json('{"a": 1}')
        with pytest.raises(SerializationError):
            timeseries_from_dict({"start": "x"})
        with pytest.raises(SerializationError):
            assignment_from_dict({"start_time": 1})
        with pytest.raises(SerializationError):
            schedule_from_dict({})


class TestCsv:
    def test_csv_round_trip(self, fig1, fig6_f5, fig7_f6):
        text = flexoffers_to_csv([fig1, fig6_f5, fig7_f6])
        parsed = flexoffers_from_csv(text)
        assert parsed == [fig1, fig6_f5, fig7_f6]

    def test_csv_file_round_trip(self, tmp_path, fig1):
        path = tmp_path / "offers.csv"
        write_flexoffers_csv(path, [fig1])
        assert read_flexoffers_csv(path) == [fig1]

    def test_unnamed_flexoffer_round_trips_with_none_name(self):
        anonymous = FlexOffer(0, 1, [(0, 2)])
        parsed = flexoffers_from_csv(flexoffers_to_csv([anonymous]))
        assert parsed[0].name is None
        assert parsed[0] == anonymous

    def test_malformed_profile_rejected(self):
        text = (
            "name,earliest_start,latest_start,profile,total_energy_min,total_energy_max\n"
            "bad,0,1,oops,0,1\n"
        )
        with pytest.raises(SerializationError):
            flexoffers_from_csv(text)

    def test_measurements_to_csv(self):
        rows = [{"measure": "product", "value": 60}, {"measure": "time", "value": 5}]
        text = measurements_to_csv(rows)
        assert text.splitlines()[0] == "measure,value"
        assert "product,60" in text

    def test_measurements_to_csv_empty(self):
        assert measurements_to_csv([]) == ""
