"""Concurrent-appender guarantees of the request-stats access log.

The PR 6 satellite: :func:`repro.io.request_stats_to_csv` and friends
must stay safe when many gateway worker threads append at once — every
row lands complete, never interleaved, and all of them parse back with
the exporter's own column schema.
"""

from __future__ import annotations

import csv
import io
import threading

import pytest

from repro.core import SerializationError
from repro.io import (
    RequestStatsLog,
    request_stats_rows,
    request_stats_to_csv,
)
from repro.service.results import RequestStats

HEADER = "kind,backend,duration_s,population,cache_hits,cache_misses"


def stats(kind: str = "evaluate", population: int = 4) -> RequestStats:
    return RequestStats(kind, "reference", 0.125, population)


def test_rows_iterator_yields_complete_lines():
    rows = list(request_stats_rows([stats("evaluate"), stats("schedule")]))
    assert rows[0].strip() == HEADER
    assert all(row.endswith("\r\n") or row.endswith("\n") for row in rows)
    assert rows[1].split(",")[0] == "evaluate"
    assert rows[2].split(",")[0] == "schedule"
    headerless = list(request_stats_rows([stats()], header=False))
    assert len(headerless) == 1


def test_to_csv_writes_whole_rows_to_a_stream():
    sink = io.StringIO()
    text = request_stats_to_csv([stats()], stream=sink)
    assert sink.getvalue() == text
    assert text.splitlines()[0] == HEADER


def test_to_csv_rejects_non_stats():
    with pytest.raises(SerializationError):
        request_stats_to_csv(["not stats"])


def test_log_appends_header_once_and_counts_rows(tmp_path):
    path = tmp_path / "access.csv"
    with RequestStatsLog(path) as log:
        log.extend([stats(), stats("trade")])
        assert log.rows_written == 2
    # Re-opening the same file appends without a second header.
    with RequestStatsLog(path) as log:
        log.append(stats("stream"))
    lines = path.read_text().strip().splitlines()
    assert lines[0] == HEADER
    assert [line.split(",")[0] for line in lines[1:]] == [
        "evaluate",
        "trade",
        "stream",
    ]


def test_log_close_is_idempotent_and_append_after_close_raises():
    sink = io.StringIO()
    log = RequestStatsLog(sink)
    log.append(stats())
    log.close()
    log.close()
    assert not sink.closed  # borrowed handles are never closed
    with pytest.raises(SerializationError):
        log.append(stats())


def test_concurrent_appenders_never_interleave_rows(tmp_path):
    """N threads x M rows: every row is complete and parseable, the
    header appears exactly once, and nothing is lost."""
    path = tmp_path / "concurrent.csv"
    threads, rows_each = 8, 50
    log = RequestStatsLog(path)
    start = threading.Barrier(threads)

    def appender(thread_index: int) -> None:
        start.wait()
        for row_index in range(rows_each):
            log.append(
                RequestStats(
                    f"kind-{thread_index}",
                    "reference",
                    0.001,
                    row_index,
                )
            )

    workers = [
        threading.Thread(target=appender, args=(index,))
        for index in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    log.close()

    text = path.read_text()
    lines = text.strip().splitlines()
    assert lines[0] == HEADER
    assert text.count(HEADER) == 1
    assert log.rows_written == threads * rows_each
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == threads * rows_each
    # Every (thread, row) pair arrived exactly once, fully formed.
    seen = {(row["kind"], row["population"]) for row in parsed}
    assert len(seen) == threads * rows_each
    assert all(row["backend"] == "reference" for row in parsed)
