"""Tests of the top-level public API surface.

A downstream user should be able to work from ``import repro`` alone; these
tests pin the re-exports, the version string, and the doctest-style snippets
used in the README.
"""

import repro


class TestPublicApi:
    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing attribute {name}"

    def test_core_types_exported(self):
        for name in ("FlexOffer", "EnergySlice", "TimeSeries", "Assignment",
                     "FlexOfferKind", "FlexError", "InvalidFlexOfferError"):
            assert name in repro.__all__

    def test_all_eight_measures_exported(self):
        for name in (
            "TimeFlexibility", "EnergyFlexibility", "ProductFlexibility",
            "VectorFlexibility", "SeriesFlexibility", "AssignmentFlexibility",
            "AbsoluteAreaFlexibility", "RelativeAreaFlexibility",
        ):
            assert name in repro.__all__

    def test_readme_quickstart_snippet(self):
        f = repro.FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)])
        assert f.time_flexibility == 5
        assert f.energy_flexibility == 12
        assert repro.product_flexibility(f) == 60
        assert repro.vector_flexibility_norm(f, "l2") == 13.0

    def test_measure_keys_cover_the_paper(self):
        assert {"time", "energy", "product", "vector", "series",
                "assignments", "absolute_area", "relative_area"}.issubset(
            set(repro.measure_keys())
        )

    def test_docstring_quickstart_example(self):
        ev = repro.FlexOffer(23, 27, [(2, 4), (2, 4), (2, 4)], name="ev-charger")
        assert (ev.time_flexibility, ev.energy_flexibility) == (4, 6)
        assert repro.product_flexibility(ev) == 24
