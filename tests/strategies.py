"""Shared hypothesis strategies for flex-offer properties.

One home for the offer/population/interleaving generators that the property
suites (``tests/properties/``) and the backend conformance suite
(``tests/backend/``) all draw from — previously duplicated per test module.
Everything generated here is *valid by construction* (slices ordered, totals
inside the profile sums) and small enough that exponential reference
computations (explicit assignment enumeration) stay tractable.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.aggregation import GroupingParameters
from repro.core import FlexOffer
from repro.stream import OfferArrived, OfferExpired


@st.composite
def small_flexoffers(
    draw,
    max_slices: int = 3,
    allow_negative: bool = True,
    tight_totals: bool = True,
    max_earliest: int = 5,
    max_time_flex: int = 3,
    max_width: int = 3,
):
    """Small flex-offers whose assignment sets stay enumerable.

    ``tight_totals=False`` keeps the total constraints at their defaults (the
    profile sums), the classic flex-offer setting in which start-aligned
    aggregation is exactly disaggregatable.  ``allow_negative`` controls
    whether production / mixed slices may appear.
    """
    earliest = draw(st.integers(min_value=0, max_value=max_earliest))
    time_flex = draw(st.integers(min_value=0, max_value=max_time_flex))
    slice_count = draw(st.integers(min_value=1, max_value=max_slices))
    low = -3 if allow_negative else 0
    slices = []
    for _ in range(slice_count):
        amin = draw(st.integers(min_value=low, max_value=3))
        width = draw(st.integers(min_value=0, max_value=max_width))
        slices.append((amin, amin + width))
    if not tight_totals:
        return FlexOffer(earliest, earliest + time_flex, slices)
    profile_min = sum(s[0] for s in slices)
    profile_max = sum(s[1] for s in slices)
    cmin = draw(st.integers(min_value=profile_min, max_value=profile_max))
    cmax = draw(st.integers(min_value=cmin, max_value=profile_max))
    return FlexOffer(earliest, earliest + time_flex, slices, cmin, cmax)


#: Pure consumption flex-offers (the area measures' natural domain).
consumption_flexoffers = small_flexoffers(allow_negative=False)


@st.composite
def stream_flexoffers(draw):
    """Small flex-offers, mixed signs allowed, cheap enough to enumerate.

    The streaming suite's historical shape: slightly wider time axis than
    :func:`small_flexoffers`, totals always at their profile-sum defaults.
    """
    earliest = draw(st.integers(min_value=0, max_value=6))
    time_flex = draw(st.integers(min_value=0, max_value=4))
    slice_count = draw(st.integers(min_value=1, max_value=3))
    slices = []
    for _ in range(slice_count):
        low = draw(st.integers(min_value=-2, max_value=2))
        high = draw(st.integers(min_value=low, max_value=low + 3))
        slices.append((low, high))
    return FlexOffer(earliest, earliest + time_flex, slices)


def populations(min_size: int = 0, max_size: int = 12, **offer_kwargs):
    """Lists of small flex-offers — ragged profiles, mixed signs by default."""
    return st.lists(
        small_flexoffers(**offer_kwargs), min_size=min_size, max_size=max_size
    )


@st.composite
def interleavings(draw, min_offers=1, max_offers=8):
    """A legal arrival/expiry interleaving plus its surviving offers.

    Offers arrive in index order; a random subset expires, each expiry woven
    in at a random position after its arrival.  Returns ``(events,
    survivors)`` with survivors in arrival order — the batch reference.
    """
    offers = draw(
        st.lists(stream_flexoffers(), min_size=min_offers, max_size=max_offers)
    )
    events = []
    survivors = []
    for index, flex_offer in enumerate(offers):
        offer_id = f"f{index}"
        events.append(OfferArrived(offer_id, flex_offer))
        if draw(st.booleans()):
            # Weave the expiry in at a random later position.
            position = draw(st.integers(min_value=len(events), max_value=len(events)))
            events.insert(position, OfferExpired(offer_id))
        else:
            survivors.append(flex_offer)
    # Shuffle expiries backwards while keeping them after their arrivals.
    for position in range(len(events)):
        event = events[position]
        if isinstance(event, OfferExpired):
            arrival = next(
                index
                for index, candidate in enumerate(events)
                if isinstance(candidate, OfferArrived)
                and candidate.offer_id == event.offer_id
            )
            target = draw(st.integers(min_value=arrival + 1, max_value=position))
            events.insert(target, events.pop(position))
    return events, survivors


@st.composite
def grouping_parameters(draw):
    """Random (but valid) grid-grouping tolerances, chunking included."""
    return GroupingParameters(
        earliest_start_tolerance=draw(st.integers(min_value=1, max_value=4)),
        time_flexibility_tolerance=draw(st.integers(min_value=1, max_value=4)),
        max_group_size=draw(st.integers(min_value=0, max_value=3)),
    )
