"""Tests for workload generation, profiles and scenarios."""

import pytest

from repro.core import WorkloadError
from repro.workloads import (
    PopulationSpec,
    all_paper_flexoffers,
    balancing_scenario,
    baseline_demand_profile,
    default_device_mix,
    ev_use_case_flexoffer,
    generate_population,
    neighbourhood_scenario,
    scaling_scenario,
    solar_production_profile,
    spot_price_profile,
    wind_production_profile,
)


class TestPaperFixtures:
    def test_all_paper_flexoffers_present(self):
        fixtures = all_paper_flexoffers()
        assert set(fixtures) == {
            "fig1", "fig2_f1", "fig3_f2", "fig5_f4", "fig6_f5", "fig7_f6",
            "ex11_zero_ef", "ex11_small", "ex11_large", "ex13_wide_tf",
        }

    def test_ev_use_case_matches_section1_story(self):
        ev = ev_use_case_flexoffer()
        assert ev.earliest_start == 23
        assert ev.latest_start == 27  # 3:00 on the continued axis
        assert ev.duration == 3
        assert ev.cmin == 60 and ev.cmax == 100
        assert ev.is_consumption

    def test_ev_use_case_scaling_coefficient(self):
        ev = ev_use_case_flexoffer(energy_unit_per_percent=2)
        assert ev.cmin == 120 and ev.cmax == 200


class TestPopulationGeneration:
    def test_counts_are_respected(self):
        spec = PopulationSpec(counts={"ev": 3, "solar": 2}, seed=1)
        population = generate_population(spec)
        assert len(population) == 5
        assert spec.total == 5

    def test_same_seed_same_population(self):
        spec = PopulationSpec(counts={"ev": 4, "heat_pump": 2}, seed=9)
        assert [
            (f.tes, f.tls, f.slices) for f in generate_population(spec)
        ] == [(f.tes, f.tls, f.slices) for f in generate_population(spec)]

    def test_different_seed_changes_population(self):
        base = PopulationSpec(counts={"ev": 6}, seed=1)
        other = PopulationSpec(counts={"ev": 6}, seed=2)
        assert [f.slices for f in generate_population(base)] != [
            f.slices for f in generate_population(other)
        ]

    def test_horizon_folding_keeps_offers_inside_window(self):
        spec = PopulationSpec(counts={"ev": 10, "dishwasher": 10}, seed=3, horizon=24)
        for flex_offer in generate_population(spec):
            assert flex_offer.latest_start + flex_offer.duration <= 24
            assert flex_offer.earliest_start >= 0

    def test_unknown_device_key_rejected(self):
        with pytest.raises(WorkloadError):
            PopulationSpec(counts={"toaster": 1})

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            PopulationSpec(counts={"ev": -1})

    def test_default_device_mix_has_all_keys(self):
        assert set(default_device_mix()) == {
            "ev", "heat_pump", "dishwasher", "washing_machine",
            "refrigerator", "solar", "wind", "v2g",
        }


class TestProfiles:
    def test_wind_profile_bounds_and_reproducibility(self):
        profile = wind_production_profile(24, peak=10, seed=5)
        assert len(profile) == 24
        assert all(0 <= value <= 10 for value in profile)
        assert profile.values == wind_production_profile(24, peak=10, seed=5).values

    def test_solar_profile_dark_at_night(self):
        profile = solar_production_profile(24, peak=8)
        assert profile[0] == 0  # midnight
        assert max(profile) > 0

    def test_solar_profile_validation(self):
        with pytest.raises(WorkloadError):
            solar_production_profile(24, sunrise=20, sunset=6)

    def test_demand_profile_has_evening_peak(self):
        profile = baseline_demand_profile(24, base=5, evening_peak=6)
        values = profile.to_dict()
        assert values[19] > values[3]

    def test_price_profile_length_and_positivity(self):
        prices = spot_price_profile(24, seed=2)
        assert len(prices) == 24
        assert all(price > 0 for price in prices)

    def test_invalid_horizon_rejected(self):
        with pytest.raises(WorkloadError):
            wind_production_profile(0)


class TestScenarios:
    def test_neighbourhood_scenario_is_consumption_only(self):
        scenario = neighbourhood_scenario(households=8, seed=1, horizon=32)
        assert scenario.size > 0
        assert all(f.is_consumption for f in scenario.flex_offers)
        assert len(scenario.prices) == scenario.horizon

    def test_balancing_scenario_contains_production_or_mixed(self):
        scenario = balancing_scenario(units=16, seed=2, horizon=32)
        kinds = {f.kind.value for f in scenario.flex_offers}
        assert "production" in kinds or "mixed" in kinds

    def test_scaling_scenario_size(self):
        scenario = scaling_scenario(12, seed=1)
        assert scenario.size == 12
        assert scenario.name == "scaling-12"

    def test_scenarios_fit_their_horizon(self):
        scenario = neighbourhood_scenario(households=10, seed=4, horizon=32)
        for flex_offer in scenario.flex_offers:
            assert flex_offer.latest_start + flex_offer.duration <= scenario.horizon
