"""Round-trip tests of the service request/response wire format."""

from __future__ import annotations

import json
import random

import pytest

from repro.core import FlexOffer, SerializationError, TimeSeries
from repro.io import (
    event_from_dict,
    event_to_dict,
    request_from_dict,
    request_to_dict,
    request_stats_to_csv,
    result_from_dict,
    result_to_dict,
)
from repro.scheduling import ImbalanceObjective
from repro.service import (
    AggregateRequest,
    EvaluateRequest,
    FlexSession,
    RequestStats,
    ScheduleRequest,
    StreamRequest,
    TradeRequest,
)
from repro.stream import OfferArrived, OfferAssigned, OfferExpired, Tick


def offers(count: int, seed: int = 0) -> tuple[FlexOffer, ...]:
    rng = random.Random(seed)
    return tuple(
        FlexOffer(
            rng.randrange(0, 6),
            rng.randrange(6, 9),
            [(1, 3), (0, rng.randint(1, 4))],
            name=f"o{index}",
        )
        for index in range(count)
    )


EVENTS = (
    OfferArrived("a-1", offers(1)[0]),
    OfferExpired("a-1"),
    OfferAssigned("a-2", start_time=4, price=17.5),
    Tick(9),
)


class TestEventRoundTrip:
    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_event_round_trips(self, event):
        payload = event_to_dict(event)
        json.dumps(payload)
        assert event_from_dict(payload) == event

    def test_unknown_event_kind_raises(self):
        with pytest.raises(SerializationError):
            event_from_dict({"kind": "exploded"})
        with pytest.raises(SerializationError):
            event_to_dict(object())


REQUESTS = [
    EvaluateRequest(),
    EvaluateRequest(measures=("time", "energy"), offers=offers(3), skip_unsupported=False),
    AggregateRequest(offers=offers(4), prefix="lot"),
    AggregateRequest(),
    ScheduleRequest(
        "hill-climbing",
        offers=offers(3),
        reference=TimeSeries(2, (1, 2, 3)),
        metric="squared",
        options={"iterations": 5, "restarts": 1},
    ),
    ScheduleRequest(),
    TradeRequest(lots=offers(2), measure="product", energy_price=2.0, budget=40.0),
    TradeRequest(),
    StreamRequest(events=EVENTS, bulk=False),
    StreamRequest(),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_object", REQUESTS, ids=lambda r: type(r).__name__
    )
    def test_request_round_trips(self, request_object):
        payload = request_to_dict(request_object)
        json.dumps(payload)  # JSON-compatible, not merely a dict
        rebuilt = request_from_dict(payload)
        assert request_to_dict(rebuilt) == payload

    def test_infinite_budget_survives_json(self):
        payload = request_to_dict(TradeRequest())
        parsed = json.loads(json.dumps(payload))
        assert request_from_dict(parsed).budget == float("inf")

    def test_trade_request_with_aggregate_lots_round_trips(self):
        with FlexSession(backend="reference") as session:
            session.ingest(offers(6))
            lots = tuple(session.engine.aggregates())
        request = TradeRequest(lots=lots)
        payload = request_to_dict(request)
        json.dumps(payload)
        rebuilt = request_from_dict(payload)
        assert rebuilt.lots == lots

    def test_in_process_objective_option_is_rejected(self):
        request = ScheduleRequest(options={"objective": ImbalanceObjective()})
        with pytest.raises(SerializationError):
            request_to_dict(request)

    def test_unknown_request_kind_raises(self):
        with pytest.raises(SerializationError):
            request_from_dict({"kind": "teleport"})
        with pytest.raises(SerializationError):
            request_to_dict(object())


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def served(self):
        with FlexSession(backend="reference", seed=3) as session:
            session.ingest(offers(10))
            yield [
                session.evaluate(),
                session.aggregate(),
                session.schedule(
                    ScheduleRequest(
                        "hill-climbing", options={"iterations": 4, "restarts": 1}
                    )
                ),
                session.trade(TradeRequest(budget=1e5)),
                session.stream(StreamRequest((Tick(2),))),
            ]

    def test_results_round_trip(self, served):
        for result in served:
            payload = result_to_dict(result)
            json.dumps(payload)
            rebuilt = result_from_dict(payload)
            assert result_to_dict(rebuilt) == payload
            assert payload["kind"] == result.stats.kind

    def test_evaluate_report_values_survive_exactly(self, served):
        evaluate = served[0]
        rebuilt = result_from_dict(result_to_dict(evaluate))
        assert rebuilt.report == evaluate.report

    def test_schedule_round_trip_preserves_assignments(self, served):
        schedule_result = served[2]
        rebuilt = result_from_dict(result_to_dict(schedule_result))
        assert rebuilt.schedule == schedule_result.schedule
        assert rebuilt.objective_value == schedule_result.objective_value

    def test_request_stats_csv(self, served):
        text = request_stats_to_csv(served)
        lines = text.strip().splitlines()
        assert lines[0] == "kind,backend,duration_s,population,cache_hits,cache_misses"
        assert len(lines) == len(served) + 1
        assert lines[1].startswith("evaluate,reference,")
        # Bare stats blocks work too.
        bare = request_stats_to_csv([result.stats for result in served])
        assert bare == text

    def test_request_stats_csv_rejects_garbage(self):
        with pytest.raises(SerializationError):
            request_stats_to_csv([object()])

    def test_unknown_result_kind_raises(self):
        stats = {
            "kind": "evaluate",
            "backend": "reference",
            "duration_s": 0.0,
            "population": 0,
        }
        with pytest.raises(SerializationError):
            result_from_dict({"kind": "nonsense", "stats": stats})
        with pytest.raises(SerializationError):
            result_to_dict(RequestStats("x", "reference", 0.0, 0))
