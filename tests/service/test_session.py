"""Unit tests of the service façade: config, lifecycle, request semantics.

The headline acceptance property — two differently configured sessions
interleaved in one process produce results bit-identical to each running
alone — lives here, together with the deterministic companions of the
hypothesis equivalence suite.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.aggregation import GroupingParameters, aggregate_all, group_by_grid
from repro.backend import NUMPY_AVAILABLE, matrix_cache, use_backend
from repro.core import FlexOffer, TimeSeries
from repro.market import FlexibilityPricer, TradingSession
from repro.measures import evaluate_set
from repro.scheduling import (
    EarliestStartScheduler,
    EvolutionaryScheduler,
    HillClimbingScheduler,
    ImbalanceObjective,
)
from repro.service import (
    AggregateRequest,
    EvaluateRequest,
    FlexSession,
    ScheduleRequest,
    ServiceError,
    SessionConfig,
    StreamRequest,
    TradeRequest,
)
from repro.stream import OfferArrived, OfferExpired, StreamingEngine, Tick

requires_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)


def population(size: int, seed: int = 0) -> list[FlexOffer]:
    rng = random.Random(seed)
    offers = []
    for index in range(size):
        earliest = rng.randrange(0, 8)
        slices = [(1, 1 + rng.randint(0, 3))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        offers.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 3),
                slices,
                name=f"offer-{seed}-{index}",
            )
        )
    return offers


# --------------------------------------------------------------------- #
# SessionConfig
# --------------------------------------------------------------------- #


class TestSessionConfig:
    def test_environment_defaults_read_once_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        monkeypatch.setenv("REPRO_MATRIX_CACHE", "7")
        monkeypatch.setenv("REPRO_SHARDS", "3")
        config = SessionConfig()
        assert config.backend == "reference"
        assert config.cache_entries == 7
        assert config.shards == 3
        # Mutating the environment later cannot touch an existing config.
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        monkeypatch.setenv("REPRO_MATRIX_CACHE", "999")
        assert config.backend == "reference"
        assert config.cache_entries == 7

    def test_explicit_fields_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "reference")
        monkeypatch.setenv("REPRO_MATRIX_CACHE", "7")
        config = SessionConfig(cache_entries=2, cache_cells=100)
        assert config.cache_entries == 2
        assert config.cache_cells == 100

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError):
            SessionConfig(backend="no-such-backend")

    def test_validation_errors(self):
        with pytest.raises(ServiceError):
            SessionConfig(shards=0)
        with pytest.raises(ServiceError):
            SessionConfig(shard_executor="fiber")
        with pytest.raises(ServiceError):
            SessionConfig(cache_entries=-1)
        with pytest.raises(ServiceError):
            SessionConfig(cache_cells=-1)
        with pytest.raises(ServiceError):
            SessionConfig(compact_threshold=1.5)
        with pytest.raises(ServiceError):
            SessionConfig(window_capacity=-1)
        with pytest.raises(ServiceError):
            SessionConfig(measures="time")  # a bare string is a footgun
        with pytest.raises(ServiceError):
            SessionConfig(shard_min_population=-1)

    def test_measures_normalised_to_tuples(self):
        config = SessionConfig(
            backend="reference", measures=["time", "energy"], tracked_measures=["time"]
        )
        assert config.measures == ("time", "energy")
        assert config.tracked_measures == ("time",)

    def test_round_trips_through_dict(self):
        config = SessionConfig(
            backend="reference",
            cache_entries=3,
            measures=("time", "energy"),
            grouping=GroupingParameters(4, 2, max_group_size=5),
            seed=17,
        )
        clone = SessionConfig.from_dict(config.as_dict())
        assert clone == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServiceError):
            SessionConfig.from_dict({"backend": "reference", "bogus": 1})

    def test_malformed_executor_env_degrades_to_thread(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "fiber")
        assert SessionConfig(backend="reference").shard_executor == "thread"


class TestRequestValidation:
    def test_request_sequences_normalise_to_tuples(self):
        offers = [FlexOffer(0, 1, [(1, 2)])]
        assert EvaluateRequest(measures=["time"]).measures == ("time",)
        assert AggregateRequest(offers=iter(offers)).offers == tuple(offers)
        assert StreamRequest(events=[Tick(1)]).events == (Tick(1),)

    def test_request_validation_errors(self):
        with pytest.raises(ServiceError):
            EvaluateRequest(offers=5)
        with pytest.raises(ServiceError):
            ScheduleRequest(metric="cubic")
        with pytest.raises(ServiceError):
            StreamRequest(events=(object(),))


# --------------------------------------------------------------------- #
# Session lifecycle
# --------------------------------------------------------------------- #


class TestSessionLifecycle:
    def test_config_or_overrides_not_both(self):
        with pytest.raises(ServiceError):
            FlexSession(SessionConfig(backend="reference"), backend="reference")

    def test_close_is_idempotent_and_blocks_requests(self):
        session = FlexSession(backend="reference")
        session.ingest(population(5))
        session.close()
        session.close()
        assert session.closed
        with pytest.raises(ServiceError):
            session.evaluate()
        with pytest.raises(ServiceError):
            with session.activate():
                pass

    def test_context_manager_closes(self):
        with FlexSession(backend="reference") as session:
            assert not session.closed
        assert session.closed

    def test_close_never_tears_down_a_shared_registered_backend(self):
        """Review regression: closing a session must not close() a backend
        borrowed from the registry — another session may be using it."""
        from repro.backend import ReferenceBackend, register_backend

        class Closeable(ReferenceBackend):
            name = "closeable-shared-test"
            closed_count = 0

            def close(self):
                type(self).closed_count += 1

        register_backend(Closeable())
        first = FlexSession(backend="closeable-shared-test")
        second = FlexSession(backend="closeable-shared-test")
        first.close()
        assert Closeable.closed_count == 0
        assert second.evaluate().report.size == 0  # still serving
        second.close()
        assert Closeable.closed_count == 0

    def test_session_owns_a_private_cache(self):
        session = FlexSession(backend="reference", cache_entries=3)
        assert session.cache is not matrix_cache
        assert session.cache.capacity == 3
        session.close()

    def test_submit_dispatches_by_request_type(self):
        with FlexSession(backend="reference") as session:
            session.ingest(population(6))
            assert session.submit(EvaluateRequest()).stats.kind == "evaluate"
            assert session.submit(AggregateRequest()).stats.kind == "aggregate"
            assert session.submit(ScheduleRequest("earliest")).stats.kind == "schedule"
            assert session.submit(TradeRequest()).stats.kind == "trade"
            assert session.submit(StreamRequest()).stats.kind == "stream"
            with pytest.raises(ServiceError):
                session.submit(object())

    def test_stats_and_provenance_fields(self):
        with FlexSession(backend="reference", cache_entries=2) as session:
            result = session.ingest(population(4))
            assert result.stats.backend == "reference"
            assert result.stats.duration_s >= 0.0
            assert result.live == 4
            summary = session.stats()
            assert summary["requests_served"] == 1
            assert summary["backend"] == "reference"
            assert summary["live"] == 4
            assert summary["cache"]["capacity"] == 2

    def test_repeated_ingest_generates_fresh_ids(self):
        with FlexSession(backend="reference") as session:
            session.ingest(population(3, seed=1))
            session.ingest(population(3, seed=1))  # same offers again
            assert len(session.engine) == 6

    def test_report_and_result_shorthands(self):
        with FlexSession(backend="reference") as session:
            session.ingest(population(5))
            report = session.report()
            served = session.evaluate()
            assert report == served.report
            assert served.values == report.values
            empty_trade = session.aggregate(AggregateRequest(offers=()))
            assert empty_trade.compression == 1.0

    def test_internals_never_route_through_a_deprecation_shim(self):
        """The full request surface stays silent under error-level filters."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with FlexSession(backend="reference") as session:
                session.ingest(population(10))
                session.evaluate()
                session.aggregate()
                session.schedule(
                    ScheduleRequest(
                        "evolutionary",
                        options={"population_size": 4, "generations": 2},
                    )
                )
                session.trade()
                session.tick(1)
                session.snapshot()


# --------------------------------------------------------------------- #
# Request semantics vs. hand-wired calls
# --------------------------------------------------------------------- #


class TestRequestsMatchHandWiring:
    def test_evaluate_matches_evaluate_set(self):
        offers = population(12)
        with FlexSession(backend="reference") as session:
            session.ingest(offers)
            served = session.evaluate(EvaluateRequest(measures=("time", "vector")))
        with use_backend("reference"):
            assert served.report == evaluate_set(offers, ("time", "vector"))

    def test_evaluate_explicit_offers_skip_semantics(self):
        mixed = FlexOffer(0, 2, [(-1, 2), (-4, -1)], name="mixed")
        with FlexSession(backend="reference") as session:
            report = session.evaluate(
                EvaluateRequest(offers=(mixed,), measures=("absolute_area",))
            ).report
            assert report.skipped == ("absolute_area",)
            with pytest.raises(Exception):
                session.evaluate(
                    EvaluateRequest(
                        offers=(mixed,),
                        measures=("absolute_area",),
                        skip_unsupported=False,
                    )
                )

    def test_aggregate_matches_batch_pipeline(self):
        offers = population(20)
        grouping = GroupingParameters(4, 2)
        with FlexSession(backend="reference", grouping=grouping) as session:
            session.ingest(offers)
            live = session.aggregate()
            explicit = session.aggregate(AggregateRequest(offers=tuple(offers)))
        with use_backend("reference"):
            groups = group_by_grid(offers, grouping)
            aggregates = aggregate_all(groups, prefix="aggregate")
        assert live.groups == tuple(tuple(group) for group in groups)
        assert live.aggregates == tuple(aggregates)
        assert explicit.groups == live.groups
        assert explicit.aggregates == live.aggregates
        assert live.compression == pytest.approx(len(offers) / len(aggregates))

    def test_schedule_matches_direct_scheduler_calls(self):
        offers = population(10)
        wind = TimeSeries(0, tuple(range(12)))
        with FlexSession(backend="reference", seed=11) as session:
            session.ingest(offers)
            earliest = session.schedule(ScheduleRequest("earliest"))
            climbing = session.schedule(
                ScheduleRequest(
                    "hill-climbing",
                    reference=wind,
                    options={"iterations": 10, "restarts": 1},
                )
            )
        with use_backend("reference"):
            assert earliest.schedule == EarliestStartScheduler().schedule(offers)
            objective = ImbalanceObjective("absolute", wind)
            expected = HillClimbingScheduler(
                iterations=10, restarts=1, seed=11, objective=objective
            ).schedule(offers, wind)
            assert climbing.schedule == expected
            assert climbing.objective_value == objective.of_schedule(expected)

    def test_schedule_request_seed_option_beats_session_seed(self):
        offers = population(8)
        with FlexSession(backend="reference", seed=1) as session:
            session.ingest(offers)
            explicit = session.schedule(
                ScheduleRequest(
                    "evolutionary",
                    options={"population_size": 4, "generations": 2, "seed": 9},
                )
            )
        with use_backend("reference"):
            expected = EvolutionaryScheduler(
                population_size=4,
                generations=2,
                seed=9,
                objective=ImbalanceObjective("absolute", None),
            ).schedule(offers)
        assert explicit.schedule == expected

    def test_objective_value_scores_the_optimised_objective(self):
        """Review regression: a caller-supplied options['objective'] wins
        inside the scheduler, so the reported value must use it too."""
        offers = population(8)
        wind = TimeSeries(0, tuple([2] * 10))
        custom = ImbalanceObjective("squared", wind)
        with FlexSession(backend="reference") as session:
            session.ingest(offers)
            served = session.schedule(
                ScheduleRequest("greedy", options={"objective": custom})
            )
        assert served.objective_value == custom.of_schedule(served.schedule)
        # An explicit request reference overrides the custom objective's
        # reference inside the scheduler; the score must track that too.
        other = TimeSeries(0, tuple([5] * 10))
        with FlexSession(backend="reference") as session:
            session.ingest(offers)
            served = session.schedule(
                ScheduleRequest(
                    "greedy", reference=other, options={"objective": custom}
                )
            )
        effective = ImbalanceObjective("squared", other)
        assert served.objective_value == effective.of_schedule(served.schedule)

    def test_schedule_unknown_scheduler(self):
        with FlexSession(backend="reference") as session:
            with pytest.raises(ServiceError):
                session.schedule(ScheduleRequest("simulated-annealing"))

    def test_empty_population_schedules_to_empty(self):
        with FlexSession(backend="reference") as session:
            result = session.schedule(ScheduleRequest("earliest"))
            assert len(result.schedule) == 0
            assert result.objective_value == 0.0

    def test_trade_matches_trading_session(self):
        offers = population(15)
        with FlexSession(backend="reference") as session:
            session.ingest(offers)
            served = session.trade(
                TradeRequest(measure="product", energy_price=1.0, budget=500.0)
            )
            lots = session.engine.aggregates()
        with use_backend("reference"):
            market = TradingSession(
                FlexibilityPricer(measure="product", energy_price=1.0),
                budget=500.0,
            )
            accepted, rejected = market.clear(lots)
        assert served.accepted == tuple(accepted)
        assert served.rejected == tuple(rejected)
        assert served.revenue == sum(bid.total_price for bid in accepted)
        assert served.stats.population == len(lots)

    def test_stream_event_mix_matches_engine_replay(self):
        offers = population(6)
        events = [OfferArrived(f"e{i}", offer) for i, offer in enumerate(offers)]
        events += [Tick(2), OfferExpired("e0"), Tick(5)]
        with FlexSession(backend="reference") as session:
            result = session.stream(StreamRequest(events=tuple(events)))
        engine = StreamingEngine()
        for event in events:
            engine.apply(event)
        assert result.applied == len(events)
        assert result.live == len(engine)
        assert result.time == engine.time
        assert result.engine_stats == engine.stats.as_dict()

    def test_bulk_stream_falls_back_on_event_mixes(self):
        offers = population(4)
        mixed = (
            OfferArrived("a", offers[0]),
            Tick(1),
            OfferArrived("b", offers[1]),
        )
        with FlexSession(backend="reference") as session:
            result = session.stream(StreamRequest(events=mixed, bulk=True))
            assert result.live == 2
            assert result.time == 1

    def test_activate_routes_library_calls_through_the_session(self):
        offers = population(6)
        with FlexSession(backend="reference") as session:
            with session.activate() as active:
                assert active is session
                report = evaluate_set(offers, ("time",))
        with use_backend("reference"):
            assert report == evaluate_set(offers, ("time",))


# --------------------------------------------------------------------- #
# The acceptance property: interleaved sessions == solo sessions
# --------------------------------------------------------------------- #


def _drive(session: FlexSession, offers, wind):
    """A fixed request mix exercising every request kind."""
    outputs = []
    outputs.append(session.ingest(offers).live)
    outputs.append(session.evaluate().report)
    outputs.append(session.aggregate().aggregates)
    outputs.append(
        session.schedule(
            ScheduleRequest(
                "hill-climbing",
                reference=wind,
                options={"iterations": 8, "restarts": 1},
            )
        ).schedule
    )
    outputs.append(session.trade(TradeRequest(budget=1e6)).accepted)
    session.stream(StreamRequest((Tick(3),)))
    outputs.append(session.evaluate().report)
    return outputs


@requires_numpy
def test_two_sessions_with_different_configs_interleave_bit_identically():
    """ISSUE acceptance: numpy vs. sharded sessions with different cache
    budgets, interleaved request by request, each equal a fresh solo run."""
    offers_a = population(40, seed=1)
    offers_b = population(30, seed=2)
    wind = TimeSeries(0, tuple([3] * 12))
    config_a = SessionConfig(backend="numpy", cache_entries=8, seed=5)
    config_b = SessionConfig(
        backend="sharded",
        shards=2,
        shard_min_population=1,
        cache_entries=2,
        cache_cells=10_000,
        seed=6,
    )

    solo_a = _drive(FlexSession(config_a), offers_a, wind)
    solo_b = _drive(FlexSession(config_b), offers_b, wind)

    session_a = FlexSession(config_a)
    session_b = FlexSession(config_b)
    try:
        interleaved_a = []
        interleaved_b = []
        interleaved_a.append(session_a.ingest(offers_a).live)
        interleaved_b.append(session_b.ingest(offers_b).live)
        interleaved_a.append(session_a.evaluate().report)
        interleaved_b.append(session_b.evaluate().report)
        interleaved_a.append(session_a.aggregate().aggregates)
        interleaved_b.append(session_b.aggregate().aggregates)
        request = ScheduleRequest(
            "hill-climbing", reference=wind, options={"iterations": 8, "restarts": 1}
        )
        interleaved_a.append(session_a.schedule(request).schedule)
        interleaved_b.append(session_b.schedule(request).schedule)
        interleaved_a.append(session_a.trade(TradeRequest(budget=1e6)).accepted)
        interleaved_b.append(session_b.trade(TradeRequest(budget=1e6)).accepted)
        session_a.stream(StreamRequest((Tick(3),)))
        session_b.stream(StreamRequest((Tick(3),)))
        interleaved_a.append(session_a.evaluate().report)
        interleaved_b.append(session_b.evaluate().report)
    finally:
        session_a.close()
        session_b.close()

    assert interleaved_a == solo_a
    assert interleaved_b == solo_b


@requires_numpy
def test_interleaved_sessions_do_not_share_cache_entries():
    offers = population(25, seed=3)
    small = FlexSession(backend="numpy", cache_entries=1, cache_cells=50)
    large = FlexSession(backend="numpy", cache_entries=8)
    try:
        small.ingest(offers)
        large.ingest(offers)
        small.evaluate()
        large.evaluate()
        # The large session's budget is untouched by the small session's
        # evictions, and neither session wrote into the process-wide cache.
        assert small.cache.stats()["size"] <= 1
        assert large.cache is not small.cache
        assert matrix_cache.peek(offers) is None
    finally:
        small.close()
        large.close()


@requires_numpy
def test_sharded_session_uses_instance_inner_backend():
    config = SessionConfig(
        backend="sharded", shards=2, shard_min_population=1, shard_executor="thread"
    )
    offers = population(30, seed=4)
    with FlexSession(config) as session:
        session.ingest(offers)
        served = session.evaluate().report
        # The session cache (not the global one) holds the packed state.
        assert session.cache.stats()["hits"] + session.cache.stats()["misses"] > 0
    with use_backend("reference"):
        assert served == evaluate_set(offers, None)


@requires_numpy
def test_process_executor_session_delegates_through_the_session_cache():
    """Process workers resolve the inner backend by name (separate memory),
    but the in-process delegation path for small populations must still
    route through the session's own cache — not the process-wide one."""
    config = SessionConfig(backend="sharded", shard_executor="process", shards=2)
    offers = population(20, seed=8)
    session = FlexSession(config)
    try:
        assert session.backend_name == "sharded"
        session.ingest(offers)
        served = session.evaluate()
        assert served.stats.cache_hits + served.stats.cache_misses > 0
        assert matrix_cache.peek(session.engine.live_offers()) is None
    finally:
        session.close()
    with use_backend("reference"):
        assert served.report == evaluate_set(offers, None)
