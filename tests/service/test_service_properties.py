"""Hypothesis equivalence: FlexSession requests ≡ hand-wired pipeline calls.

The session is a façade, never a reinterpretation: after *any* interleaving
of stream mutations and read requests, every response payload equals what
the hand-wired ``StreamingEngine`` + batch pipeline + scheduler + market
calls produce on the same state — bit-for-bit, not approximately.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aggregation import GroupingParameters, aggregate_all, group_by_grid
from repro.backend import NUMPY_AVAILABLE, available_backends, use_backend
from repro.core import FlexOffer
from repro.market import FlexibilityPricer, TradingSession
from repro.measures import evaluate_set
from repro.scheduling import EarliestStartScheduler, HillClimbingScheduler, ImbalanceObjective
from repro.service import (
    FlexSession,
    ScheduleRequest,
    SessionConfig,
    StreamRequest,
    TradeRequest,
)
from repro.stream import OfferArrived, OfferExpired, StreamingEngine, Tick

MEASURES = ("time", "energy", "product", "vector")
GROUPING = GroupingParameters(4, 2)
SEED = 13


@st.composite
def flex_offers(draw):
    earliest = draw(st.integers(min_value=0, max_value=6))
    width = draw(st.integers(min_value=0, max_value=3))
    slices = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ).map(lambda pair: (min(pair), min(pair) + abs(pair[1] - pair[0]))),
            min_size=1,
            max_size=3,
        )
    )
    return FlexOffer(earliest, earliest + width, slices)


#: One step of the interleaving: ("arrive", offers) | ("expire",) | ("tick",)
#: | ("evaluate",) | ("aggregate",) | ("schedule",) | ("trade",)
steps = st.lists(
    st.one_of(
        st.tuples(
            st.just("arrive"), st.lists(flex_offers(), min_size=1, max_size=4)
        ),
        st.tuples(st.just("expire")),
        st.tuples(st.just("tick")),
        st.tuples(st.just("evaluate")),
        st.tuples(st.just("aggregate")),
        st.tuples(st.just("schedule")),
        st.tuples(st.just("trade")),
    ),
    min_size=1,
    max_size=12,
)


def _run_interleaving(backend: str, script) -> None:
    config = SessionConfig(
        backend=backend, measures=MEASURES, grouping=GROUPING, seed=SEED
    )
    session = FlexSession(config)
    shadow = StreamingEngine(parameters=GROUPING, measures=MEASURES)
    arrivals = 0
    clock = 0
    try:
        for step in script:
            kind = step[0]
            if kind == "arrive":
                batch = [
                    OfferArrived(f"offer-{arrivals + index}", offer)
                    for index, offer in enumerate(step[1])
                ]
                arrivals += len(batch)
                result = session.stream(StreamRequest(events=tuple(batch)))
                for event in batch:
                    shadow.apply(event)
                assert result.live == len(shadow)
            elif kind == "expire":
                victims = shadow.live_ids()
                if not victims:
                    continue
                event = OfferExpired(victims[len(victims) // 2])
                session.stream(StreamRequest(events=(event,)))
                shadow.apply(event)
            elif kind == "tick":
                clock += 1
                session.stream(StreamRequest(events=(Tick(clock),)))
                shadow.apply(Tick(clock))
            elif kind == "evaluate":
                served = session.evaluate().report
                with use_backend(backend):
                    expected = evaluate_set(shadow.live_offers(), MEASURES)
                assert served == expected
            elif kind == "aggregate":
                served = session.aggregate()
                with use_backend(backend):
                    groups = group_by_grid(shadow.live_offers(), GROUPING)
                    aggregates = aggregate_all(groups, prefix="aggregate")
                assert served.groups == tuple(tuple(group) for group in groups)
                assert served.aggregates == tuple(aggregates)
            elif kind == "schedule":
                served = session.schedule(
                    ScheduleRequest(
                        "hill-climbing", options={"iterations": 3, "restarts": 1}
                    )
                )
                with use_backend(backend):
                    expected = HillClimbingScheduler(
                        iterations=3,
                        restarts=1,
                        seed=SEED,
                        objective=ImbalanceObjective("absolute", None),
                    ).schedule(shadow.live_offers(), None)
                assert served.schedule == expected
            elif kind == "trade":
                served = session.trade(TradeRequest(budget=1e9))
                with use_backend(backend):
                    lots = aggregate_all(
                        group_by_grid(shadow.live_offers(), GROUPING),
                        prefix="aggregate",
                    )
                    accepted, rejected = TradingSession(
                        FlexibilityPricer(), budget=1e9
                    ).clear(lots)
                assert served.accepted == tuple(accepted)
                assert served.rejected == tuple(rejected)
    finally:
        session.close()


@pytest.mark.slow
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=steps)
def test_session_interleavings_match_hand_wiring_reference(script):
    _run_interleaving("reference", script)


@pytest.mark.slow
@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(script=steps)
def test_session_interleavings_match_hand_wiring_numpy(script):
    _run_interleaving("numpy", script)


def test_fixed_interleaving_smoke_on_every_backend():
    """A deterministic fast-tier companion of the hypothesis properties."""
    script = [
        ("arrive", [FlexOffer(0, 3, [(1, 2)]), FlexOffer(2, 4, [(0, 2), (1, 3)])]),
        ("evaluate",),
        ("arrive", [FlexOffer(1, 1, [(2, 2)])]),
        ("aggregate",),
        ("schedule",),
        ("expire",),
        ("tick",),
        ("trade",),
        ("evaluate",),
    ]
    for backend in available_backends():
        _run_interleaving(backend, script)


def test_earliest_schedule_equivalence_after_churn():
    """Deterministic check with the baseline scheduler (no randomness)."""
    offers = [FlexOffer(i % 4, i % 4 + 2, [(1, 3)]) for i in range(9)]
    with FlexSession(backend="reference", measures=MEASURES) as session:
        session.ingest(offers)
        session.stream(
            StreamRequest(events=(OfferExpired(session.engine.live_ids()[0]),))
        )
        served = session.schedule(ScheduleRequest("earliest")).schedule
        survivors = session.engine.live_offers()
    with use_backend("reference"):
        assert served == EarliestStartScheduler().schedule(survivors)
