"""Error-path parity: every failure is a structured, io-round-trippable body.

The ISSUE satellite: malformed JSON, unknown sessions and oversized
payloads (plus the rest of the error taxonomy) return kind-tagged error
bodies that rebuild into the same typed exception through
:func:`repro.io.error_from_dict`.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core import SerializationError
from repro.io import error_from_dict, error_to_dict
from repro.server import (
    BadRequestError,
    Gateway,
    GatewayClient,
    GatewayConfig,
    GatewayError,
    InternalError,
    MethodNotAllowedError,
    NotFoundError,
    PayloadTooLargeError,
    RegistryFullError,
    RequestTimeoutError,
    SaturatedError,
    SessionExistsError,
    UnknownSessionError,
)
from repro.service import EvaluateRequest, SessionConfig

REFERENCE = {"backend": "reference"}


def scenario(coro_factory, **config_overrides):
    async def runner():
        gateway = Gateway(
            GatewayConfig(
                session_defaults=SessionConfig(backend="reference"),
                **config_overrides,
            )
        )
        try:
            client = GatewayClient.in_process(gateway)
            result = await coro_factory(gateway, client)
            await client.close()
            return result
        finally:
            gateway.close()

    return asyncio.run(runner())


def assert_error_body(response, status: int, code: str) -> None:
    """The response carries a structured, round-trippable error body."""
    assert response.status == status
    body = response.payload
    assert body["kind"] == "error"
    assert body["error"] == code
    assert body["status"] == status
    assert body["detail"]
    rebuilt = error_from_dict(body)
    assert isinstance(rebuilt, GatewayError)
    assert rebuilt.status == status
    assert rebuilt.code == code
    assert error_to_dict(rebuilt) == body


def test_malformed_json_is_a_structured_400():
    raw = b"{not json"

    async def run(gateway, client):
        client._writer.write(
            (
                "POST /sessions/t/requests HTTP/1.1\r\n"
                f"content-length: {len(raw)}\r\n\r\n"
            ).encode()
            + raw
        )
        await client._writer.drain()
        return await client._read_response()

    response = scenario(run)
    assert_error_body(response, 400, "bad-request")
    assert "JSON" in response.payload["detail"]


def test_non_object_request_body_is_a_400():
    async def run(gateway, client):
        return await client.request("POST", "/sessions/t/requests", [1, 2, 3])

    assert_error_body(scenario(run), 400, "bad-request")


def test_unknown_request_kind_is_a_400():
    async def run(gateway, client):
        await client.create_session("t", REFERENCE)
        return await client.request(
            "POST", "/sessions/t/requests", {"kind": "divide"}
        )

    assert_error_body(scenario(run), 400, "bad-request")


def test_unknown_scheduler_is_a_400():
    async def run(gateway, client):
        await client.create_session("t", REFERENCE)
        return await client.request(
            "POST",
            "/sessions/t/requests",
            {"kind": "schedule", "scheduler": "oracle"},
        )

    assert_error_body(scenario(run), 400, "bad-request")


def test_unknown_session_is_a_structured_404():
    async def run(gateway, client):
        return await client.submit("ghost", EvaluateRequest())

    assert_error_body(scenario(run), 404, "unknown-session")


def test_unknown_route_is_a_404_and_bad_method_a_405():
    async def run(gateway, client):
        missing = await client.request("GET", "/nope")
        deeper = await client.request("GET", "/sessions/t/requests/extra")
        method = await client.request("PATCH", "/sessions/t")
        submit_get = await client.request("GET", "/sessions/t/requests")
        return missing, deeper, method, submit_get

    missing, deeper, method, submit_get = scenario(run)
    assert_error_body(missing, 404, "not-found")
    assert_error_body(deeper, 404, "not-found")
    assert_error_body(method, 405, "method-not-allowed")
    assert_error_body(submit_get, 405, "method-not-allowed")


def test_duplicate_session_is_a_structured_409():
    async def run(gateway, client):
        await client.create_session("twin", REFERENCE)
        return await client.create_session("twin", REFERENCE)

    assert_error_body(scenario(run), 409, "session-exists")


def test_bad_session_config_is_a_400():
    async def run(gateway, client):
        return await client.create_session("t", {"backend": "warp-drive"})

    assert_error_body(scenario(run), 400, "bad-request")


def test_oversized_payload_is_a_structured_413():
    async def run(gateway, client):
        big = {"kind": "evaluate", "padding": "x" * 4096}
        return await client.request("POST", "/sessions/t/requests", big)

    response = scenario(run, max_body_bytes=1024)
    assert_error_body(response, 413, "payload-too-large")


def test_timeout_is_a_structured_504_and_session_survives():
    """The deadline satellite: a slow request 504s; the worker hand-off is
    clean, so the very next request on the same session succeeds."""

    async def run(gateway, client):
        await client.create_session("slow", REFERENCE)
        entry = gateway.registry.entry("slow")
        real_submit = entry.session.submit

        def sluggish(request):
            import time

            time.sleep(0.3)
            return real_submit(request)

        entry.session.submit = sluggish
        timed_out = await client.submit("slow", EvaluateRequest())
        entry.session.submit = real_submit
        recovered = await client.submit("slow", EvaluateRequest())
        return timed_out, recovered, gateway.timeouts

    timed_out, recovered, timeouts = scenario(run, request_timeout_s=0.05)
    assert_error_body(timed_out, 504, "timeout")
    assert recovered.status == 200
    assert timeouts == 1


def test_internal_failure_is_a_structured_500():
    async def run(gateway, client):
        await client.create_session("boom", REFERENCE)
        entry = gateway.registry.entry("boom")

        def explode(request):
            raise RuntimeError("kaput")

        entry.session.submit = explode
        return await client.submit("boom", EvaluateRequest())

    response = scenario(run)
    assert_error_body(response, 500, "internal")
    assert "kaput" in response.payload["detail"]


def test_every_error_class_round_trips_through_io():
    errors = [
        BadRequestError("bad"),
        UnknownSessionError("who"),
        NotFoundError("where"),
        MethodNotAllowedError("how"),
        SessionExistsError("again"),
        PayloadTooLargeError("big"),
        SaturatedError("full", retry_after=0.25),
        RegistryFullError("packed", retry_after=1.5),
        RequestTimeoutError("late"),
        InternalError("oops"),
    ]
    for error in errors:
        body = json.loads(json.dumps(error_to_dict(error)))
        rebuilt = error_from_dict(body)
        assert type(rebuilt) is type(error)
        assert rebuilt.status == error.status
        assert rebuilt.code == error.code
        assert rebuilt.detail == error.detail
        assert rebuilt.retry_after == error.retry_after


def test_error_io_rejects_non_errors():
    with pytest.raises(SerializationError):
        error_to_dict("not an error")
    with pytest.raises(SerializationError):
        error_from_dict({"kind": "evaluate"})
    with pytest.raises(SerializationError):
        error_from_dict({"kind": "error"})  # missing code/detail
    # Unknown codes still deserialise (forward compatibility).
    rebuilt = error_from_dict(
        {"kind": "error", "error": "brand-new", "status": 400, "detail": "x"}
    )
    assert isinstance(rebuilt, GatewayError)
