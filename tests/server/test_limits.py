"""Backpressure unit tests: gates, bounded queues, 429s, serialization."""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    ConcurrencyGate,
    Gateway,
    GatewayClient,
    GatewayConfig,
    SaturatedError,
    SessionGate,
)
from repro.service import EvaluateRequest, SessionConfig, StreamRequest
from repro.stream import Tick


def test_gate_parameter_validation():
    with pytest.raises(ValueError):
        ConcurrencyGate(limit=0, max_pending=1)
    with pytest.raises(ValueError):
        ConcurrencyGate(limit=1, max_pending=-1)
    with pytest.raises(ValueError):
        SessionGate(depth=-1)


def test_concurrency_gate_admits_up_to_limit_then_queues_then_rejects():
    gate = ConcurrencyGate(limit=2, max_pending=1, retry_after=0.5)
    events = []

    async def holder(name, hold):
        async with gate.admit():
            events.append(f"{name}-in")
            await hold.wait()
        events.append(f"{name}-out")

    async def scenario():
        hold = asyncio.Event()
        first = asyncio.ensure_future(holder("a", hold))
        second = asyncio.ensure_future(holder("b", hold))
        await asyncio.sleep(0)  # both slots taken
        third = asyncio.ensure_future(holder("c", hold))
        await asyncio.sleep(0)  # c is waiting
        assert gate.waiting == 1
        with pytest.raises(SaturatedError) as excinfo:
            async with gate.admit():
                pass  # pragma: no cover - rejected before entry
        assert excinfo.value.retry_after == 0.5
        assert gate.rejected == 1
        hold.set()
        await asyncio.gather(first, second, third)
        assert gate.waiting == 0
        assert gate.admitted == 3

    asyncio.run(scenario())
    assert events.count("a-in") == 1
    assert events.count("c-out") == 1


def test_session_gate_serialises_and_bounds_the_queue():
    gate = SessionGate(depth=1, retry_after=0.1)
    order = []

    async def user(name, delay):
        async with gate.admit():
            order.append(name)
            await asyncio.sleep(delay)

    async def scenario():
        first = asyncio.ensure_future(user("first", 0.02))
        await asyncio.sleep(0)
        second = asyncio.ensure_future(user("second", 0))
        await asyncio.sleep(0)
        assert gate.busy
        assert gate.waiting == 1
        with pytest.raises(SaturatedError):
            async with gate.admit():
                pass  # pragma: no cover - rejected before entry
        await asyncio.gather(first, second)
        assert order == ["first", "second"]
        assert gate.served == 2
        assert gate.rejected == 1
        assert not gate.busy

    asyncio.run(scenario())


def test_stream_ingest_flood_on_one_session_is_bounded():
    """The per-tenant queue satellite: a tenant flooding StreamRequest
    ingest gets 429s once its bounded queue fills; every accepted event
    is applied exactly once."""
    flood = 24
    depth = 2

    async def scenario():
        gateway = Gateway(
            GatewayConfig(
                max_concurrency=flood,
                max_pending=flood + 8,
                session_queue_depth=depth,
                session_defaults=SessionConfig(backend="reference"),
            )
        )
        try:
            setup = GatewayClient.in_process(gateway)
            await setup.create_session("flooded")
            # Slow the session down so the flood deterministically overlaps
            # the executing request (and fills the bounded queue).
            entry = gateway.registry.entry("flooded")
            real_submit = entry.session.submit

            def sluggish(request):
                import time

                time.sleep(0.02)
                return real_submit(request)

            entry.session.submit = sluggish

            async def one(index):
                client = GatewayClient.in_process(gateway)
                response = await client.submit(
                    "flooded", StreamRequest(events=(Tick(index),))
                )
                await client.close()
                return response

            responses = await asyncio.gather(*(one(i) for i in range(flood)))
            stats = await setup.session_stats("flooded")
            await setup.close()
            return responses, stats.payload, gateway
        finally:
            gateway.close()

    responses, stats, gateway = asyncio.run(scenario())
    accepted = [r for r in responses if r.status == 200]
    rejected = [r for r in responses if r.status == 429]
    assert len(accepted) + len(rejected) == flood
    assert rejected, "a depth-2 queue must shed a 24-deep flood"
    assert all(r.payload["error"] == "saturated" for r in rejected)
    assert all(r.retry_after is not None for r in rejected)
    # Accepted events were applied exactly once each; nothing was lost
    # or double-applied on the way through the bounded queue.
    assert stats["engine"]["events"] == len(accepted)
    assert stats["rejected"] == len(rejected)


def test_global_and_session_gates_compose():
    """A busy tenant cannot starve the gateway: other tenants keep being
    served while one tenant's queue rejects its own overflow."""

    async def scenario():
        gateway = Gateway(
            GatewayConfig(
                max_concurrency=4,
                max_pending=64,
                session_queue_depth=2,
                session_defaults=SessionConfig(backend="reference"),
            )
        )
        try:
            setup = GatewayClient.in_process(gateway)
            await setup.create_session("noisy")
            await setup.create_session("quiet")
            # Slow only the noisy tenant so its 10-deep flood overflows
            # its depth-2 queue while the quiet tenant sails through.
            entry = gateway.registry.entry("noisy")
            real_submit = entry.session.submit

            def sluggish(request):
                import time

                time.sleep(0.03)
                return real_submit(request)

            entry.session.submit = sluggish

            async def submit_to(name):
                client = GatewayClient.in_process(gateway)
                response = await client.submit(name, EvaluateRequest())
                await client.close()
                return response.status

            noisy = [submit_to("noisy") for _ in range(10)]
            quiet = [submit_to("quiet") for _ in range(3)]
            statuses = await asyncio.gather(*noisy, *quiet)
            await setup.close()
            return statuses[: len(noisy)], statuses[len(noisy):]
        finally:
            gateway.close()

    noisy_statuses, quiet_statuses = asyncio.run(scenario())
    assert quiet_statuses == [200, 200, 200]
    assert 429 in noisy_statuses  # the noisy tenant sheds its own flood
    assert 200 in noisy_statuses  # but still gets served


def test_timeout_disabled_runs_to_completion():
    async def scenario():
        gateway = Gateway(
            GatewayConfig(
                request_timeout_s=None,
                session_defaults=SessionConfig(backend="reference"),
            )
        )
        try:
            client = GatewayClient.in_process(gateway)
            await client.create_session("unhurried")
            response = await client.submit("unhurried", EvaluateRequest())
            await client.close()
            return response.status
        finally:
            gateway.close()

    assert asyncio.run(scenario()) == 200
