"""ClientResponse parsing — the ``Retry-After`` degradation regression.

A retry loop polls :attr:`ClientResponse.retry_after` on every throttled
response; before the PR 7 fix a proxy-injected HTTP-date (RFC 7231 allows
one) or garbage value crashed the loop with ``ValueError``.  Every
unusable header must degrade to ``None`` — "no hint" — never raise.
"""

from __future__ import annotations

import pytest

from repro.server import ClientResponse


def response(headers: dict) -> ClientResponse:
    return ClientResponse(429, headers, {"kind": "error"})


def test_numeric_header_parses():
    assert response({"retry-after": "1.5"}).retry_after == 1.5
    assert response({"retry-after": "0"}).retry_after == 0.0
    assert response({"retry-after": "120"}).retry_after == 120.0


def test_missing_header_is_none():
    assert response({}).retry_after is None


@pytest.mark.parametrize(
    "value",
    [
        "Wed, 21 Oct 2015 07:28:00 GMT",  # RFC 7231 HTTP-date form
        "garbage",
        "",
        "1.5s",
        "nan",
        "inf",
        "-inf",
        "-3",
        "-0.001",
    ],
)
def test_unusable_header_degrades_to_none(value):
    assert response({"retry-after": value}).retry_after is None


def test_ok_is_status_driven():
    assert ClientResponse(200, {}, {}).ok
    assert not response({}).ok
