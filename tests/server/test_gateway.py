"""Gateway routing, the HTTP request path, transports and the access log.

Includes the PR 6 acceptance property: two tenants with *different*
compute backends served through the HTTP wire path produce responses
bit-identical to solo :class:`~repro.service.FlexSession` runs — the
PR 5 interleaved-sessions guarantee extended across the network boundary.
"""

from __future__ import annotations

import asyncio
import io
import json
import random

import pytest

from repro.backend import NUMPY_AVAILABLE
from repro.core import FlexOffer, TimeSeries
from repro.io import request_stats_to_csv, result_to_dict
from repro.server import Gateway, GatewayClient, GatewayConfig, serve
from repro.service import (
    AggregateRequest,
    EvaluateRequest,
    FlexSession,
    ScheduleRequest,
    SessionConfig,
    StreamRequest,
    TradeRequest,
)
from repro.stream import Tick, population_events

requires_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)

REFERENCE = {"backend": "reference"}


def population(size: int, seed: int = 0) -> list[FlexOffer]:
    rng = random.Random(seed)
    offers = []
    for index in range(size):
        earliest = rng.randrange(0, 8)
        slices = [(1, 1 + rng.randint(0, 3))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        offers.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 3),
                slices,
                name=f"offer-{seed}-{index}",
            )
        )
    return offers


def gateway_scenario(coro_factory, **config_overrides):
    """Run one async scenario against a fresh in-process gateway."""

    async def runner():
        gateway = Gateway(GatewayConfig(**config_overrides))
        try:
            return await coro_factory(gateway)
        finally:
            gateway.close()

    return asyncio.run(runner())


def test_health_list_create_stats_evict_roundtrip():
    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        health = await client.health()
        assert health.status == 200
        assert health.payload["kind"] == "health"
        assert health.payload["registry"]["sessions"] == 0

        created = await client.create_session("tenant-a", REFERENCE)
        assert created.status == 201
        assert created.payload["backend"] == "reference"
        assert created.payload["config"]["backend"] == "reference"

        listing = await client.request("GET", "/sessions")
        assert listing.payload == {"kind": "sessions", "sessions": ["tenant-a"]}

        stats = await client.session_stats("tenant-a")
        assert stats.status == 200
        assert stats.payload["name"] == "tenant-a"
        assert stats.payload["live"] == 0

        evicted = await client.evict_session("tenant-a")
        assert evicted.status == 200
        assert evicted.payload == {"kind": "evicted", "name": "tenant-a"}
        listing = await client.request("GET", "/sessions")
        assert listing.payload["sessions"] == []
        await client.close()

    gateway_scenario(scenario)


def test_submit_roundtrips_every_request_kind():
    offers = population(12, seed=3)
    wind = TimeSeries(0, tuple([2] * 12))

    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        await client.create_session("t", REFERENCE)
        ingest = await client.submit(
            "t", StreamRequest(events=tuple(population_events(offers)), bulk=True)
        )
        assert ingest.status == 200
        assert ingest.result().live == len(offers)

        evaluated = await client.submit("t", EvaluateRequest())
        assert evaluated.result().report.size == len(offers)

        aggregated = await client.submit("t", AggregateRequest())
        assert sum(len(g) for g in aggregated.result().groups) == len(offers)

        scheduled = await client.submit(
            "t", ScheduleRequest("greedy", reference=wind)
        )
        assert len(scheduled.result().schedule) == len(offers)

        traded = await client.submit("t", TradeRequest(budget=1e9))
        assert traded.result().revenue > 0

        ticked = await client.submit("t", StreamRequest(events=(Tick(5),)))
        assert ticked.result().time == 5
        await client.close()

    gateway_scenario(scenario)


def test_tcp_serve_and_port_allocation():
    offers = population(6, seed=9)

    async def scenario():
        server = await serve(port=0, session_defaults=SessionConfig(backend="reference"))
        async with server:
            assert server.port > 0
            client = await GatewayClient.open_tcp(server.host, server.port)
            created = await client.create_session("tcp-tenant")
            assert created.status == 201
            response = await client.submit(
                "tcp-tenant", EvaluateRequest(offers=tuple(offers))
            )
            assert response.status == 200
            assert response.result().report.size == len(offers)
            await client.close()

    asyncio.run(scenario())


def test_idle_ttl_sweeper_runs_in_serve():
    async def scenario():
        server = await serve(
            port=0,
            idle_ttl=0.05,
            session_defaults=SessionConfig(backend="reference"),
        )
        async with server:
            client = await GatewayClient.open_tcp(server.host, server.port)
            await client.create_session("ephemeral")
            assert "ephemeral" in server.gateway.registry
            await asyncio.sleep(0.2)  # > idle_ttl + sweep interval
            assert "ephemeral" not in server.gateway.registry
            await client.close()

    asyncio.run(scenario())


def test_access_log_streams_request_stats_rows():
    sink = io.StringIO()
    offers = population(5, seed=1)

    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        await client.create_session("logged", REFERENCE)
        await client.submit(
            "logged",
            StreamRequest(events=tuple(population_events(offers)), bulk=True),
        )
        await client.submit("logged", EvaluateRequest())
        await client.close()

    gateway_scenario(scenario, access_log=sink)
    lines = sink.getvalue().strip().splitlines()
    assert lines[0] == "kind,backend,duration_s,population,cache_hits,cache_misses"
    kinds = [line.split(",")[0] for line in lines[1:]]
    assert kinds == ["stream", "evaluate"]


def test_gateway_config_validation():
    with pytest.raises(ValueError):
        GatewayConfig(request_timeout_s=0)
    with pytest.raises(ValueError):
        GatewayConfig(max_body_bytes=0)
    with pytest.raises(ValueError):
        Gateway(GatewayConfig(), max_sessions=3)


# --------------------------------------------------------------------- #
# The acceptance property: HTTP-served tenants == solo sessions
# --------------------------------------------------------------------- #


def _mix(offers, wind):
    """The request mix of the PR 5 acceptance property, as wire bodies."""
    return [
        StreamRequest(events=tuple(population_events(offers)), bulk=True),
        EvaluateRequest(),
        AggregateRequest(),
        ScheduleRequest(
            "hill-climbing",
            reference=wind,
            options={"iterations": 8, "restarts": 1},
        ),
        TradeRequest(budget=1e6),
        StreamRequest(events=(Tick(3),)),
        EvaluateRequest(),
    ]


def _strip_stats(payload: dict) -> dict:
    """Drop the wall-clock-bearing stats block before comparing payloads."""
    payload = dict(payload)
    payload.pop("stats", None)
    return payload


def _solo_payloads(config: SessionConfig, offers, wind) -> list:
    """The wire payloads of a solo FlexSession run over the same mix."""
    payloads = []
    with FlexSession(config) as session:
        for request in _mix(offers, wind):
            result = session.submit(request)
            # Through json to normalise exactly like the HTTP path does.
            payloads.append(
                _strip_stats(json.loads(json.dumps(result_to_dict(result))))
            )
    return payloads


@requires_numpy
def test_two_tenants_with_different_backends_match_solo_sessions_over_http():
    """ISSUE acceptance: numpy and sharded tenants, interleaved request by
    request through the gateway's HTTP path, are bit-identical to solo
    in-process FlexSession runs."""
    offers_a = population(40, seed=1)
    offers_b = population(30, seed=2)
    wind = TimeSeries(0, tuple([3] * 12))
    config_a = SessionConfig(backend="numpy", cache_entries=8, seed=5)
    config_b = SessionConfig(
        backend="sharded",
        shards=2,
        shard_min_population=1,
        cache_entries=2,
        cache_cells=10_000,
        seed=6,
    )
    solo_a = _solo_payloads(config_a, offers_a, wind)
    solo_b = _solo_payloads(config_b, offers_b, wind)

    async def scenario(gateway):
        client_a = GatewayClient.in_process(gateway)
        client_b = GatewayClient.in_process(gateway)
        assert (
            await client_a.create_session("tenant-a", config_a.as_dict())
        ).status == 201
        assert (
            await client_b.create_session("tenant-b", config_b.as_dict())
        ).status == 201
        served_a, served_b = [], []
        for request_a, request_b in zip(
            _mix(offers_a, wind), _mix(offers_b, wind)
        ):
            response_a = await client_a.submit("tenant-a", request_a)
            response_b = await client_b.submit("tenant-b", request_b)
            assert response_a.status == 200
            assert response_b.status == 200
            served_a.append(_strip_stats(response_a.payload))
            served_b.append(_strip_stats(response_b.payload))
        await client_a.close()
        await client_b.close()
        return served_a, served_b

    served_a, served_b = gateway_scenario(scenario)
    assert served_a == solo_a
    assert served_b == solo_b


def test_concurrent_tenants_are_isolated():
    """Interleaved concurrent tenants each see exactly their own state."""
    tenants = 12

    async def scenario(gateway):
        async def one(index: int):
            client = GatewayClient.in_process(gateway)
            name = f"iso-{index}"
            await client.create_session(name, REFERENCE)
            offers = population(4 + index % 3, seed=index)
            await client.submit(
                name,
                StreamRequest(
                    events=tuple(population_events(offers)), bulk=True
                ),
            )
            evaluated = await client.submit(name, EvaluateRequest())
            await client.close()
            return evaluated.result().report.size, len(offers)

        results = await asyncio.gather(*(one(i) for i in range(tenants)))
        return results

    for size, expected in gateway_scenario(scenario, max_sessions=32):
        assert size == expected


def test_request_stats_csv_matches_access_log_columns():
    """The access-log satellite: rows from the gateway parse with the
    same exporter the service layer already ships."""
    offers = population(4, seed=2)

    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        await client.create_session("t", REFERENCE)
        response = await client.submit(
            "t", EvaluateRequest(offers=tuple(offers))
        )
        await client.close()
        return response.result()

    result = gateway_scenario(scenario)
    text = request_stats_to_csv([result])
    assert text.splitlines()[1].startswith("evaluate,reference,")
