"""Gateway/registry durability: checkpoint route, lazy tenant recovery,
checkpoint-then-close eviction and the session-name path guard."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server import (
    BadRequestError,
    Gateway,
    GatewayClient,
    GatewayConfig,
    SessionRegistry,
    UnknownSessionError,
)
from repro.service import FlexSession, SessionConfig, StreamRequest
from repro.stream import population_events
from repro.workloads import neighbourhood_scenario

DURABLE = {"backend": "reference", "persist_fsync": False}


def offers():
    return neighbourhood_scenario(households=4, seed=21, horizon=24).flex_offers


def arrival_events():
    return tuple(population_events(offers()))


def fingerprint(session: FlexSession) -> str:
    return json.dumps(session.engine.export_state(), sort_keys=True)


def gateway_scenario(coro_factory, **config_overrides):
    async def runner():
        gateway = Gateway(GatewayConfig(**config_overrides))
        try:
            return await coro_factory(gateway)
        finally:
            gateway.close()

    return asyncio.run(runner())


# --------------------------------------------------------------------- #
# The checkpoint route
# --------------------------------------------------------------------- #
def test_checkpoint_route_roundtrip(tmp_path):
    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        await client.create_session("acme", DURABLE)
        ingest = await client.submit("acme", StreamRequest(events=arrival_events()))
        assert ingest.ok

        checkpointed = await client.checkpoint("acme")
        assert checkpointed.status == 200
        assert checkpointed.payload["kind"] == "checkpoint"
        assert checkpointed.payload["name"] == "acme"
        assert checkpointed.payload["snapshot_seq"] == len(arrival_events())
        assert checkpointed.payload["live"] == len(offers())

        stats = await client.session_stats("acme")
        assert stats.payload["persistence"]["checkpoints"] == 1
        await client.close()

    gateway_scenario(scenario, persist_root=str(tmp_path))


def test_checkpoint_unknown_session_is_404(tmp_path):
    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        missing = await client.checkpoint("ghost")
        assert missing.status == 404
        await client.close()

    gateway_scenario(scenario, persist_root=str(tmp_path))


def test_checkpoint_without_persistence_is_400():
    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        await client.create_session("ephemeral", {"backend": "reference"})
        refused = await client.checkpoint("ephemeral")
        assert refused.status == 400
        assert "persist_dir" in refused.payload["detail"]
        await client.close()

    gateway_scenario(scenario)  # no persist_root


# --------------------------------------------------------------------- #
# The session-name path guard
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "name",
    ["..evil", "a/../b", ".hidden", "-dash-first", "", "x" * 129, "semi;colon"],
)
def test_invalid_session_names_are_400(tmp_path, name):
    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        refused = await client.create_session(name or "%20", DURABLE)
        # Names with a path separator never even address the route (404);
        # the rest hit the 400 name guard.
        assert refused.status in (400, 404)
        # Whatever the rejection path, nothing ever touched the disk.
        assert list(tmp_path.iterdir()) == []
        await client.close()

    gateway_scenario(scenario, persist_root=str(tmp_path))


def test_name_guard_applies_without_persistence_too():
    registry = SessionRegistry(
        max_sessions=2, default_config=SessionConfig(backend="reference")
    )
    try:
        with pytest.raises(BadRequestError):
            registry.create("../escape")
    finally:
        registry.close()


# --------------------------------------------------------------------- #
# Lazy recovery across restarts
# --------------------------------------------------------------------- #
def test_gateway_restart_recovers_tenant_on_first_request(tmp_path):
    events = arrival_events()

    async def first_run(gateway):
        client = GatewayClient.in_process(gateway)
        await client.create_session("acme", DURABLE)
        await client.submit("acme", StreamRequest(events=events))
        await client.close()

    async def second_run(gateway):
        client = GatewayClient.in_process(gateway)
        listing = await client.request("GET", "/sessions")
        assert listing.payload["sessions"] == []  # not resident yet

        stats = await client.session_stats("acme")  # first touch recovers
        assert stats.status == 200
        assert stats.payload["live"] == len(offers())
        assert stats.payload["recovery"]["replayed"] == 0  # closed gracefully

        health = await client.health()
        assert health.payload["registry"]["recovered"] == 1
        assert health.payload["registry"]["persist_root"] == str(tmp_path)
        await client.close()

    gateway_scenario(first_run, persist_root=str(tmp_path))
    gateway_scenario(second_run, persist_root=str(tmp_path))


def test_unknown_tenant_stays_404_after_restart(tmp_path):
    async def scenario(gateway):
        client = GatewayClient.in_process(gateway)
        missing = await client.session_stats("never-created")
        assert missing.status == 404
        await client.close()

    gateway_scenario(scenario, persist_root=str(tmp_path))


def test_recovery_honours_the_persisted_config(tmp_path):
    registry = SessionRegistry(
        max_sessions=4,
        default_config=SessionConfig(backend="reference"),
        persist_root=str(tmp_path),
    )
    try:
        created = registry.create(
            "tenant", SessionConfig(backend="reference", seed=42, persist_fsync=False)
        )
        created.stream(StreamRequest(events=arrival_events()))
        registry.evict("tenant")

        recovered = registry.get("tenant")  # lazy recovery
        assert recovered.config.seed == 42
        assert recovered.config.persist_dir == str(tmp_path / "tenant")
        assert registry.recovered == 1
    finally:
        registry.close()


# --------------------------------------------------------------------- #
# Evicted-then-recovered bit-identity (satellite #3)
# --------------------------------------------------------------------- #
def test_evicted_tenant_recovers_bit_identically(tmp_path):
    events = arrival_events()
    registry = SessionRegistry(
        max_sessions=4,
        default_config=SessionConfig(backend="reference", persist_fsync=False),
        persist_root=str(tmp_path),
    )
    try:
        session = registry.create("acme")
        session.stream(StreamRequest(events=events))
        before = fingerprint(session)

        registry.evict("acme")  # checkpoint-then-close
        assert session.closed

        recovered = registry.get("acme")
        assert recovered is not session
        assert recovered.recovery is not None
        assert recovered.recovery.replayed == 0  # eviction checkpointed
        assert fingerprint(recovered) == before

        # And it matches a solo session fed the same events end to end.
        with FlexSession(SessionConfig(backend="reference")) as solo:
            solo.stream(StreamRequest(events=events))
            assert fingerprint(recovered) == fingerprint(solo)
    finally:
        registry.close()


def test_lru_cap_eviction_also_checkpoints(tmp_path):
    registry = SessionRegistry(
        max_sessions=2,
        default_config=SessionConfig(backend="reference", persist_fsync=False),
        persist_root=str(tmp_path),
    )
    try:
        victim = registry.create("old")
        victim.stream(StreamRequest(events=arrival_events()))
        registry.create("mid")
        registry.create("new")  # caps out; evicts "old"
        assert victim.closed
        assert "old" not in registry

        recovered = registry.get("old")  # displaces the LRU again
        assert recovered.recovery.replayed == 0
        assert len(registry) == 2
    finally:
        registry.close()
