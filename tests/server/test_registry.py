"""SessionRegistry lifecycle: create/get/evict, LRU cap, idle-TTL expiry."""

from __future__ import annotations

import asyncio

import pytest

from repro.server import (
    RegistryFullError,
    SessionExistsError,
    SessionRegistry,
    UnknownSessionError,
)
from repro.service import SessionConfig


class FakeClock:
    """An injectable monotonic clock the tests can advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def registry() -> SessionRegistry:
    reg = SessionRegistry(
        max_sessions=3, default_config=SessionConfig(backend="reference")
    )
    yield reg
    reg.close()


def test_create_get_evict_roundtrip(registry):
    session = registry.create("tenant-a")
    assert registry.get("tenant-a") is session
    assert "tenant-a" in registry
    assert len(registry) == 1
    evicted = registry.evict("tenant-a")
    assert evicted is session
    assert evicted.closed
    assert len(registry) == 0


def test_create_duplicate_name_is_a_409(registry):
    registry.create("tenant-a")
    with pytest.raises(SessionExistsError) as excinfo:
        registry.create("tenant-a")
    assert excinfo.value.status == 409


def test_get_unknown_name_is_a_404(registry):
    with pytest.raises(UnknownSessionError) as excinfo:
        registry.get("nope")
    assert excinfo.value.status == 404
    with pytest.raises(UnknownSessionError):
        registry.evict("nope")


def test_cap_evicts_least_recently_used_idle_session(registry):
    first = registry.create("a")
    registry.create("b")
    registry.create("c")
    # Touch "a" so "b" becomes the LRU candidate.
    registry.get("a")
    registry.create("d")
    assert registry.names() == ["c", "a", "d"]
    assert first.closed is False
    assert registry.get("a") is first
    with pytest.raises(UnknownSessionError):
        registry.get("b")
    assert registry.evicted == 1


def test_cap_with_all_sessions_busy_is_a_429():
    registry = SessionRegistry(
        max_sessions=1, default_config=SessionConfig(backend="reference")
    )
    try:
        registry.create("busy")
        entry = registry.entry("busy")

        async def while_busy():
            async with entry.gate.admit():
                with pytest.raises(RegistryFullError) as excinfo:
                    registry.create("overflow")
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after is not None

        asyncio.run(while_busy())
        # Once idle again, the LRU eviction path unblocks creation.
        registry.create("next")
        assert registry.names() == ["next"]
    finally:
        registry.close()


def test_idle_ttl_expires_untouched_sessions():
    clock = FakeClock()
    registry = SessionRegistry(
        max_sessions=8,
        idle_ttl=10.0,
        default_config=SessionConfig(backend="reference"),
        clock=clock,
    )
    try:
        stale = registry.create("stale")
        registry.create("fresh")
        clock.advance(8.0)
        registry.get("fresh")  # touches only "fresh"
        clock.advance(4.0)  # "stale" is now 12s idle, "fresh" 4s
        assert registry.sweep() == ["stale"]
        assert stale.closed
        assert registry.names() == ["fresh"]
        assert registry.expired == 1
        # Sweeping again finds nothing new.
        assert registry.sweep() == []
    finally:
        registry.close()


def test_idle_ttl_spares_busy_sessions():
    clock = FakeClock()
    registry = SessionRegistry(
        max_sessions=8,
        idle_ttl=5.0,
        default_config=SessionConfig(backend="reference"),
        clock=clock,
    )
    try:
        registry.create("held")
        entry = registry.entry("held")
        clock.advance(60.0)

        async def while_busy():
            async with entry.gate.admit():
                assert registry.sweep() == []

        asyncio.run(while_busy())
        assert registry.sweep() == ["held"]
    finally:
        registry.close()


def test_create_sweeps_expired_sessions_first():
    clock = FakeClock()
    registry = SessionRegistry(
        max_sessions=8,
        idle_ttl=5.0,
        default_config=SessionConfig(backend="reference"),
        clock=clock,
    )
    try:
        registry.create("old")
        clock.advance(30.0)
        registry.create("new")
        assert registry.names() == ["new"]
        assert registry.expired == 1
    finally:
        registry.close()


def test_per_tenant_configs_are_isolated(registry):
    small = registry.create("small", SessionConfig(backend="reference", cache_entries=1))
    large = registry.create("large", SessionConfig(backend="reference", cache_entries=8))
    assert small.config.cache_entries == 1
    assert large.config.cache_entries == 8
    assert small.cache is not large.cache


def test_default_config_resolved_lazily_and_shared():
    registry = SessionRegistry(
        max_sessions=4, default_config=SessionConfig(backend="reference")
    )
    try:
        a = registry.create("a")
        b = registry.create("b")
        # One shared (immutable) config, but independent session resources.
        assert a.config is b.config
        assert a.cache is not b.cache
        assert a.engine is not b.engine
    finally:
        registry.close()


def test_stats_and_validation():
    registry = SessionRegistry(
        max_sessions=2, default_config=SessionConfig(backend="reference")
    )
    try:
        registry.create("a")
        stats = registry.stats()
        assert stats["sessions"] == 1
        assert stats["max_sessions"] == 2
        assert stats["created"] == 1
        entry = registry.entry("a")
        block = entry.stats()
        assert block["name"] == "a"
        assert block["served"] == 0
        assert block["queued"] == 0
    finally:
        registry.close()
    with pytest.raises(ValueError):
        SessionRegistry(max_sessions=0)
    with pytest.raises(ValueError):
        SessionRegistry(idle_ttl=0.0)


def test_close_closes_every_session(registry):
    sessions = [registry.create(f"t{i}") for i in range(3)]
    registry.close()
    assert all(session.closed for session in sessions)
    assert len(registry) == 0
