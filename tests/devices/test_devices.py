"""Tests for every device model."""

import random

import pytest

from repro.core import FlexOfferKind, WorkloadError
from repro.devices import (
    Dishwasher,
    ElectricVehicle,
    HeatPump,
    Refrigerator,
    SolarPanel,
    VehicleToGrid,
    WashingMachine,
    WindTurbine,
)


ALL_DEVICE_CLASSES = [
    ElectricVehicle,
    HeatPump,
    Dishwasher,
    WashingMachine,
    Refrigerator,
    SolarPanel,
    WindTurbine,
    VehicleToGrid,
]


class TestCommonBehaviour:
    @pytest.mark.parametrize("device_class", ALL_DEVICE_CLASSES)
    def test_generated_flexoffers_are_valid_and_named(self, device_class, rng):
        device = device_class()
        flex_offers = device.generate_many(5, rng)
        assert len(flex_offers) == 5
        names = {f.name for f in flex_offers}
        assert len(names) == 5  # unique names
        for flex_offer in flex_offers:
            assert flex_offer.duration >= 1
            assert flex_offer.tes <= flex_offer.tls

    @pytest.mark.parametrize("device_class", ALL_DEVICE_CLASSES)
    def test_generation_is_reproducible_with_same_seed(self, device_class):
        first = device_class().generate(random.Random(42))
        second = device_class().generate(random.Random(42))
        assert first.slices == second.slices
        assert (first.tes, first.tls) == (second.tes, second.tls)

    @pytest.mark.parametrize("device_class", ALL_DEVICE_CLASSES)
    def test_explicit_plug_in_time_is_respected(self, device_class, rng):
        flex_offer = device_class().generate(rng, plug_in_time=12)
        assert flex_offer.earliest_start == 12

    def test_generate_many_rejects_negative_count(self, rng):
        with pytest.raises(WorkloadError):
            ElectricVehicle().generate_many(-1, rng)


class TestConsumptionDevices:
    def test_ev_matches_use_case_shape(self, rng):
        ev = ElectricVehicle(charger_power=4, min_duration=3, max_duration=3,
                             min_acceptable_fraction=0.6)
        flex_offer = ev.generate(rng, plug_in_time=23)
        assert flex_offer.is_consumption
        assert flex_offer.duration == 3
        assert flex_offer.cmax == 12
        assert flex_offer.cmin == round(12 * 0.6)

    def test_ev_parameter_validation(self):
        with pytest.raises(WorkloadError):
            ElectricVehicle(charger_power=0)
        with pytest.raises(WorkloadError):
            ElectricVehicle(min_acceptable_fraction=0.0)
        with pytest.raises(WorkloadError):
            ElectricVehicle(min_duration=3, max_duration=2)

    def test_heat_pump_comfort_minimum(self, rng):
        pump = HeatPump(low_power=1, high_power=3, comfort_fraction=0.7)
        flex_offer = pump.generate(rng)
        assert flex_offer.cmin >= flex_offer.duration * 1
        assert flex_offer.cmin >= round(flex_offer.cmax * 0.7)

    def test_dishwasher_is_time_flexible_energy_inflexible(self, rng):
        flex_offer = Dishwasher().generate(rng)
        assert flex_offer.energy_flexibility == 0
        assert flex_offer.is_consumption

    def test_washing_machine_has_heavier_programme(self):
        assert sum(WashingMachine().programme) > sum(Dishwasher().programme)

    def test_refrigerator_is_amount_flexible(self, rng):
        flex_offer = Refrigerator().generate(rng)
        assert flex_offer.energy_flexibility > 0
        assert flex_offer.time_flexibility <= 1

    def test_invalid_programme_rejected(self):
        with pytest.raises(WorkloadError):
            Dishwasher(programme=())
        with pytest.raises(WorkloadError):
            Dishwasher(programme=(-1, 2))


class TestProductionAndStorageDevices:
    def test_solar_panel_is_production(self, rng):
        flex_offer = SolarPanel().generate(rng)
        assert flex_offer.kind is FlexOfferKind.PRODUCTION
        assert flex_offer.time_flexibility == 0

    def test_non_curtailable_solar_keeps_minimum_feed_in(self, rng):
        flex_offer = SolarPanel(curtailable=False).generate(rng)
        assert all(s.amax < 0 for s in flex_offer.slices)

    def test_wind_turbine_is_production(self, rng):
        flex_offer = WindTurbine().generate(rng)
        assert flex_offer.kind is FlexOfferKind.PRODUCTION

    def test_v2g_is_mixed(self, rng):
        flex_offer = VehicleToGrid().generate(rng)
        assert flex_offer.kind is FlexOfferKind.MIXED

    def test_v2g_net_energy_constraints_clipped_to_profile(self, rng):
        device = VehicleToGrid(min_duration=1, max_duration=1,
                               net_energy_min=-100, net_energy_max=100)
        flex_offer = device.generate(rng)
        assert flex_offer.cmin >= flex_offer.profile_minimum
        assert flex_offer.cmax <= flex_offer.profile_maximum

    def test_device_parameter_validation(self):
        with pytest.raises(WorkloadError):
            SolarPanel(peak_production=0)
        with pytest.raises(WorkloadError):
            WindTurbine(hours=0)
        with pytest.raises(WorkloadError):
            VehicleToGrid(charge_power=0, discharge_power=0)
        with pytest.raises(WorkloadError):
            VehicleToGrid(net_energy_min=5, net_energy_max=1)
