"""Unit tests for repro.core.flexoffer."""

import pytest

from repro.core import EnergySlice, FlexOffer, FlexOfferKind, InvalidFlexOfferError


class TestConstruction:
    def test_paper_notation_constructor(self, fig1):
        assert fig1.tes == 1
        assert fig1.tls == 6
        assert fig1.duration == 4

    def test_defaults_total_constraints_to_slice_sums(self, fig1):
        # Example 2: cmin = 3, cmax = 15 for the Figure 1 flex-offer.
        assert fig1.cmin == 3
        assert fig1.cmax == 15

    def test_explicit_total_constraints(self):
        f = FlexOffer(0, 1, [(0, 5)], 2, 4)
        assert (f.cmin, f.cmax) == (2, 4)

    def test_latest_before_earliest_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(5, 3, [(0, 1)])

    def test_negative_start_times_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(-1, 2, [(0, 1)])

    def test_empty_profile_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(0, 1, [])

    def test_total_constraints_outside_profile_bounds_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(0, 1, [(0, 2)], -1, 2)
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(0, 1, [(0, 2)], 0, 3)

    def test_crossed_total_constraints_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(0, 1, [(0, 5)], 4, 2)

    def test_non_string_name_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            FlexOffer(0, 1, [(0, 1)], name=42)

    def test_inflexible_constructor(self):
        f = FlexOffer.inflexible(3, [2, 2, 1])
        assert f.time_flexibility == 0
        assert f.energy_flexibility == 0
        assert f.cmin == f.cmax == 5

    def test_from_paper_notation(self):
        f = FlexOffer.from_paper_notation((1, 6), [(1, 3), (2, 4), (0, 5), (0, 3)])
        assert f.time_flexibility == 5


class TestFlexibilityPrimitives:
    def test_time_flexibility_example1(self, fig1):
        assert fig1.time_flexibility == 5

    def test_energy_flexibility_example2(self, fig1):
        assert fig1.energy_flexibility == 12

    def test_has_flags(self, fig1):
        assert fig1.has_time_flexibility
        assert fig1.has_energy_flexibility
        pinned = FlexOffer.inflexible(0, [1])
        assert not pinned.has_time_flexibility
        assert not pinned.has_energy_flexibility


class TestKinds:
    def test_consumption(self, fig1):
        assert fig1.kind is FlexOfferKind.CONSUMPTION
        assert fig1.is_consumption

    def test_production(self):
        f = FlexOffer(0, 2, [(-3, 0), (-2, -1)])
        assert f.kind is FlexOfferKind.PRODUCTION
        assert f.is_production

    def test_mixed(self, fig7_f6):
        assert fig7_f6.kind is FlexOfferKind.MIXED
        assert fig7_f6.is_mixed


class TestCanonicalAssignments:
    def test_minimum_assignment_definition5(self, fig1):
        minimum = fig1.minimum_assignment()
        assert minimum.start == fig1.earliest_start
        assert minimum.values == (1, 2, 0, 0)

    def test_maximum_assignment_definition6(self, fig1):
        maximum = fig1.maximum_assignment()
        assert maximum.start == fig1.latest_start
        assert maximum.values == (3, 4, 5, 3)


class TestEffectiveBounds:
    def test_no_tightening_without_total_constraints(self, fig1):
        assert fig1.effective_slice_bounds() == fig1.slices

    def test_total_max_tightens_slice_maxima(self):
        f = FlexOffer(0, 0, [(0, 5), (0, 5)], 0, 4)
        bounds = f.effective_slice_bounds()
        assert bounds == (EnergySlice(0, 4), EnergySlice(0, 4))

    def test_total_min_tightens_slice_minima(self):
        f = FlexOffer(0, 0, [(0, 5), (0, 5)], 8, 10)
        bounds = f.effective_slice_bounds()
        assert bounds == (EnergySlice(3, 5), EnergySlice(3, 5))


class TestTransformations:
    def test_shift(self, fig1):
        shifted = fig1.shift(2)
        assert (shifted.tes, shifted.tls) == (3, 8)
        assert shifted.slices == fig1.slices

    def test_without_time_flexibility(self, fig1):
        pinned = fig1.without_time_flexibility(4)
        assert pinned.time_flexibility == 0
        assert pinned.tes == 4

    def test_without_time_flexibility_rejects_outside_interval(self, fig1):
        with pytest.raises(InvalidFlexOfferError):
            fig1.without_time_flexibility(10)

    def test_without_energy_flexibility(self, fig1):
        pinned = fig1.without_energy_flexibility()
        assert pinned.energy_flexibility == 0
        assert pinned.time_flexibility == fig1.time_flexibility

    def test_without_energy_flexibility_validates_profile(self, fig1):
        with pytest.raises(InvalidFlexOfferError):
            fig1.without_energy_flexibility([99, 0, 0, 0])
        with pytest.raises(InvalidFlexOfferError):
            fig1.without_energy_flexibility([1, 2])

    def test_with_name(self, fig1):
        assert fig1.with_name("renamed").name == "renamed"


class TestConvenience:
    def test_len_and_iteration(self, fig1):
        assert len(fig1) == 4
        assert list(fig1)[0] == EnergySlice(1, 3)

    def test_time_horizon(self, fig1):
        horizon = fig1.time_horizon()
        assert horizon.start == 1
        assert horizon.stop == 10  # latest start 6 + 4 slices

    def test_slice_at(self, fig1):
        assert fig1.slice_at(2) == EnergySlice(0, 5)

    def test_str_contains_bounds(self, fig1):
        text = str(fig1)
        assert "cmin=3" in text and "cmax=15" in text
