"""Unit tests for repro.core.enumeration."""

import pytest

from repro.core import (
    FlexOffer,
    count_assignments,
    count_assignments_constrained,
    count_profiles_constrained,
    enumerate_assignments,
    enumerate_profiles,
    enumerate_start_times,
)
from repro.core.enumeration import count_assignments_fast


class TestCounting:
    def test_example6_figure3(self, fig3_f2):
        assert count_assignments(fig3_f2) == 9

    def test_example5_figure2(self, fig2_f1):
        assert count_assignments(fig2_f1) == 4

    def test_example14_figure7(self, fig7_f6):
        assert count_assignments(fig7_f6) == 240

    def test_example14_time_inflexible_variant(self, fig7_f6):
        pinned = fig7_f6.without_time_flexibility()
        assert count_assignments(pinned) == 80

    def test_example14_energy_inflexible_variant(self, fig7_f6):
        pinned = fig7_f6.without_energy_flexibility()
        assert count_assignments(pinned) == 3

    def test_count_ignores_total_constraints_by_definition(self):
        f = FlexOffer(0, 0, [(0, 3), (0, 3)], 0, 1)
        assert count_assignments(f) == 16
        assert count_assignments_constrained(f) == 3  # totals 0, 1 via (0,0),(0,1),(1,0)

    def test_constrained_count_matches_enumeration(self, fig1):
        explicit = sum(1 for _ in enumerate_assignments(fig1))
        assert count_assignments_constrained(fig1) == explicit

    def test_count_profiles_constrained(self, fig2_f1):
        assert count_profiles_constrained(fig2_f1) == 2

    def test_fast_count_matches_formula(self, fig1, fig3_f2, fig7_f6):
        for f in (fig1, fig3_f2, fig7_f6):
            assert count_assignments_fast(f) == count_assignments(f)


class TestEnumeration:
    def test_start_times(self, fig1):
        assert list(enumerate_start_times(fig1)) == [1, 2, 3, 4, 5, 6]

    def test_profiles_respect_slice_ranges(self, fig3_f2):
        profiles = list(enumerate_profiles(fig3_f2))
        assert profiles == [(0,), (1,), (2,)]

    def test_profiles_can_ignore_total_constraints(self):
        f = FlexOffer(0, 0, [(0, 2)], 0, 1)
        assert len(list(enumerate_profiles(f, respect_total_constraints=False))) == 3
        assert len(list(enumerate_profiles(f, respect_total_constraints=True))) == 2

    def test_enumerated_assignments_are_valid_and_unique(self, fig2_f1):
        assignments = list(enumerate_assignments(fig2_f1))
        assert len(assignments) == 4
        signatures = {(a.start_time, a.values) for a in assignments}
        assert len(signatures) == 4

    def test_limit_caps_enumeration(self, fig1):
        assert len(list(enumerate_assignments(fig1, limit=10))) == 10

    def test_enumeration_matches_definition8_when_unconstrained(self, fig3_f2):
        unconstrained = list(
            enumerate_assignments(fig3_f2, respect_total_constraints=False)
        )
        assert len(unconstrained) == count_assignments(fig3_f2)
