"""Unit tests for repro.core.area (Definitions 9-10 geometry)."""

import pytest

from repro.core import (
    Assignment,
    FlexOffer,
    TimeSeries,
    assignment_area,
    assignment_area_size,
    enumerate_assignments,
    flexoffer_area,
    flexoffer_area_size,
    flexoffer_column_extents,
    series_area,
    union_area_size,
)


class TestSeriesArea:
    def test_example7_figure4(self):
        area = series_area(TimeSeries(1, (2, 1, 3)))
        assert area == {(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)}

    def test_zero_values_cover_nothing(self):
        assert series_area(TimeSeries(0, (0, 0))) == set()

    def test_negative_values_cover_cells_below_axis(self):
        assert series_area(TimeSeries(2, (-2,))) == {(2, -1), (2, -2)}

    def test_assignment_area_and_size(self, fig1):
        a = Assignment(fig1, 2, (2, 3, 1, 2))
        assert len(assignment_area(a)) == 8
        assert assignment_area_size(a) == 8


class TestFlexofferArea:
    def test_figure5_union_area(self, fig5_f4):
        assert flexoffer_area_size(fig5_f4) == 10

    def test_figure6_union_area(self, fig6_f5):
        assert flexoffer_area_size(fig6_f5) == 11

    def test_figure7_union_area(self, fig7_f6):
        assert flexoffer_area_size(fig7_f6) == 24

    @pytest.mark.parametrize(
        "fixture_name", ["fig2_f1", "fig3_f2", "fig5_f4", "fig6_f5", "fig7_f6"]
    )
    def test_fast_union_matches_explicit_enumeration(self, fixture_name, request):
        flex_offer = request.getfixturevalue(fixture_name)
        explicit = union_area_size(
            [a.series for a in enumerate_assignments(flex_offer)]
        )
        assert flexoffer_area_size(flex_offer) == explicit

    def test_total_constraints_shrink_the_area(self):
        unconstrained = FlexOffer(0, 0, [(0, 5), (0, 5)])
        constrained = FlexOffer(0, 0, [(0, 5), (0, 5)], 0, 4)
        assert flexoffer_area_size(constrained) < flexoffer_area_size(unconstrained)
        explicit = union_area_size(
            [a.series for a in enumerate_assignments(constrained)]
        )
        assert flexoffer_area_size(constrained) == explicit

    def test_flexoffer_area_cell_set_matches_size(self, fig6_f5):
        cells = flexoffer_area(fig6_f5)
        assert len(cells) == flexoffer_area_size(fig6_f5)

    def test_column_extents_cover_whole_horizon(self, fig5_f4):
        extents = flexoffer_column_extents(fig5_f4)
        assert set(extents) == set(range(0, 5))
        assert all(low == 0 and high == 2 for low, high in extents.values())

    def test_column_extents_mixed_signs(self, fig7_f6):
        extents = flexoffer_column_extents(fig7_f6)
        # Column 1 can hold slice 1 (up to +2) and slice 2 (down to -4).
        assert extents[1] == (-4, 2)
