"""Unit tests for repro.core.timeseries."""

import math

import pytest

from repro.core import InvalidTimeSeriesError, TimeSeries


class TestConstruction:
    def test_values_are_normalised_to_tuple(self):
        series = TimeSeries(0, [1, 2, 3])
        assert series.values == (1, 2, 3)

    def test_negative_start_rejected(self):
        with pytest.raises(InvalidTimeSeriesError):
            TimeSeries(-1, (1,))

    def test_non_integer_start_rejected(self):
        with pytest.raises(InvalidTimeSeriesError):
            TimeSeries(1.5, (1,))

    def test_non_numeric_values_rejected(self):
        with pytest.raises(InvalidTimeSeriesError):
            TimeSeries(0, (1, "x"))

    def test_empty_series_allowed(self):
        series = TimeSeries(3, ())
        assert len(series) == 0
        assert series.end == 2  # start - 1 convention

    def test_zeros_constructor(self):
        assert TimeSeries.zeros(2, 3).values == (0, 0, 0)

    def test_zeros_negative_duration_rejected(self):
        with pytest.raises(InvalidTimeSeriesError):
            TimeSeries.zeros(0, -1)


class TestIndexing:
    def test_absolute_time_indexing(self):
        series = TimeSeries(2, (2, 3, 1, 2))
        assert series[2] == 2
        assert series[5] == 2

    def test_outside_span_returns_zero(self):
        series = TimeSeries(2, (2, 3))
        assert series[0] == 0
        assert series[10] == 0

    def test_non_integer_index_rejected(self):
        with pytest.raises(TypeError):
            TimeSeries(0, (1,))["a"]

    def test_items_and_to_dict(self):
        series = TimeSeries(4, (7, 8))
        assert list(series.items()) == [(4, 7), (5, 8)]
        assert series.to_dict() == {4: 7, 5: 8}

    def test_times_range(self):
        assert list(TimeSeries(3, (1, 1)).times()) == [3, 4]


class TestAggregates:
    def test_total(self):
        assert TimeSeries(0, (1, 2, 3)).total() == 6

    def test_min_max(self):
        series = TimeSeries(0, (-2, 5, 1))
        assert series.minimum() == -2
        assert series.maximum() == 5

    def test_min_max_of_empty_series(self):
        assert TimeSeries(0, ()).minimum() == 0
        assert TimeSeries(0, ()).maximum() == 0

    def test_is_zero(self):
        assert TimeSeries(0, (0, 0)).is_zero()
        assert not TimeSeries(0, (0, 1)).is_zero()


class TestArithmetic:
    def test_subtraction_aligns_and_zero_fills(self):
        # Example 5 of the paper: max assignment at t=1, min assignment at t=0.
        maximum = TimeSeries(1, (1,))
        minimum = TimeSeries(0, (0,))
        assert (maximum - minimum).to_dict() == {0: 0, 1: 1}

    def test_addition_over_overlapping_spans(self):
        a = TimeSeries(0, (1, 1))
        b = TimeSeries(1, (2, 2))
        assert (a + b).to_dict() == {0: 1, 1: 3, 2: 2}

    def test_sum_of_many(self):
        total = TimeSeries.sum_of([TimeSeries(0, (1,)), TimeSeries(2, (4,))])
        assert total.to_dict() == {0: 1, 1: 0, 2: 4}

    def test_sum_of_empty_collection(self):
        assert TimeSeries.sum_of([]).values == ()

    def test_negation_and_scale(self):
        series = TimeSeries(0, (1, -2))
        assert (-series).values == (-1, 2)
        assert series.scale(3).values == (3, -6)

    def test_shift(self):
        assert TimeSeries(2, (5,)).shift(3).start == 5

    def test_shift_below_zero_rejected(self):
        with pytest.raises(InvalidTimeSeriesError):
            TimeSeries(1, (5,)).shift(-2)

    def test_trim_removes_leading_and_trailing_zeros(self):
        series = TimeSeries(0, (0, 0, 3, 4, 0))
        trimmed = series.trim()
        assert trimmed.start == 2
        assert trimmed.values == (3, 4)

    def test_trim_all_zero_series(self):
        assert TimeSeries(5, (0, 0)).trim().values == ()


class TestNorms:
    def test_manhattan_and_euclidean(self):
        series = TimeSeries(0, (3, -4))
        assert series.manhattan_norm() == 7
        assert series.euclidean_norm() == 5

    def test_generic_norm_matches_specialised(self):
        series = TimeSeries(0, (1, -2, 2))
        assert series.norm(1) == series.manhattan_norm()
        assert series.norm(2) == pytest.approx(series.euclidean_norm())

    def test_infinity_norm(self):
        assert TimeSeries(0, (1, -7, 3)).norm(math.inf) == 7

    def test_invalid_norm_order(self):
        with pytest.raises(ValueError):
            TimeSeries(0, (1,)).norm(0)


class TestFromMapping:
    def test_gaps_are_zero_filled(self):
        series = TimeSeries.from_mapping({2: 5, 5: 1})
        assert series.to_dict() == {2: 5, 3: 0, 4: 0, 5: 1}

    def test_empty_mapping(self):
        assert TimeSeries.from_mapping({}).values == ()
