"""Unit tests for repro.core.assignment."""

import pytest

from repro.core import (
    Assignment,
    FlexOffer,
    InvalidAssignmentError,
    assignment_violations,
    validate_assignment,
)


class TestValidation:
    def test_paper_assignment_fa1_is_valid(self, fig1):
        # Section 2: {fa1} from t=2 to 5 = <2, 3, 1, 2> is a valid assignment.
        assert assignment_violations(fig1, 2, (2, 3, 1, 2)) == []

    def test_start_time_outside_interval(self, fig1):
        violations = assignment_violations(fig1, 0, (2, 3, 1, 2))
        assert any("start time" in v for v in violations)

    def test_slice_value_outside_range(self, fig1):
        violations = assignment_violations(fig1, 2, (4, 3, 1, 2))
        assert any("slice 0" in v for v in violations)

    def test_wrong_number_of_values(self, fig1):
        violations = assignment_violations(fig1, 2, (2, 3))
        assert any("slice values" in v for v in violations)

    def test_total_constraint_violation(self):
        f = FlexOffer(0, 0, [(0, 5), (0, 5)], 3, 6)
        violations = assignment_violations(f, 0, (0, 0))
        assert any("total energy" in v for v in violations)

    def test_non_integer_start_reported(self, fig1):
        violations = assignment_violations(fig1, 1.5, (2, 3, 1, 2))
        assert violations and "start time" in violations[0]

    def test_validate_assignment_raises(self, fig1):
        with pytest.raises(InvalidAssignmentError):
            validate_assignment(fig1, 0, (2, 3, 1, 2))
        validate_assignment(fig1, 2, (2, 3, 1, 2))  # must not raise


class TestAssignment:
    def test_series_view(self, fig1):
        a = Assignment(fig1, 2, (2, 3, 1, 2))
        assert a.series.to_dict() == {2: 2, 3: 3, 4: 1, 5: 2}
        assert a.total_energy == 8
        assert a.end_time == 5
        assert a.duration == 4

    def test_energy_at(self, fig1):
        a = Assignment(fig1, 2, (2, 3, 1, 2))
        assert a.energy_at(3) == 3
        assert a.energy_at(99) == 0

    def test_invalid_assignment_rejected_on_construction(self, fig1):
        with pytest.raises(InvalidAssignmentError):
            Assignment(fig1, 9, (2, 3, 1, 2))

    def test_shifted(self, fig1):
        a = Assignment(fig1, 2, (2, 3, 1, 2))
        assert a.shifted(1).start_time == 3
        with pytest.raises(InvalidAssignmentError):
            a.shifted(10)

    def test_with_values(self, fig1):
        a = Assignment(fig1, 2, (2, 3, 1, 2))
        b = a.with_values((1, 2, 0, 0))
        assert b.total_energy == 3
        with pytest.raises(InvalidAssignmentError):
            a.with_values((0, 0, 0, 0))  # below cmin = 3


class TestCanonicalConstructors:
    def test_earliest_minimum_without_total_constraint(self, fig1):
        a = Assignment.earliest_minimum(fig1)
        assert a.start_time == fig1.earliest_start
        assert a.values == (1, 2, 0, 0)

    def test_earliest_minimum_tops_up_to_cmin(self):
        f = FlexOffer(0, 2, [(0, 4), (0, 4)], 5, 8)
        a = Assignment.earliest_minimum(f)
        assert a.total_energy == 5
        assert a.start_time == 0

    def test_latest_maximum_trims_down_to_cmax(self):
        f = FlexOffer(0, 2, [(0, 4), (0, 4)], 0, 5)
        a = Assignment.latest_maximum(f)
        assert a.total_energy == 5
        assert a.start_time == 2

    def test_latest_maximum_without_total_constraint(self, fig1):
        a = Assignment.latest_maximum(fig1)
        assert a.values == (3, 4, 5, 3)
        assert a.start_time == 6

    def test_mixed_flexoffer_canonicals_are_valid(self, fig7_f6):
        Assignment.earliest_minimum(fig7_f6)
        Assignment.latest_maximum(fig7_f6)
