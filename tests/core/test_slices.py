"""Unit tests for repro.core.slices."""

import pytest

from repro.core import EnergySlice, InvalidSliceError, parse_slices


class TestEnergySlice:
    def test_width_and_count(self):
        s = EnergySlice(1, 3)
        assert s.width == 2
        assert s.count == 3

    def test_inflexible_slice(self):
        s = EnergySlice(5, 5)
        assert s.width == 0
        assert s.count == 1
        assert not s.is_flexible

    def test_invalid_range_rejected(self):
        with pytest.raises(InvalidSliceError):
            EnergySlice(3, 1)

    def test_non_integer_bounds_rejected(self):
        with pytest.raises(InvalidSliceError):
            EnergySlice(1.5, 2)
        with pytest.raises(InvalidSliceError):
            EnergySlice(True, 2)

    def test_membership(self):
        s = EnergySlice(-2, 4)
        assert -2 in s
        assert 4 in s
        assert 5 not in s
        assert "x" not in s

    def test_iteration_yields_all_values(self):
        assert list(EnergySlice(-1, 2)) == [-1, 0, 1, 2]

    def test_sign_classification(self):
        assert EnergySlice(0, 3).is_consumption
        assert EnergySlice(-3, 0).is_production
        assert EnergySlice(-1, 1).is_mixed
        assert not EnergySlice(-1, 1).is_consumption

    def test_midpoint(self):
        assert EnergySlice(1, 4).midpoint == 2.5

    def test_clamp(self):
        s = EnergySlice(2, 5)
        assert s.clamp(0) == 2
        assert s.clamp(10) == 5
        assert s.clamp(3.6) == 4

    def test_minkowski_addition(self):
        assert (EnergySlice(1, 3) + EnergySlice(-2, 2)) == EnergySlice(-1, 5)

    def test_scale(self):
        assert EnergySlice(1, 3).scale(2) == EnergySlice(2, 6)

    def test_scale_rejects_non_positive_factor(self):
        with pytest.raises(InvalidSliceError):
            EnergySlice(1, 3).scale(0)

    def test_intersection(self):
        assert EnergySlice(0, 5).intersect(EnergySlice(3, 8)) == EnergySlice(3, 5)
        assert EnergySlice(0, 2).intersect(EnergySlice(3, 8)) is None

    def test_as_tuple(self):
        assert EnergySlice(1, 2).as_tuple() == (1, 2)

    def test_hashable_and_ordered(self):
        assert len({EnergySlice(1, 2), EnergySlice(1, 2)}) == 1
        assert EnergySlice(0, 1) < EnergySlice(1, 1)


class TestParseSlices:
    def test_pairs_and_ints_and_instances(self):
        slices = parse_slices([(1, 3), 5, EnergySlice(-1, 0)])
        assert slices == (EnergySlice(1, 3), EnergySlice(5, 5), EnergySlice(-1, 0))

    def test_lists_accepted(self):
        assert parse_slices([[0, 2]]) == (EnergySlice(0, 2),)

    def test_bad_element_rejected(self):
        with pytest.raises(InvalidSliceError):
            parse_slices([(1, 2, 3)])
        with pytest.raises(InvalidSliceError):
            parse_slices(["oops"])
        with pytest.raises(InvalidSliceError):
            parse_slices([True])

    def test_empty_input_gives_empty_tuple(self):
        assert parse_slices([]) == ()
