"""Tests for market actors, settlement and flexibility trading."""

import pytest

from repro.aggregation import aggregate_start_aligned
from repro.core import FlexOffer, MarketError, TimeSeries
from repro.market import (
    Aggregator,
    BalanceResponsibleParty,
    Bid,
    FlexibilityPricer,
    ImbalanceSettlement,
    Prosumer,
    TradingSession,
)
from repro.scheduling import EarliestStartScheduler


@pytest.fixture
def household_offers():
    return [
        FlexOffer(0, 4, [(0, 3), (0, 3)], 2, 6, name="ev"),
        FlexOffer(1, 5, [(1, 2), (1, 2)], name="fridge"),
        FlexOffer(2, 6, [(2, 3), (1, 1)], name="dishwasher"),
    ]


class TestProsumer:
    def test_submit_names_anonymous_flexoffers(self):
        prosumer = Prosumer("house-1")
        named = prosumer.submit(FlexOffer(0, 1, [(0, 1)]))
        assert named.name == "house-1-fo0"
        assert prosumer.offered_flexibility_count == 1

    def test_submit_keeps_existing_name(self):
        prosumer = Prosumer("house-1")
        named = prosumer.submit(FlexOffer(0, 1, [(0, 1)], name="my-ev"))
        assert named.name == "my-ev"


class TestAggregatorActor:
    def test_collect_and_aggregate(self, household_offers):
        aggregator = Aggregator("agg")
        assert aggregator.collect(household_offers) == 3
        lots = aggregator.aggregate()
        assert lots
        assert sum(lot.size for lot in lots) == 3

    def test_aggregate_without_collection_fails(self):
        with pytest.raises(MarketError):
            Aggregator("empty").aggregate()

    def test_portfolio_flexibility_uses_measures(self, household_offers):
        aggregator = Aggregator("agg")
        aggregator.collect(household_offers)
        values = aggregator.portfolio_flexibility(["time", "product"])
        assert values["time"] == sum(f.time_flexibility for f in household_offers)


class TestBalanceResponsibleParty:
    def test_scheduling_reduces_imbalance(self, household_offers):
        supply = TimeSeries(0, (4, 4, 3, 3, 2, 2, 1, 1))
        brp = BalanceResponsibleParty("brp", supply)
        flexible = brp.schedule_flexibility(household_offers)
        baseline = EarliestStartScheduler().schedule(household_offers)
        assert brp.imbalance_energy(flexible) <= brp.imbalance_energy(baseline)


class TestSettlement:
    def test_costs_scale_with_deviation(self):
        settlement = ImbalanceSettlement((10.0, 20.0), penalty_factor=2.0)
        load = TimeSeries(0, (3, 1))
        position = TimeSeries(0, (1, 1))
        result = settlement.settle_load(load, position)
        assert result.imbalance_energy == 2
        assert result.imbalance_cost == 2 * 10.0 * 2.0
        assert result.average_price_paid == pytest.approx(20.0)

    def test_balanced_schedule_costs_nothing(self):
        settlement = ImbalanceSettlement((10.0,))
        load = TimeSeries(0, (1, 1))
        result = settlement.settle_load(load, load)
        assert result.imbalance_cost == 0
        assert result.average_price_paid == 0

    def test_price_clamping_outside_horizon(self):
        settlement = ImbalanceSettlement((10.0, 30.0), price_start=5)
        assert settlement.price_at(0) == 10.0
        assert settlement.price_at(100) == 30.0

    def test_validation(self):
        with pytest.raises(MarketError):
            ImbalanceSettlement(())
        with pytest.raises(MarketError):
            ImbalanceSettlement((1.0,), penalty_factor=-1)

    def test_savings_of_flexible_schedule(self, household_offers):
        supply = TimeSeries(0, (4, 4, 3, 3, 2, 2, 1, 1))
        settlement = ImbalanceSettlement(tuple([25.0] * 8))
        baseline = EarliestStartScheduler().schedule(household_offers)
        brp = BalanceResponsibleParty("brp", supply)
        flexible = brp.schedule_flexibility(household_offers)
        assert settlement.savings(baseline, flexible, supply) >= 0


class TestTrading:
    def test_pricer_rewards_flexibility(self):
        pricer = FlexibilityPricer(measure="product", energy_price=1.0, premium_per_unit=1.0)
        flexible = FlexOffer(0, 4, [(0, 4)], name="flexible")
        rigid = FlexOffer(0, 0, [(2, 2)], name="rigid")
        assert pricer.price(flexible).flexibility_premium > pricer.price(rigid).flexibility_premium

    def test_pricer_rejects_unsupported_measure_flexoffer_combo(self, fig7_f6):
        pricer = FlexibilityPricer(measure="absolute_area")
        with pytest.raises(MarketError):
            pricer.price(fig7_f6)

    def test_price_all_error_order_matches_sequential_pricing(self, fig7_f6):
        """An earlier supported lot whose evaluation raises wins over a later
        unsupported lot — the order sequential ``price()`` calls raised in."""
        from repro.core import MeasureError

        pricer = FlexibilityPricer(measure="relative_area")
        undefined = FlexOffer(0, 0, [(0, 0)], name="zero-energy")  # supported, raises
        with pytest.raises(MeasureError):
            pricer.price_all([undefined, fig7_f6])
        # With the unsupported lot first, its MarketError surfaces instead.
        with pytest.raises(MarketError):
            pricer.price_all([fig7_f6, undefined])

    def test_price_all_with_raising_supports_keeps_sequential_order(self):
        """A custom measure whose ``supports`` raises on a later lot must
        not preempt an earlier unsupported lot's MarketError (the order
        sequential per-lot ``price()`` calls produced)."""
        from repro.measures import get_measure

        class Prickly(type(get_measure("vector"))):
            def supports(self, flex_offer):
                if flex_offer.name == "last":
                    raise RuntimeError("supports exploded")
                return flex_offer.name != "unsupported"

        book = [
            FlexOffer(0, 2, [(1, 3)], name="fine"),
            FlexOffer(0, 1, [(1, 2)], name="unsupported"),
            FlexOffer(0, 0, [(1, 1)], name="last"),
        ]
        pricer = FlexibilityPricer(measure=Prickly())
        with pytest.raises(MarketError, match="unsupported"):
            pricer.price_all(book)

    def test_bid_total_price(self):
        bid = Bid(FlexOffer(0, 0, [(1, 1)]), energy_price=10.0, flexibility_premium=2.5)
        assert bid.total_price == 12.5

    def test_session_clears_within_budget(self, household_offers):
        lots = [aggregate_start_aligned([f], name=f"lot-{f.name}") for f in household_offers]
        session = TradingSession(FlexibilityPricer(energy_price=1.0), budget=30.0)
        accepted, rejected = session.clear(lots)
        assert sum(bid.total_price for bid in accepted) <= 30.0
        assert len(accepted) + len(rejected) == len(lots)

    def test_unlimited_budget_accepts_everything(self, household_offers):
        session = TradingSession()
        accepted, rejected = session.clear(household_offers)
        assert len(accepted) == len(household_offers)
        assert rejected == []

    def test_most_flexible_lots_bought_first(self, household_offers):
        session = TradingSession(
            FlexibilityPricer(measure="product", energy_price=1.0, premium_per_unit=5.0),
            budget=1e9,
        )
        accepted, _ = session.clear(household_offers)
        ratios = [
            bid.flexibility_premium / bid.total_price if bid.total_price else 0
            for bid in accepted
        ]
        assert ratios == sorted(ratios, reverse=True)
