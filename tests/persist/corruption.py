"""Byte-level crash/corruption helpers for the durability suite.

These manufacture the on-disk states a real crash leaves behind — torn
WAL tails cut at arbitrary byte offsets, bit-flipped record bodies,
half-written snapshot files — so the recovery tests exercise exactly the
inputs the persistence layer promises to survive.
"""

from __future__ import annotations

import struct
from pathlib import Path

_HEADER = struct.Struct("<II")


def wal_segments(directory) -> list[Path]:
    """The ``wal-*.log`` segment files of a persisted directory, oldest first."""
    return sorted(Path(directory).glob("wal-*.log"))


def snapshot_files(directory) -> list[Path]:
    """The ``snapshot-*.json`` files of a persisted directory, oldest first."""
    return sorted(Path(directory).glob("snapshot-*.json"))


def tear_tail(path, drop_bytes: int) -> int:
    """Truncate ``drop_bytes`` off the end of ``path`` — a torn final write.

    Returns the resulting file size.  ``drop_bytes`` larger than the file
    clamps to empty, matching a crash before anything hit the disk.
    """
    data = Path(path).read_bytes()
    kept = data[: max(0, len(data) - drop_bytes)]
    Path(path).write_bytes(kept)
    return len(kept)


def flip_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` — bitrot / partial-sector corruption."""
    data = bytearray(Path(path).read_bytes())
    data[offset] ^= 0xFF
    Path(path).write_bytes(bytes(data))


def frame_offsets(path) -> list[tuple[int, int]]:
    """``(start, end)`` byte offsets of every valid frame in a segment."""
    data = Path(path).read_bytes()
    offsets = []
    cursor = 0
    while cursor + _HEADER.size <= len(data):
        length, _ = _HEADER.unpack(data[cursor : cursor + _HEADER.size])
        end = cursor + _HEADER.size + length
        if end > len(data):
            break
        offsets.append((cursor, end))
        cursor = end
    return offsets
