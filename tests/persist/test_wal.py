"""WAL framing, torn-tail tolerance, rotation and pruning."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.persist import PersistError, WriteAheadLog, read_wal_records

from corruption import flip_byte, frame_offsets, tear_tail, wal_segments

_HEADER = struct.Struct("<II")


def write_log(directory, count: int, fsync: bool = False) -> WriteAheadLog:
    wal = WriteAheadLog(directory, fsync=fsync)
    for index in range(count):
        wal.append({"event": {"kind": "tick", "time": index}})
    wal.commit()
    return wal


class TestFraming:
    def test_append_commit_read_roundtrip(self, persist_dir):
        wal = write_log(persist_dir, 5)
        records = wal.records()
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert records[2].payload["event"] == {"kind": "tick", "time": 2}
        wal.close()

    def test_frames_carry_length_and_crc(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.close()
        (path,) = wal_segments(persist_dir)
        data = path.read_bytes()
        offset = 0
        for _ in range(3):
            length, crc = _HEADER.unpack(data[offset : offset + _HEADER.size])
            body = data[offset + _HEADER.size : offset + _HEADER.size + length]
            assert zlib.crc32(body) == crc
            offset += _HEADER.size + length
        assert offset == len(data)

    def test_append_on_closed_log_raises(self, persist_dir):
        wal = write_log(persist_dir, 1)
        wal.close()
        with pytest.raises(PersistError):
            wal.append({"event": {}})
        wal.close()  # idempotent

    def test_non_finite_floats_are_rejected_at_append(self, persist_dir):
        wal = WriteAheadLog(persist_dir, fsync=False)
        with pytest.raises(ValueError):
            wal.append({"event": {"value": float("nan")}})
        wal.close()

    def test_missing_segment_reads_empty(self, tmp_path):
        assert read_wal_records(tmp_path / "wal-000000000001.log") == []


class TestTornTail:
    def test_every_torn_byte_offset_keeps_the_committed_prefix(self, persist_dir):
        """Cut the final frame at *every* byte boundary: reads never raise
        and always return exactly the records before the torn one."""
        wal = write_log(persist_dir, 4)
        wal.close()
        (path,) = wal_segments(persist_dir)
        pristine = path.read_bytes()
        frames = frame_offsets(path)
        last_start, last_end = frames[-1]
        for cut in range(last_start, last_end):
            path.write_bytes(pristine[:cut])
            records = read_wal_records(path)
            assert [r.seq for r in records] == [1, 2, 3]
        path.write_bytes(pristine)
        assert [r.seq for r in read_wal_records(path)] == [1, 2, 3, 4]

    def test_repair_truncates_the_torn_suffix(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.close()
        (path,) = wal_segments(persist_dir)
        tear_tail(path, drop_bytes=2)
        read_wal_records(path, repair=True)
        frames = frame_offsets(path)
        assert len(frames) == 2
        assert path.stat().st_size == frames[-1][1]

    def test_crc_mismatch_stops_the_read(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.close()
        (path,) = wal_segments(persist_dir)
        start, end = frame_offsets(path)[1]
        flip_byte(path, start + _HEADER.size)  # corrupt record 2's body
        assert [r.seq for r in read_wal_records(path)] == [1]

    def test_reopen_repairs_and_resumes_the_sequence(self, persist_dir):
        wal = write_log(persist_dir, 5)
        wal.close()
        (path,) = wal_segments(persist_dir)
        tear_tail(path, drop_bytes=3)  # record 5 is torn

        reopened = WriteAheadLog(persist_dir, fsync=False)
        assert reopened.last_seq == 4
        seq = reopened.append({"event": {"kind": "tick", "time": 99}})
        reopened.commit()
        assert seq == 5
        records = reopened.records()
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert records[-1].payload["event"]["time"] == 99
        reopened.close()


class TestRotation:
    def test_rotate_opens_a_new_segment_named_for_the_next_seq(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.rotate()
        wal.append({"event": {"kind": "tick", "time": 3}})
        wal.commit()
        segments = wal.segments()
        assert [start for start, _ in segments] == [1, 4]
        assert [r.seq for r in wal.records()] == [1, 2, 3, 4]
        assert [r.seq for r in wal.records(after_seq=3)] == [4]
        wal.close()

    def test_prune_drops_only_fully_covered_segments(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.rotate()  # wal-1 covers 1..3, new segment starts at 4
        wal.append({"event": {"kind": "tick", "time": 3}})
        wal.commit()
        assert wal.prune(through_seq=2) == []  # record 3 not covered
        removed = wal.prune(through_seq=3)
        assert len(removed) == 1
        assert [start for start, _ in wal.segments()] == [4]
        wal.close()

    def test_prune_never_deletes_the_active_segment(self, persist_dir):
        wal = write_log(persist_dir, 2)
        assert wal.prune(through_seq=10) == []
        assert len(wal.segments()) == 1
        wal.close()

    def test_empty_rotated_segment_still_resumes_numbering(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.rotate()
        wal.close()  # the new segment holds no records
        reopened = WriteAheadLog(persist_dir, fsync=False)
        assert reopened.last_seq == 3
        assert reopened.append({"event": {}}) == 4
        reopened.close()

    def test_stats_counters(self, persist_dir):
        wal = write_log(persist_dir, 3)
        wal.rotate()
        stats = wal.stats()
        assert stats == {
            "last_seq": 3,
            "segments": 2,
            "appended": 3,
            "commits": 1,
            "rewinds": 0,
            "dirty": False,
        }
        wal.close()
