"""The PR 7 acceptance bar: crash → recover ≡ fresh full replay.

For any interleaving of events, any checkpoint cadence and any crash
point — including torn WAL tails cut at arbitrary byte offsets — a
session rebuilt from its persisted directory is *bit-identical* (same
``export_state`` document) to a fresh session that replayed the full
committed event prefix, on every compute backend.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import NUMPY_AVAILABLE
from repro.persist import PersistError, SessionPersister, load_config, save_config
from repro.service import FlexSession, ServiceError, SessionConfig, StreamRequest
from repro.stream import StreamingEngine, Tick, population_events
from repro.workloads import neighbourhood_scenario

from corruption import frame_offsets, wal_segments
from strategies import interleavings

requires_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)

BACKENDS = [
    "reference",
    pytest.param("numpy", marks=requires_numpy),
    pytest.param("sharded", marks=requires_numpy),
]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def fingerprint(session: FlexSession) -> str:
    """The bit-identity probe: the full canonical engine state."""
    return json.dumps(session.engine.export_state(), sort_keys=True)


def durable_config(directory, backend: str = "reference", **overrides) -> SessionConfig:
    defaults = dict(
        backend=backend,
        persist_dir=directory,
        persist_fsync=False,  # the tests crash the process model, not the kernel
        window_capacity=8,
        # relative_area is undefined for zero-energy offers the interleaving
        # strategy may generate — configure only totally-defined measures.
        measures=("time", "energy"),
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def crash(session: FlexSession) -> None:
    """Abandon the session the way a crash would: no final checkpoint.

    The WAL already holds every committed record; dropping the persister
    before ``close()`` frees backend resources without the orderly
    checkpoint-then-close a graceful shutdown performs.
    """
    session._persister.wal.close()
    session._persister = None
    session.close()


def spaced_ticks(events: list) -> list:
    """Weave a Tick after every second event, driving window sampling."""
    woven = []
    for index, event in enumerate(events):
        woven.append(event)
        if index % 2 == 1:
            woven.append(Tick(index))
    return woven


def example_events() -> list:
    """A small deterministic event stream for the byte-offset tests."""
    scenario = neighbourhood_scenario(households=3, seed=11, horizon=16)
    return list(population_events(scenario.flex_offers))


# --------------------------------------------------------------------- #
# The crash-point property
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    data=interleavings(min_offers=1, max_offers=8),
    chunk_size=st.integers(min_value=1, max_value=4),
    crash_fraction=st.floats(min_value=0.0, max_value=1.0),
    checkpoint_events=st.integers(min_value=1, max_value=6),
)
def test_recovery_is_bit_identical_to_full_replay_at_any_crash_point(
    tmp_path_factory, backend, data, chunk_size, crash_fraction, checkpoint_events
):
    events, _survivors = data
    events = spaced_ticks(events)
    directory = tmp_path_factory.mktemp("crash")
    config = durable_config(
        str(directory / "s"), backend=backend, checkpoint_events=checkpoint_events
    )

    chunks = [
        events[start : start + chunk_size]
        for start in range(0, len(events), chunk_size)
    ]
    served = max(0, min(len(chunks), int(round(crash_fraction * len(chunks)))))

    # The durable session: serve some requests, then crash.
    session = FlexSession(config)
    for chunk in chunks[:served]:
        session.stream(StreamRequest(events=tuple(chunk)))
    committed = [event for chunk in chunks[:served] for event in chunk]
    crash(session)

    # Recover from disk.
    recovered = FlexSession(config)
    try:
        if committed:
            assert recovered.recovery is not None
            # Every committed event is accounted for: covered by the
            # snapshot watermark or replayed from the WAL tail.
            stats = recovered.recovery
            assert stats.snapshot_seq + stats.replayed == len(committed)
            # The request counter is restored from the last checkpoint —
            # never ahead of what was actually served.
            assert 0 <= recovered.requests_served <= served
        else:
            assert recovered.recovery is None  # nothing durable yet

        # The reference: a fresh, non-durable session replaying everything.
        with FlexSession(
            SessionConfig(
                backend=backend,
                window_capacity=8,
                measures=("time", "energy"),
            )
        ) as fresh:
            if committed:
                fresh.stream(StreamRequest(events=tuple(committed)))
            assert fingerprint(recovered) == fingerprint(fresh)

        # The recovered session is live: it keeps serving and persisting.
        recovered.stream(StreamRequest(events=(Tick(9_999),)))
    finally:
        recovered.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_torn_wal_tail_recovers_the_committed_prefix(tmp_path, backend):
    """Tear the final WAL frame at several byte offsets: recovery silently
    drops the torn record and lands exactly one event earlier."""
    events = example_events()
    directory = tmp_path / "s"
    config = durable_config(str(directory), backend=backend, checkpoint_events=10_000)

    session = FlexSession(config)
    for event in events:
        session.stream(StreamRequest(events=(event,)))
    crash(session)

    segment = wal_segments(directory)[-1]
    pristine = segment.read_bytes()
    frames = frame_offsets(segment)
    # Cut inside the final frame (a torn write) and at its start boundary
    # (a crash before the append hit the disk at all).
    last_start, last_end = frames[-1]
    for cut in (last_start, last_start + 4, (last_start + last_end) // 2, last_end - 1):
        segment.write_bytes(pristine[:cut])
        recovered = FlexSession(config)
        try:
            with FlexSession(
                SessionConfig(
                    backend=backend,
                    window_capacity=8,
                    measures=("time", "energy"),
                )
            ) as fresh:
                fresh.stream(StreamRequest(events=tuple(events[:-1])))
                assert fingerprint(recovered) == fingerprint(fresh)
        finally:
            crash(recovered)
    segment.write_bytes(pristine)


# --------------------------------------------------------------------- #
# SessionPersister mechanics
# --------------------------------------------------------------------- #
def test_checkpoint_rotates_and_prunes(persist_dir):
    events = example_events()
    persister = SessionPersister(persist_dir, fsync=False)
    engine = StreamingEngine()
    for event in events:
        engine.apply(event)
        persister.log_event(event)
    stats = persister.checkpoint(engine, extra={"requests_served": 3})
    assert stats["snapshot_seq"] == len(events)
    assert stats["live"] == len(engine)
    # The old segment is fully covered by the snapshot, hence pruned.
    starts = [int(p.name[4:-4]) for p in wal_segments(persist_dir)]
    assert starts == [len(events) + 1]
    assert not persister.dirty
    persister.close()


def test_maybe_checkpoint_triggers_on_event_count(persist_dir):
    events = example_events()
    persister = SessionPersister(persist_dir, fsync=False, checkpoint_events=3)
    engine = StreamingEngine()
    checkpoints = 0
    for event in events:
        engine.apply(event)
        persister.log_event(event)
        if persister.maybe_checkpoint(engine) is not None:
            checkpoints += 1
    assert checkpoints == len(events) // 3
    persister.close()


def test_maybe_checkpoint_triggers_on_age(persist_dir):
    clock = FakeClock()
    persister = SessionPersister(
        persist_dir,
        fsync=False,
        checkpoint_events=10_000,
        checkpoint_age_s=30.0,
        clock=clock,
    )
    engine = StreamingEngine()
    event = example_events()[0]
    engine.apply(event)
    persister.log_event(event)
    assert persister.maybe_checkpoint(engine) is None
    clock.advance(31.0)
    assert persister.maybe_checkpoint(engine) is not None
    # Age-based checkpoints need *something* pending: advancing the clock
    # again without new events stays quiet.
    clock.advance(31.0)
    assert persister.maybe_checkpoint(engine) is None
    persister.close()


def test_close_folds_the_dirty_tail_into_a_final_checkpoint(persist_dir):
    events = example_events()
    persister = SessionPersister(persist_dir, fsync=False)
    engine = StreamingEngine()
    for event in events:
        engine.apply(event)
        persister.log_event(event)
    persister.close(engine, extra={"requests_served": 7})

    reopened = SessionPersister(persist_dir, fsync=False)
    fresh = StreamingEngine()
    stats, extra = reopened.recover(fresh)
    assert stats.replayed == 0  # everything came from the final snapshot
    assert stats.snapshot_seq == len(events)
    assert extra == {"requests_served": 7}
    assert json.dumps(fresh.export_state(), sort_keys=True) == json.dumps(
        engine.export_state(), sort_keys=True
    )
    reopened.close()


def test_recover_stops_at_a_sequence_gap(persist_dir):
    """A mid-log hole must not be replayed across: events after the gap
    could apply to the wrong state."""
    events = example_events()
    head, tail = events[:3], events[3:]
    persister = SessionPersister(persist_dir, fsync=False)
    for event in head:
        persister.log_event(event)
    persister.commit()
    persister.wal.rotate()  # head lands in segment 1, tail in segment 2
    for event in tail:
        persister.log_event(event)
    persister.close()

    # Remove the first segment: records 1..3 vanish, the tail starts at 4.
    wal_segments(persist_dir)[0].unlink()
    reopened = SessionPersister(persist_dir, fsync=False)
    engine = StreamingEngine()
    stats, _ = reopened.recover(engine)
    assert stats.snapshot_seq == 0 and stats.replayed == 0
    assert len(engine) == 0
    reopened.close()


def test_persister_validation(persist_dir):
    with pytest.raises(PersistError):
        SessionPersister(persist_dir, checkpoint_events=0)
    with pytest.raises(PersistError):
        SessionPersister(persist_dir, checkpoint_age_s=0.0)


def test_closed_persister_refuses_checkpoints(persist_dir):
    persister = SessionPersister(persist_dir, fsync=False)
    persister.close()
    persister.close()  # idempotent
    with pytest.raises(PersistError):
        persister.checkpoint(StreamingEngine())


def test_config_sidecar_roundtrip(persist_dir):
    payload = {"backend": "reference", "seed": 3}
    save_config(persist_dir, payload)
    # A second save never clobbers the original (first-writer-wins).
    save_config(persist_dir, {"backend": "numpy"})
    assert load_config(persist_dir) == payload
    assert load_config(persist_dir / "missing") is None


# --------------------------------------------------------------------- #
# FlexSession integration seams
# --------------------------------------------------------------------- #
def test_checkpoint_requires_a_durable_session():
    with FlexSession(SessionConfig(backend="reference")) as session:
        assert session.recovery is None
        with pytest.raises(ServiceError):
            session.checkpoint()


def test_durable_session_stats_expose_persistence_and_recovery(tmp_path):
    config = durable_config(str(tmp_path / "s"))
    session = FlexSession(config)
    session.stream(StreamRequest(events=(Tick(1),)))
    session.checkpoint()
    crash(session)

    recovered = FlexSession(config)
    try:
        stats = recovered.stats()
        assert stats["persistence"]["snapshot_seq"] == 1
        assert stats["recovery"]["replayed"] == 0
        assert recovered.recovery.snapshot_seq == 1
    finally:
        recovered.close()


def test_graceful_close_then_reopen_replays_nothing(tmp_path):
    config = durable_config(str(tmp_path / "s"))
    events = example_events()
    session = FlexSession(config)
    session.stream(StreamRequest(events=tuple(events)))
    before = fingerprint(session)
    session.close()  # checkpoint-then-close

    recovered = FlexSession(config)
    try:
        assert recovered.recovery.replayed == 0
        assert fingerprint(recovered) == before
    finally:
        recovered.close()
