"""Snapshot atomicity, CRC validation and corrupted-newest fallback."""

from __future__ import annotations

import json

import pytest

from repro.persist import FORMAT_VERSION, SnapshotStore

from corruption import flip_byte, snapshot_files, tear_tail


def store(directory, keep: int = 2) -> SnapshotStore:
    return SnapshotStore(directory, keep=keep, fsync=False)


def test_write_latest_roundtrip(persist_dir):
    snapshots = store(persist_dir)
    state = {"offers": [1, 2, 3], "nested": {"a": 0.5}}
    path = snapshots.write(7, state)
    assert path.name == "snapshot-000000000007.json"
    assert snapshots.latest() == (7, state)


def test_no_temp_file_survives_a_write(persist_dir):
    snapshots = store(persist_dir)
    snapshots.write(1, {"x": 1})
    leftovers = [p.name for p in snapshots.directory.iterdir()]
    assert leftovers == ["snapshot-000000000001.json"]


def test_prune_keeps_the_newest(persist_dir):
    snapshots = store(persist_dir, keep=2)
    for seq in (1, 5, 9):
        snapshots.write(seq, {"seq": seq})
    assert [seq for seq, _ in snapshots.paths()] == [5, 9]
    assert snapshots.latest() == (9, {"seq": 9})


def test_corrupted_newest_falls_back_to_the_previous(persist_dir):
    snapshots = store(persist_dir, keep=2)
    snapshots.write(3, {"seq": 3})
    snapshots.write(8, {"seq": 8})
    newest = snapshot_files(persist_dir)[-1]
    flip_byte(newest, newest.stat().st_size // 2)
    assert snapshots.latest() == (3, {"seq": 3})


def test_truncated_newest_falls_back_to_the_previous(persist_dir):
    snapshots = store(persist_dir, keep=2)
    snapshots.write(3, {"seq": 3})
    snapshots.write(8, {"seq": 8})
    tear_tail(snapshot_files(persist_dir)[-1], drop_bytes=10)
    assert snapshots.latest() == (3, {"seq": 3})


def test_all_snapshots_corrupt_reads_as_none(persist_dir):
    snapshots = store(persist_dir)
    snapshots.write(2, {"seq": 2})
    for path in snapshot_files(persist_dir):
        tear_tail(path, drop_bytes=5)
    assert snapshots.latest() is None


def test_crc_guards_the_state_not_just_the_json(persist_dir):
    """A snapshot that parses as JSON but whose state was altered (a
    partial-sector overwrite) must be skipped by the CRC check."""
    snapshots = store(persist_dir)
    path = snapshots.write(4, {"value": 10})
    document = json.loads(path.read_text())
    document["state"]["value"] = 11  # altered state, stale CRC
    path.write_text(json.dumps(document))
    assert snapshots.latest() is None


def test_future_format_version_is_skipped(persist_dir):
    snapshots = store(persist_dir)
    path = snapshots.write(4, {"value": 10})
    document = json.loads(path.read_text())
    document["format"] = FORMAT_VERSION + 1
    path.write_text(json.dumps(document))
    assert snapshots.latest() is None


def test_mismatched_filename_seq_is_skipped(persist_dir):
    snapshots = store(persist_dir)
    path = snapshots.write(4, {"value": 10})
    path.rename(path.with_name("snapshot-000000000009.json"))
    assert snapshots.latest() is None


def test_keep_must_be_positive(persist_dir):
    with pytest.raises(ValueError):
        SnapshotStore(persist_dir, keep=0)


def test_non_finite_state_is_rejected_at_write(persist_dir):
    snapshots = store(persist_dir)
    with pytest.raises(ValueError):
        snapshots.write(1, {"value": float("inf")})
