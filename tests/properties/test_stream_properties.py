"""Property-based tests of the streaming engine's batch equivalence.

The load-bearing invariant of :mod:`repro.stream`: after an *arbitrary*
legal interleaving of arrivals and expiries, the engine's groups, aggregates
and set-wise measure report equal the batch ``group_by_grid`` →
``aggregate_all`` → ``evaluate_set`` pipeline applied to the surviving
offers in arrival order.  Hypothesis drives random small flex-offers through
random event interleavings (including pathological ones like
arrive–expire–rearrive churn) so the incremental bookkeeping — sparse column
sums, lazy extreme repair, cached measure values, unsupported counts — is
exercised across removal orders no hand-written test would pick.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import (
    GroupingParameters,
    aggregate_all,
    aggregate_start_aligned,
    group_by_grid,
)
from repro.core import FlexOffer
from repro.measures import evaluate_set
from repro.stream import (
    IncrementalAggregate,
    OfferArrived,
    OfferExpired,
    StreamingEngine,
)

MEASURES = ["time", "energy", "product", "vector", "assignments"]


@st.composite
def stream_flexoffers(draw):
    """Small flex-offers, mixed signs allowed, cheap enough to enumerate."""
    earliest = draw(st.integers(min_value=0, max_value=6))
    time_flex = draw(st.integers(min_value=0, max_value=4))
    slice_count = draw(st.integers(min_value=1, max_value=3))
    slices = []
    for _ in range(slice_count):
        low = draw(st.integers(min_value=-2, max_value=2))
        high = draw(st.integers(min_value=low, max_value=low + 3))
        slices.append((low, high))
    return FlexOffer(earliest, earliest + time_flex, slices)


@st.composite
def interleavings(draw, min_offers=1, max_offers=8):
    """A legal arrival/expiry interleaving plus its surviving offers.

    Offers arrive in index order; a random subset expires, each expiry woven
    in at a random position after its arrival.  Returns ``(events,
    survivors)`` with survivors in arrival order — the batch reference.
    """
    offers = draw(
        st.lists(stream_flexoffers(), min_size=min_offers, max_size=max_offers)
    )
    events = []
    survivors = []
    for index, flex_offer in enumerate(offers):
        offer_id = f"f{index}"
        events.append(OfferArrived(offer_id, flex_offer))
        if draw(st.booleans()):
            # Weave the expiry in at a random later position.
            position = draw(st.integers(min_value=len(events), max_value=len(events)))
            events.insert(position, OfferExpired(offer_id))
        else:
            survivors.append(flex_offer)
    # Shuffle expiries backwards while keeping them after their arrivals.
    for position in range(len(events)):
        event = events[position]
        if isinstance(event, OfferExpired):
            arrival = next(
                index
                for index, candidate in enumerate(events)
                if isinstance(candidate, OfferArrived)
                and candidate.offer_id == event.offer_id
            )
            target = draw(st.integers(min_value=arrival + 1, max_value=position))
            events.insert(target, events.pop(position))
    return events, survivors


@st.composite
def grouping_parameters(draw):
    return GroupingParameters(
        earliest_start_tolerance=draw(st.integers(min_value=1, max_value=4)),
        time_flexibility_tolerance=draw(st.integers(min_value=1, max_value=4)),
        max_group_size=draw(st.integers(min_value=0, max_value=3)),
    )


@settings(max_examples=60, deadline=None)
@given(interleavings(), grouping_parameters())
def test_streaming_state_equals_batch_pipeline(interleaving, parameters):
    """Engine after any interleaving ≡ batch pipeline on the survivors."""
    events, survivors = interleaving
    engine = StreamingEngine(parameters=parameters, measures=MEASURES)
    engine.replay(events)

    assert engine.live_offers() == survivors

    snapshot = engine.snapshot()
    batch_groups = group_by_grid(survivors, parameters)
    assert [list(group) for group in snapshot.groups] == batch_groups
    assert list(snapshot.aggregates) == aggregate_all(batch_groups)
    assert snapshot.report == evaluate_set(survivors, MEASURES)


@settings(max_examples=60, deadline=None)
@given(interleavings(min_offers=2, max_offers=6))
def test_rearrival_after_expiry_is_clean(interleaving):
    """Expiring everything and re-adding it reproduces a fresh batch state."""
    events, survivors = interleaving
    engine = StreamingEngine(measures=MEASURES)
    engine.replay(events)
    for offer_id in list(engine.live_ids()):
        engine.apply(OfferExpired(offer_id))
    assert engine.size == 0
    for index, flex_offer in enumerate(survivors):
        engine.apply(OfferArrived(f"again{index}", flex_offer))
    assert engine.report() == evaluate_set(survivors, MEASURES)
    assert [list(g) for g in engine.snapshot().groups] == group_by_grid(
        survivors, engine.parameters
    )


@settings(max_examples=80, deadline=None)
@given(
    st.lists(stream_flexoffers(), min_size=1, max_size=6),
    st.data(),
)
def test_incremental_aggregate_matches_batch_under_random_removals(offers, data):
    """IncrementalAggregate ≡ aggregate_start_aligned at every removal step."""
    aggregate = IncrementalAggregate()
    live = {}
    for index, flex_offer in enumerate(offers):
        offer_id = f"f{index}"
        aggregate.add(offer_id, flex_offer)
        live[offer_id] = flex_offer
    while len(live) > 1:
        victim = data.draw(st.sampled_from(sorted(live)))
        aggregate.remove(victim)
        del live[victim]
        assert aggregate.aggregated() == aggregate_start_aligned(list(live.values()))
