"""Property-based tests of the streaming engine's batch equivalence.

The load-bearing invariant of :mod:`repro.stream`: after an *arbitrary*
legal interleaving of arrivals and expiries, the engine's groups, aggregates
and set-wise measure report equal the batch ``group_by_grid`` →
``aggregate_all`` → ``evaluate_set`` pipeline applied to the surviving
offers in arrival order.  Hypothesis drives random small flex-offers through
random event interleavings (including pathological ones like
arrive–expire–rearrive churn) so the incremental bookkeeping — sparse column
sums, lazy extreme repair, cached measure values, unsupported counts — is
exercised across removal orders no hand-written test would pick.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import grouping_parameters, interleavings, stream_flexoffers

from repro.aggregation import aggregate_all, aggregate_start_aligned, group_by_grid
from repro.measures import evaluate_set
from repro.stream import (
    IncrementalAggregate,
    OfferArrived,
    OfferExpired,
    StreamingEngine,
)

MEASURES = ["time", "energy", "product", "vector", "assignments"]

# Strategies are shared with the core-property and backend-conformance
# suites; see tests/strategies.py.
pytestmark = pytest.mark.slow


@settings(max_examples=60, deadline=None)
@given(interleavings(), grouping_parameters())
def test_streaming_state_equals_batch_pipeline(interleaving, parameters):
    """Engine after any interleaving ≡ batch pipeline on the survivors."""
    events, survivors = interleaving
    engine = StreamingEngine(parameters=parameters, measures=MEASURES)
    engine.replay(events)

    assert engine.live_offers() == survivors

    snapshot = engine.snapshot()
    batch_groups = group_by_grid(survivors, parameters)
    assert [list(group) for group in snapshot.groups] == batch_groups
    assert list(snapshot.aggregates) == aggregate_all(batch_groups)
    assert snapshot.report == evaluate_set(survivors, MEASURES)


@settings(max_examples=60, deadline=None)
@given(interleavings(min_offers=2, max_offers=6))
def test_rearrival_after_expiry_is_clean(interleaving):
    """Expiring everything and re-adding it reproduces a fresh batch state."""
    events, survivors = interleaving
    engine = StreamingEngine(measures=MEASURES)
    engine.replay(events)
    for offer_id in list(engine.live_ids()):
        engine.apply(OfferExpired(offer_id))
    assert engine.size == 0
    for index, flex_offer in enumerate(survivors):
        engine.apply(OfferArrived(f"again{index}", flex_offer))
    assert engine.report() == evaluate_set(survivors, MEASURES)
    assert [list(g) for g in engine.snapshot().groups] == group_by_grid(
        survivors, engine.parameters
    )


@settings(max_examples=80, deadline=None)
@given(
    st.lists(stream_flexoffers(), min_size=1, max_size=6),
    st.data(),
)
def test_incremental_aggregate_matches_batch_under_random_removals(offers, data):
    """IncrementalAggregate ≡ aggregate_start_aligned at every removal step."""
    aggregate = IncrementalAggregate()
    live = {}
    for index, flex_offer in enumerate(offers):
        offer_id = f"f{index}"
        aggregate.add(offer_id, flex_offer)
        live[offer_id] = flex_offer
    while len(live) > 1:
        victim = data.draw(st.sampled_from(sorted(live)))
        aggregate.remove(victim)
        del live[victim]
        assert aggregate.aggregated() == aggregate_start_aligned(list(live.values()))
