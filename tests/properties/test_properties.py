"""Property-based tests (hypothesis) for the core invariants of the library.

The strategies build arbitrary—but valid—flex-offers and check the structural
invariants that the paper's definitions imply: measure non-negativity,
consistency between the closed-form assignment count and explicit
enumeration, exactness of the column-wise area computation, monotonicity of
flexibility under tightening, and aggregation conservation laws.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import consumption_flexoffers, small_flexoffers

from repro.aggregation import aggregate_start_aligned, disaggregate
from repro.core import (
    Assignment,
    DisaggregationError,
    TimeSeries,
    count_assignments,
    count_assignments_constrained,
    enumerate_assignments,
    flexoffer_area_size,
    union_area_size,
)
from repro.io import flexoffer_from_dict, flexoffer_to_dict
from repro.measures import (
    MixedPolicy,
    absolute_area_flexibility,
    assignment_flexibility,
    energy_flexibility,
    product_flexibility,
    series_flexibility,
    time_flexibility,
    vector_flexibility_norm,
)

# Strategies are shared with the stream-property and backend-conformance
# suites; see tests/strategies.py.
pytestmark = pytest.mark.slow


# --------------------------------------------------------------------- #
# Core model invariants
# --------------------------------------------------------------------- #


@given(small_flexoffers())
@settings(max_examples=60, deadline=None)
def test_basic_measures_are_non_negative(flex_offer):
    assert time_flexibility(flex_offer) >= 0
    assert energy_flexibility(flex_offer) >= 0
    assert product_flexibility(flex_offer) >= 0
    assert assignment_flexibility(flex_offer) >= 1
    assert vector_flexibility_norm(flex_offer, "l2") >= 0
    assert series_flexibility(flex_offer, "l1") >= 0


@given(small_flexoffers())
@settings(max_examples=40, deadline=None)
def test_constrained_count_matches_explicit_enumeration(flex_offer):
    explicit = sum(1 for _ in enumerate_assignments(flex_offer))
    assert count_assignments_constrained(flex_offer) == explicit
    assert explicit <= count_assignments(flex_offer)


@given(small_flexoffers())
@settings(max_examples=40, deadline=None)
def test_area_union_matches_explicit_enumeration(flex_offer):
    explicit = union_area_size([a.series for a in enumerate_assignments(flex_offer)])
    assert flexoffer_area_size(flex_offer) == explicit


@given(small_flexoffers())
@settings(max_examples=60, deadline=None)
def test_canonical_assignment_series_respect_slices(flex_offer):
    minimum = flex_offer.minimum_assignment()
    maximum = flex_offer.maximum_assignment()
    assert minimum.start == flex_offer.earliest_start
    assert maximum.start == flex_offer.latest_start
    assert all(
        low.amin <= value for low, value in zip(flex_offer.slices, minimum.values)
    )
    assert all(
        value <= high.amax for high, value in zip(flex_offer.slices, maximum.values)
    )


@given(small_flexoffers())
@settings(max_examples=60, deadline=None)
def test_effective_bounds_are_contained_in_slices(flex_offer):
    for original, effective in zip(flex_offer.slices, flex_offer.effective_slice_bounds()):
        assert original.amin <= effective.amin <= effective.amax <= original.amax


@given(small_flexoffers())
@settings(max_examples=60, deadline=None)
def test_pinning_time_or_energy_never_increases_flexibility(flex_offer):
    pinned_time = flex_offer.without_time_flexibility()
    pinned_energy = flex_offer.without_energy_flexibility()
    assert time_flexibility(pinned_time) == 0
    assert energy_flexibility(pinned_energy) == 0
    assert assignment_flexibility(pinned_time) <= assignment_flexibility(flex_offer)
    assert assignment_flexibility(pinned_energy) <= assignment_flexibility(flex_offer)


@given(small_flexoffers())
@settings(max_examples=60, deadline=None)
def test_json_round_trip_is_identity(flex_offer):
    assert flexoffer_from_dict(flexoffer_to_dict(flex_offer)) == flex_offer


# --------------------------------------------------------------------- #
# Measure-specific invariants
# --------------------------------------------------------------------- #


@given(consumption_flexoffers)
@settings(max_examples=60, deadline=None)
def test_absolute_area_is_non_negative_for_consumption(flex_offer):
    assert absolute_area_flexibility(flex_offer) >= 0


@given(small_flexoffers())
@settings(max_examples=60, deadline=None)
def test_vector_norm_ordering(flex_offer):
    """L1 >= L2 >= Linf for any vector."""
    l1 = vector_flexibility_norm(flex_offer, "l1")
    l2 = vector_flexibility_norm(flex_offer, "l2")
    linf = vector_flexibility_norm(flex_offer, "max")
    assert l1 + 1e-9 >= l2 >= linf - 1e-9


@given(small_flexoffers(), st.integers(min_value=0, max_value=4))
@settings(max_examples=60, deadline=None)
def test_measures_are_shift_invariant(flex_offer, delta):
    """Shifting a flex-offer in time must not change any flexibility value."""
    shifted = flex_offer.shift(delta)
    assert time_flexibility(shifted) == time_flexibility(flex_offer)
    assert energy_flexibility(shifted) == energy_flexibility(flex_offer)
    assert product_flexibility(shifted) == product_flexibility(flex_offer)
    assert assignment_flexibility(shifted) == assignment_flexibility(flex_offer)
    assert series_flexibility(shifted, "l2") == series_flexibility(flex_offer, "l2")
    if not flex_offer.is_mixed:
        assert absolute_area_flexibility(shifted) == absolute_area_flexibility(flex_offer)


@given(small_flexoffers())
@settings(max_examples=40, deadline=None)
def test_series_flexibility_l2_never_exceeds_l1(flex_offer):
    assert series_flexibility(flex_offer, "l2") <= series_flexibility(flex_offer, "l1") + 1e-9


# --------------------------------------------------------------------- #
# Aggregation invariants
# --------------------------------------------------------------------- #


@given(st.lists(small_flexoffers(max_slices=2), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_aggregation_conservation_laws(members):
    aggregated = aggregate_start_aligned(members)
    aggregate = aggregated.flex_offer
    assert aggregate.time_flexibility == min(m.time_flexibility for m in members)
    assert aggregate.energy_flexibility == sum(m.energy_flexibility for m in members)
    assert aggregate.cmin == sum(m.cmin for m in members)
    assert aggregate.cmax == sum(m.cmax for m in members)


@given(
    st.lists(
        small_flexoffers(max_slices=2, tight_totals=False), min_size=1, max_size=3
    )
)
@settings(max_examples=30, deadline=None)
def test_disaggregated_total_energy_matches_aggregate(members):
    """Exact disaggregation in the classic setting (totals = profile sums)."""
    aggregated = aggregate_start_aligned(members)
    assignment = Assignment.latest_maximum(aggregated.flex_offer)
    parts = disaggregate(aggregated, assignment)
    assert len(parts) == len(members)
    assert sum(p.total_energy for p in parts) == assignment.total_energy


@given(st.lists(small_flexoffers(max_slices=2), min_size=1, max_size=3))
@settings(max_examples=30, deadline=None)
def test_disaggregation_with_tight_totals_is_exact_or_fails_loudly(members):
    """Tight member total constraints couple columns of the aggregate.

    Start-aligned aggregation cannot always express that coupling, so
    disaggregation of a particular aggregate assignment may be infeasible —
    in that case the library must raise, never return member assignments
    that do not add up to the aggregate assignment.
    """
    aggregated = aggregate_start_aligned(members)
    assignment = Assignment.latest_maximum(aggregated.flex_offer)
    try:
        parts = disaggregate(aggregated, assignment)
    except DisaggregationError:
        return
    combined = parts[0].series
    for part in parts[1:]:
        combined = combined + part.series
    for time, value in assignment.series.items():
        assert combined[time] == value


# --------------------------------------------------------------------- #
# Time-series invariants
# --------------------------------------------------------------------- #


@given(
    st.integers(min_value=0, max_value=5),
    st.lists(st.integers(min_value=-5, max_value=5), max_size=6),
    st.integers(min_value=0, max_value=5),
    st.lists(st.integers(min_value=-5, max_value=5), max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_timeseries_addition_is_pointwise(start_a, values_a, start_b, values_b):
    a = TimeSeries(start_a, tuple(values_a))
    b = TimeSeries(start_b, tuple(values_b))
    total = a + b
    for time in range(0, 15):
        assert total[time] == a[time] + b[time]
    difference = a - b
    for time in range(0, 15):
        assert difference[time] == a[time] - b[time]
