"""Tests for the norm utilities and the measure framework itself."""

import math

import pytest

from repro.core import FlexOffer, MeasureError
from repro.measures import (
    NORM_ALIASES,
    euclidean,
    lp_norm,
    manhattan,
    maximum,
    resolve_norm_order,
    vector_norm,
)
from repro.measures.base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
    SetAggregation,
    register_measure,
    registered_measures,
)


class TestNorms:
    def test_manhattan_euclidean_maximum(self):
        values = (3, -4, 0)
        assert manhattan(values) == 7
        assert euclidean(values) == 5
        assert maximum(values) == 4

    def test_lp_norm_general_order(self):
        assert lp_norm((1, 1, 1, 1), 1) == 4
        assert lp_norm((2, 2), 2) == pytest.approx(math.sqrt(8))
        assert lp_norm((), 2) == 0.0

    def test_lp_norm_infinity(self):
        assert lp_norm((1, -9, 3), math.inf) == 9

    def test_lp_norm_rejects_non_positive_order(self):
        with pytest.raises(ValueError):
            lp_norm((1,), 0)

    def test_resolve_norm_order_aliases(self):
        assert resolve_norm_order("l1") == 1
        assert resolve_norm_order("Manhattan") == 1
        assert resolve_norm_order("EUCLIDEAN") == 2
        assert resolve_norm_order("max") == math.inf
        assert resolve_norm_order(3) == 3
        assert set(NORM_ALIASES) >= {"l1", "l2", "manhattan", "euclidean"}

    def test_resolve_norm_order_rejects_bad_input(self):
        with pytest.raises(ValueError):
            resolve_norm_order("l99")
        with pytest.raises(ValueError):
            resolve_norm_order(-2)
        with pytest.raises(ValueError):
            resolve_norm_order(True)

    def test_vector_norm_by_name_and_order(self):
        assert vector_norm((3, 4), "l1") == 7
        assert vector_norm((3, 4), 2) == 5


class TestMeasureFramework:
    def test_supports_derives_from_characteristics(self, fig1, fig7_f6):
        production = FlexOffer(0, 1, [(-2, -1)])
        for cls in registered_measures().values():
            measure = cls()
            assert measure.supports(fig1) == measure.characteristics.captures_positive
            assert measure.supports(production) == measure.characteristics.captures_negative
            assert measure.supports(fig7_f6) == measure.characteristics.captures_mixed

    def test_describe_is_serialisable(self):
        for cls in registered_measures().values():
            description = cls().describe()
            assert description["key"] == cls.key
            assert description["label"] == cls.label
            assert isinstance(description["characteristics"], dict)
            assert description["set_aggregation"] in {"sum", "mean"}

    def test_register_measure_rejects_duplicates_and_bad_classes(self):
        existing = registered_measures()["time"]

        class Clashing(FlexibilityMeasure):
            key = "time"
            label = "Clash"
            characteristics = MeasureCharacteristics(True, False, False, False)

            def value(self, flex_offer):
                return 0.0

        with pytest.raises(ValueError):
            register_measure(Clashing)
        # Re-registering the same class is idempotent.
        assert register_measure(existing) is existing

        class NoKey(FlexibilityMeasure):
            key = ""
            label = "NoKey"
            characteristics = MeasureCharacteristics(True, False, False, False)

            def value(self, flex_offer):
                return 0.0

        with pytest.raises(ValueError):
            register_measure(NoKey)

        with pytest.raises(TypeError):
            register_measure(dict)

    def test_set_aggregation_enum_values(self):
        assert SetAggregation.SUM.value == "sum"
        assert SetAggregation.MEAN.value == "mean"

    def test_default_set_value_on_empty_iterable(self):
        for cls in registered_measures().values():
            measure = cls()
            if cls.key == "assignments":
                continue  # joint-count convention tested elsewhere
            assert measure.set_value([]) == 0.0

    def test_every_paper_measure_single_valued_on_fig1(self, fig1):
        for key, cls in registered_measures().items():
            value = cls().value(fig1)
            assert isinstance(value, float)
            assert value >= 0.0
