"""Tests for composite (weighted) measures and the set-wise evaluation layer."""

import pytest

from repro.core import FlexOffer, MeasureError
from repro.measures import (
    ProductFlexibility,
    VectorFlexibility,
    WeightedFlexibility,
    applicable_measures,
    compare_sets,
    evaluate_set,
    get_measure,
    rank_flexoffers,
)
from repro.measures.setwise import resolve_measures


class TestWeightedFlexibility:
    def test_weighted_value_is_linear_combination(self, fig1):
        blend = WeightedFlexibility({"product": 0.5, "time": 0.5})
        assert blend.value(fig1) == pytest.approx(0.5 * 60 + 0.5 * 5)

    def test_weights_normalised_by_default(self, fig1):
        blend = WeightedFlexibility({"product": 2, "time": 2})
        assert blend.value(fig1) == pytest.approx(0.5 * 60 + 0.5 * 5)

    def test_unnormalised_weights(self, fig1):
        blend = WeightedFlexibility({"product": 2.0}, normalise_weights=False)
        assert blend.value(fig1) == pytest.approx(120)

    def test_instances_with_custom_norms(self, fig1):
        blend = WeightedFlexibility([(VectorFlexibility("l1"), 1.0)])
        assert blend.value(fig1) == 17

    def test_breakdown_sums_to_value(self, fig1):
        blend = WeightedFlexibility({"product": 0.7, "vector": 0.3})
        breakdown = blend.breakdown(fig1)
        assert sum(breakdown.values()) == pytest.approx(blend.value(fig1))

    def test_characteristics_combine_components(self):
        blend = WeightedFlexibility({"vector": 0.5, "relative_area": 0.5})
        assert blend.characteristics.captures_size is True
        assert blend.characteristics.captures_mixed is False  # area component

        mixed_safe = WeightedFlexibility({"vector": 0.5, "assignments": 0.5})
        assert mixed_safe.characteristics.captures_mixed is True

    def test_empty_or_invalid_weights_rejected(self):
        with pytest.raises(MeasureError):
            WeightedFlexibility({})
        with pytest.raises(MeasureError):
            WeightedFlexibility({"product": -1.0})
        with pytest.raises(MeasureError):
            WeightedFlexibility({"product": 0.0})
        with pytest.raises(MeasureError):
            WeightedFlexibility([("not-a-measure", 1.0)])

    def test_describe_lists_components(self):
        blend = WeightedFlexibility({"product": 1.0})
        assert blend.describe()["components"] == [{"measure": "product", "weight": 1.0}]


class TestResolveMeasures:
    def test_none_resolves_to_all_registered(self):
        resolved = resolve_measures(None)
        assert {measure.key for measure in resolved} >= {"time", "product", "vector"}

    def test_mixed_specs(self):
        resolved = resolve_measures(["time", ProductFlexibility()])
        assert [measure.key for measure in resolved] == ["time", "product"]

    def test_invalid_spec_rejected(self):
        with pytest.raises(MeasureError):
            resolve_measures([42])


class TestSetwise:
    def test_evaluate_set_reports_all_supported_measures(self, fig1, fig3_f2):
        report = evaluate_set([fig1, fig3_f2], ["time", "product", "absolute_area"])
        assert report.size == 2
        assert report.value("time") == 7
        assert report.skipped == ()

    def test_mixed_members_skip_area_measures(self, fig1, fig7_f6):
        report = evaluate_set([fig1, fig7_f6])
        assert "absolute_area" in report.skipped
        assert "relative_area" in report.skipped
        assert "vector" in report.values

    def test_empty_set(self):
        report = evaluate_set([], ["time"])
        assert report.value("time") == 0.0

    def test_applicable_measures_respects_sign_classes(self, fig1, fig7_f6):
        keys = {m.key for m in applicable_measures([fig1, fig7_f6])}
        assert "absolute_area" not in keys
        assert "vector" in keys

    def test_compare_sets_reports_loss_and_retention(self, fig1, fig3_f2):
        comparison = compare_sets([fig1, fig3_f2], [fig1], ["product"])
        stats = comparison["product"]
        assert stats["before"] == 64
        assert stats["after"] == 60
        assert stats["loss"] == 4
        assert stats["retained"] == pytest.approx(60 / 64)

    def test_compare_sets_zero_before_counts_as_fully_retained(self):
        inflexible = FlexOffer.inflexible(0, [1])
        comparison = compare_sets([inflexible], [inflexible], ["product"])
        assert comparison["product"]["retained"] == 1.0

    def test_rank_flexoffers(self, fig1, fig3_f2, fig7_f6):
        ranking = rank_flexoffers([fig1, fig3_f2, fig7_f6], "assignments")
        names = [flex_offer.name for flex_offer, _ in ranking]
        # fig1 has 6 starts x (3*3*6*4) profiles = 1296 assignments, fig7 has
        # 240 and fig3 has 9, so the descending order is fig1, fig7, fig3.
        assert names == [fig1.name, fig7_f6.name, fig3_f2.name]

    def test_rank_excludes_unsupported(self, fig1, fig7_f6):
        ranking = rank_flexoffers([fig1, fig7_f6], get_measure("absolute_area"))
        assert [f.name for f, _ in ranking] == [fig1.name]
