"""Unit tests for the time-series and assignment-count measures."""

import math

import pytest

from repro.core import FlexOffer
from repro.measures import (
    AssignmentFlexibility,
    SeriesFlexibility,
    assignment_flexibility,
    log_assignment_flexibility,
    series_difference,
    series_flexibility,
    set_assignment_flexibility,
)


class TestSeriesMeasure:
    def test_difference_spans_both_canonical_assignments(self, fig1):
        difference = series_difference(fig1)
        assert difference.start == fig1.earliest_start
        assert difference.end == fig1.latest_start + fig1.duration - 1

    def test_norms_on_figure1(self, fig1):
        # max assignment <3,4,5,3> at t=6 minus min assignment <1,2,0,0> at t=1.
        expected_l1 = (1 + 2) + (3 + 4 + 5 + 3)
        assert series_flexibility(fig1, "l1") == expected_l1

    def test_euclidean_norm_definition(self, fig2_f1):
        assert SeriesFlexibility("euclidean").value(fig2_f1) == 1

    def test_overlapping_canonical_assignments_cancel(self):
        # With zero time flexibility the difference is just amax - amin per slice.
        f = FlexOffer(3, 3, [(1, 4), (0, 2)])
        assert series_difference(f).to_dict() == {3: 3, 4: 2}
        assert series_flexibility(f, "l1") == 5

    def test_production_flexoffer_supported(self):
        f = FlexOffer(0, 1, [(-3, -1)])
        assert series_flexibility(f, "l1") == pytest.approx(4)

    def test_describe_and_difference_helper(self, fig2_f1):
        measure = SeriesFlexibility("l1")
        assert measure.describe()["norm_order"] == 1
        assert measure.difference(fig2_f1).to_dict() == {0: 0, 1: 1}

    def test_set_value_sums(self, fig2_f1):
        assert SeriesFlexibility("l1").set_value([fig2_f1, fig2_f1]) == 2


class TestAssignmentMeasure:
    def test_default_follows_definition8(self, fig3_f2):
        assert AssignmentFlexibility().value(fig3_f2) == 9

    def test_constrained_variant_counts_valid_assignments_only(self):
        f = FlexOffer(0, 1, [(0, 3)], 0, 1)
        assert AssignmentFlexibility().value(f) == 8
        assert AssignmentFlexibility(respect_total_constraints=True).value(f) == 4

    def test_logarithmic_variant(self, fig7_f6):
        assert AssignmentFlexibility(logarithmic=True).value(fig7_f6) == pytest.approx(
            math.log(240)
        )

    def test_logarithmic_constrained_variant(self):
        f = FlexOffer(0, 1, [(0, 3)], 0, 1)
        value = AssignmentFlexibility(
            respect_total_constraints=True, logarithmic=True
        ).value(f)
        assert value == pytest.approx(math.log(4))

    def test_set_value_is_product_of_counts(self, fig2_f1, fig3_f2):
        assert set_assignment_flexibility([fig2_f1, fig3_f2]) == 36
        assert AssignmentFlexibility().set_value([fig2_f1, fig3_f2]) == 36

    def test_set_value_logarithmic_is_sum_of_logs(self, fig2_f1, fig3_f2):
        value = AssignmentFlexibility(logarithmic=True).set_value([fig2_f1, fig3_f2])
        assert value == pytest.approx(math.log(4) + math.log(9))

    def test_empty_set_conventions(self):
        assert AssignmentFlexibility().set_value([]) == 1.0
        assert AssignmentFlexibility(logarithmic=True).set_value([]) == 0.0

    def test_energy_flexibility_has_exponential_impact(self):
        """Section 4: assignments grow exponentially in energy, linearly in time."""
        base = FlexOffer(0, 1, [(0, 1), (0, 1)])
        more_time = FlexOffer(0, 3, [(0, 1), (0, 1)])
        more_energy = FlexOffer(0, 1, [(0, 3), (0, 3)])
        assert assignment_flexibility(more_time) == 2 * assignment_flexibility(base)
        assert assignment_flexibility(more_energy) == 4 * assignment_flexibility(base)

    def test_log_variant_matches_log_of_count(self, fig1):
        assert log_assignment_flexibility(fig1) == pytest.approx(
            math.log(assignment_flexibility(fig1))
        )

    def test_describe_reports_options(self):
        description = AssignmentFlexibility(True, True).describe()
        assert description["respect_total_constraints"] is True
        assert description["logarithmic"] is True
