"""Unit tests for the time, energy, product and vector measures."""

import math

import pytest

from repro.core import FlexOffer
from repro.measures import (
    EnergyFlexibility,
    ProductFlexibility,
    TimeFlexibility,
    VectorFlexibility,
    energy_flexibility,
    legacy_product_flexibility,
    product_flexibility,
    profile_energy_flexibility,
    time_flexibility,
    vector_flexibility,
    vector_flexibility_norm,
)
from repro.measures.time_measure import total_time_flexibility
from repro.measures.energy_measure import total_energy_flexibility


class TestTimeMeasure:
    def test_class_and_function_agree(self, fig1):
        assert TimeFlexibility().value(fig1) == time_flexibility(fig1) == 5

    def test_zero_for_pinned_start(self):
        assert time_flexibility(FlexOffer.inflexible(3, [1, 2])) == 0

    def test_set_value_sums(self, fig1, fig3_f2):
        assert TimeFlexibility().set_value([fig1, fig3_f2]) == 7
        assert total_time_flexibility([fig1, fig3_f2]) == 7

    def test_callable_protocol(self, fig1):
        assert TimeFlexibility()(fig1) == 5


class TestEnergyMeasure:
    def test_class_and_function_agree(self, fig1):
        assert EnergyFlexibility().value(fig1) == energy_flexibility(fig1) == 12

    def test_uses_total_constraints_not_slice_sums(self):
        f = FlexOffer(0, 0, [(0, 10)], 4, 6)
        assert energy_flexibility(f) == 2
        assert profile_energy_flexibility(f) == 10

    def test_set_value_sums(self, fig1, fig2_f1):
        assert EnergyFlexibility().set_value([fig1, fig2_f1]) == 13
        assert total_energy_flexibility([fig1, fig2_f1]) == 13


class TestProductMeasure:
    def test_example3(self, fig1):
        assert ProductFlexibility().value(fig1) == product_flexibility(fig1) == 60

    def test_zero_when_either_dimension_inflexible(self, fig1):
        assert product_flexibility(fig1.without_time_flexibility()) == 0
        assert product_flexibility(fig1.without_energy_flexibility()) == 0

    def test_legacy_variant_uses_slice_widths(self, fig1):
        # Slice widths of Figure 1: 2 + 2 + 5 + 3 = 12, times tf = 5.
        assert legacy_product_flexibility(fig1) == 60

    def test_legacy_variant_ignores_total_constraints(self):
        f = FlexOffer(0, 2, [(0, 10)], 4, 6)
        assert product_flexibility(f) == 4
        assert legacy_product_flexibility(f) == 20

    def test_set_value_sums(self, fig1, fig3_f2):
        assert ProductFlexibility().set_value([fig1, fig3_f2]) == 60 + 4


class TestVectorMeasure:
    def test_components(self, fig1):
        assert vector_flexibility(fig1) == (5, 12)
        assert VectorFlexibility().components(fig1) == (5, 12)

    def test_norm_selection(self, fig1):
        assert VectorFlexibility("l1").value(fig1) == 17
        assert VectorFlexibility("manhattan").value(fig1) == 17
        assert VectorFlexibility(2).value(fig1) == pytest.approx(13.0)
        assert VectorFlexibility("max").value(fig1) == 12

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            VectorFlexibility("l7-ish")
        with pytest.raises(ValueError):
            vector_flexibility_norm(FlexOffer.inflexible(0, [1]), -1)

    def test_nonzero_when_one_dimension_is_inflexible(self, fig1):
        pinned = fig1.without_energy_flexibility()
        assert VectorFlexibility("l1").value(pinned) == 5
        assert product_flexibility(pinned) == 0  # the contrast from Section 4

    def test_describe_includes_norm(self):
        assert VectorFlexibility("l1").describe()["norm_order"] == 1

    def test_set_value_sums_norms(self, fig1, fig3_f2):
        expected = math.hypot(5, 12) + math.hypot(2, 2)
        assert VectorFlexibility().set_value([fig1, fig3_f2]) == pytest.approx(expected)
