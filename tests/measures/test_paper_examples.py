"""End-to-end checks of every worked example in the paper (Examples 1-15).

These tests are the reproduction core: each asserts the value the paper
reports (or, where the paper's own numbers are internally inconsistent, the
value implied by its definitions — see EXPERIMENTS.md for the list of
discrepancies and how they were resolved).
"""

import pytest

from repro.measures import (
    MixedPolicy,
    absolute_area_flexibility,
    assignment_flexibility,
    energy_flexibility,
    product_flexibility,
    relative_area_flexibility,
    series_difference,
    series_flexibility,
    time_flexibility,
    vector_flexibility,
    vector_flexibility_norm,
)
from repro.workloads import (
    example11_large_flexoffer,
    example11_small_flexoffer,
    example11_zero_energy_flexoffer,
    example13_wide_time_flexoffer,
)


class TestExamples1To4Figure1:
    def test_example1_time_flexibility(self, fig1):
        assert time_flexibility(fig1) == 5

    def test_example2_energy_flexibility(self, fig1):
        assert energy_flexibility(fig1) == 12

    def test_example3_product_flexibility(self, fig1):
        assert product_flexibility(fig1) == 60

    def test_example4_vector_components_follow_definition4(self, fig1):
        # The paper prints <5, 10> in Example 4, but Definition 4 together
        # with Example 2 (ef = 12) implies <5, 12>; we follow the definition.
        assert vector_flexibility(fig1) == (5, 12)

    def test_example4_vector_norms_follow_definition4(self, fig1):
        assert vector_flexibility_norm(fig1, "l1") == 17
        assert vector_flexibility_norm(fig1, "l2") == pytest.approx(13.0)


class TestExample5Figure2:
    def test_difference_series(self, fig2_f1):
        assert series_difference(fig2_f1).to_dict() == {0: 0, 1: 1}

    def test_series_flexibility_norms(self, fig2_f1):
        assert series_flexibility(fig2_f1, "l1") == 1
        assert series_flexibility(fig2_f1, "l2") == 1

    def test_number_of_assignments(self, fig2_f1):
        assert assignment_flexibility(fig2_f1) == 4


class TestExample6Figure3:
    def test_nine_assignments(self, fig3_f2):
        assert assignment_flexibility(fig3_f2) == 9


class TestExamples8To10Figures5And6:
    def test_example8_absolute_area(self, fig5_f4):
        assert absolute_area_flexibility(fig5_f4) == 8

    def test_example9_absolute_area(self, fig6_f5):
        assert absolute_area_flexibility(fig6_f5) == 8

    def test_example10_relative_area_f4(self, fig5_f4):
        assert relative_area_flexibility(fig5_f4) == pytest.approx(4.0)

    def test_example10_relative_area_f5(self, fig6_f5):
        assert relative_area_flexibility(fig6_f5) == pytest.approx(16 / 6)


class TestExample11ProductLimitations:
    def test_zero_energy_flexibility_collapses_product(self):
        fx = example11_zero_energy_flexoffer()
        assert time_flexibility(fx) == 6
        assert energy_flexibility(fx) == 0
        assert product_flexibility(fx) == 0

    def test_size_blindness(self):
        small = example11_small_flexoffer()
        large = example11_large_flexoffer()
        assert product_flexibility(small) == product_flexibility(large) == 8


class TestExample12VectorLimitations:
    def test_identical_norms_despite_100x_size_difference(self):
        small = example11_small_flexoffer()
        large = example11_large_flexoffer()
        assert vector_flexibility_norm(small, "l1") == vector_flexibility_norm(large, "l1") == 6
        assert vector_flexibility_norm(small, "l2") == pytest.approx(4.472, abs=1e-3)
        assert vector_flexibility_norm(large, "l2") == pytest.approx(4.472, abs=1e-3)


class TestExample13SeriesLimitations:
    def test_time_flexibility_is_invisible_to_series_norms(self, fig2_f1):
        wide = example13_wide_time_flexoffer()
        assert time_flexibility(wide) == 10 * time_flexibility(fig2_f1)
        assert series_flexibility(wide, "l1") == series_flexibility(fig2_f1, "l1") == 1
        assert series_flexibility(wide, "l2") == series_flexibility(fig2_f1, "l2") == 1

    def test_wide_difference_series_shape(self):
        wide = example13_wide_time_flexoffer()
        difference = series_difference(wide)
        assert difference.to_dict() == {t: 0 for t in range(10)} | {10: 1}


class TestExamples14And15Figure7:
    def test_example14_assignment_counts(self, fig7_f6):
        assert assignment_flexibility(fig7_f6) == 240
        assert assignment_flexibility(fig7_f6.without_time_flexibility()) == 80
        assert assignment_flexibility(fig7_f6.without_energy_flexibility()) == 3

    def test_example15_mixed_area_values(self, fig7_f6):
        assert (
            absolute_area_flexibility(fig7_f6, MixedPolicy.PAPER_EXAMPLE) == 32
        )
        assert relative_area_flexibility(
            fig7_f6, MixedPolicy.PAPER_EXAMPLE
        ) == pytest.approx(6.4)

    def test_example15_total_constraints(self, fig7_f6):
        assert fig7_f6.cmin == -8
        assert fig7_f6.cmax == 2
        assert energy_flexibility(fig7_f6) == 10
