"""Tests for the Table 1 characteristics machinery."""

import pytest

from repro.measures import (
    PAPER_MEASURE_ORDER,
    PAPER_TABLE_1,
    characteristics_matrix,
    characteristics_table,
    format_characteristics_table,
    get_measure,
    matches_paper_table,
    measure_keys,
    registered_measures,
)
from repro.measures.base import MeasureCharacteristics


class TestRegistry:
    def test_all_eight_paper_measures_registered(self):
        assert set(PAPER_MEASURE_ORDER).issubset(set(measure_keys()))

    def test_get_measure_by_key(self):
        assert get_measure("product").key == "product"

    def test_get_measure_with_kwargs(self):
        assert get_measure("vector", norm="l1").norm_order == 1

    def test_unknown_key_raises(self):
        from repro.core import MeasureError

        with pytest.raises(MeasureError):
            get_measure("does-not-exist")

    def test_registry_returns_copy(self):
        registry = registered_measures()
        registry["bogus"] = None
        assert "bogus" not in registered_measures()


class TestTable1:
    def test_every_row_matches_the_paper(self):
        agreement = matches_paper_table()
        assert all(agreement.values()), agreement

    def test_matrix_rows_and_columns(self):
        matrix = characteristics_matrix()
        assert set(matrix) == set(PAPER_TABLE_1)
        for row in matrix.values():
            assert set(row) == set(PAPER_MEASURE_ORDER)

    def test_specific_paper_cells(self):
        matrix = characteristics_matrix()
        assert matrix["Captures time & energy"]["product"] is True
        assert matrix["Captures time"]["product"] is False
        assert matrix["Captures energy"]["series"] is True
        assert matrix["Captures time"]["series"] is False
        assert matrix["Captures size"]["absolute_area"] is True
        assert matrix["Captures Mixed flex-offers"]["absolute_area"] is False
        assert matrix["Captures Mixed flex-offers"]["vector"] is True

    def test_table_shape(self):
        table = characteristics_table()
        assert len(table) == 9  # header + 8 characteristic rows
        assert len(table[0]) == 9  # label column + 8 measures
        assert table[0][1:] == [
            "Time", "Energy", "Product", "Vector", "Time-series",
            "Assignments", "Abs. Area", "Rel. Area",
        ]

    def test_formatted_table_mentions_every_measure(self):
        text = format_characteristics_table()
        for label in ("Time", "Energy", "Product", "Vector", "Assignments"):
            assert label in text
        assert "Yes" in text and "No" in text

    def test_subset_of_columns(self):
        matrix = characteristics_matrix(["time", "product"])
        assert set(matrix["Captures time"]) == {"time", "product"}


class TestCharacteristicsDataclass:
    def test_as_row_order_matches_labels(self):
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )
        row = characteristics.as_row()
        assert row[0] is True and row[1] is False
        assert len(row) == len(MeasureCharacteristics.ROW_LABELS) == 8

    def test_as_dict_contains_all_fields(self):
        characteristics = MeasureCharacteristics(True, True, True, True)
        assert set(characteristics.as_dict()) == {
            "captures_time",
            "captures_energy",
            "captures_time_and_energy",
            "captures_size",
            "captures_positive",
            "captures_negative",
            "captures_mixed",
            "single_value",
        }
