"""Unit tests for the absolute and relative area-based measures."""

import pytest

from repro.core import FlexOffer, MeasureError, UnsupportedFlexOfferError
from repro.measures import (
    AbsoluteAreaFlexibility,
    MixedPolicy,
    RelativeAreaFlexibility,
    absolute_area_flexibility,
    inflexible_area_baseline,
    relative_area_flexibility,
)
from repro.measures.base import SetAggregation


class TestAbsoluteArea:
    def test_consumption_baseline_is_cmin(self, fig5_f4):
        assert inflexible_area_baseline(fig5_f4) == 2

    def test_production_baseline_is_abs_cmax(self):
        f = FlexOffer(0, 2, [(-3, -1)])
        assert inflexible_area_baseline(f) == 1
        # union area: 3 columns x 3 cells each = 9, minus |cmax| = 1.
        assert absolute_area_flexibility(f) == 8

    def test_mixed_rejected_by_default(self, fig7_f6):
        with pytest.raises(UnsupportedFlexOfferError):
            absolute_area_flexibility(fig7_f6)

    def test_mixed_paper_example_policy(self, fig7_f6):
        assert absolute_area_flexibility(fig7_f6, MixedPolicy.PAPER_EXAMPLE) == 32

    def test_mixed_raw_area_policy(self, fig7_f6):
        assert absolute_area_flexibility(fig7_f6, MixedPolicy.RAW_AREA) == 24

    def test_policy_accepts_strings(self, fig7_f6):
        assert absolute_area_flexibility(fig7_f6, "paper-example") == 32

    def test_class_value_and_supports(self, fig5_f4, fig7_f6):
        measure = AbsoluteAreaFlexibility()
        assert measure.value(fig5_f4) == 8
        assert measure.supports(fig5_f4)
        assert not measure.supports(fig7_f6)

    def test_inflexible_flexoffer_has_zero_flexibility(self):
        f = FlexOffer.inflexible(0, [3])
        assert absolute_area_flexibility(f) == 0

    def test_pure_time_flexibility_still_visible(self, fig5_f4):
        """Unlike product flexibility, the area measure sees time-only flexibility."""
        assert fig5_f4.energy_flexibility == 0
        assert absolute_area_flexibility(fig5_f4) > 0

    def test_set_value_sums(self, fig5_f4, fig6_f5):
        assert AbsoluteAreaFlexibility().set_value([fig5_f4, fig6_f5]) == 16


class TestRelativeArea:
    def test_figure5_and_6_values(self, fig5_f4, fig6_f5):
        assert relative_area_flexibility(fig5_f4) == pytest.approx(4.0)
        assert relative_area_flexibility(fig6_f5) == pytest.approx(16 / 6)

    def test_size_invariance(self):
        """Scaling all energy amounts leaves the relative measure unchanged."""
        small = FlexOffer(0, 4, [(2, 2)], 2, 2)
        large = FlexOffer(0, 4, [(20, 20)], 20, 20)
        # The absolute values differ by 10x, the relative values are equal.
        assert absolute_area_flexibility(large) == 10 * absolute_area_flexibility(small)
        assert relative_area_flexibility(large) == pytest.approx(
            relative_area_flexibility(small)
        )

    def test_undefined_for_zero_denominator(self):
        f = FlexOffer(0, 1, [(-1, 1)], 0, 0)
        with pytest.raises(MeasureError):
            relative_area_flexibility(f, MixedPolicy.PAPER_EXAMPLE)

    def test_mixed_rejected_by_default(self, fig7_f6):
        with pytest.raises(UnsupportedFlexOfferError):
            relative_area_flexibility(fig7_f6)

    def test_set_aggregation_is_mean(self, fig5_f4, fig6_f5):
        measure = RelativeAreaFlexibility()
        assert measure.set_aggregation is SetAggregation.MEAN
        expected = (4.0 + 16 / 6) / 2
        assert measure.set_value([fig5_f4, fig6_f5]) == pytest.approx(expected)

    def test_describe_reports_policy(self):
        measure = RelativeAreaFlexibility(MixedPolicy.PAPER_EXAMPLE)
        assert measure.describe()["mixed_policy"] == "paper-example"


class TestMixedSetValidation:
    """Mixed flex-offers must be rejected *before* any set evaluation.

    ``set_value`` used to raise only once the first mixed member was
    reached, which left a caller's iterator half-consumed; the whole set is
    now materialised and validated up front.
    """

    def _consuming_iterator(self, offers, consumed):
        for offer in offers:
            consumed.append(offer)
            yield offer

    @pytest.mark.parametrize(
        "measure_cls", [AbsoluteAreaFlexibility, RelativeAreaFlexibility]
    )
    def test_mixed_set_rejected_up_front(self, measure_cls, fig5_f4, fig6_f5, fig7_f6):
        offers = [fig5_f4, fig6_f5, fig7_f6]  # mixed offer last
        consumed = []
        with pytest.raises(UnsupportedFlexOfferError) as excinfo:
            measure_cls().set_value(self._consuming_iterator(offers, consumed))
        # The error names the offending member and no member was evaluated
        # after a partial prefix: the input iterator was drained completely
        # during up-front validation.
        assert fig7_f6.name in str(excinfo.value)
        assert consumed == offers

    def test_paper_example_policy_still_evaluates_mixed_sets(self, fig5_f4, fig7_f6):
        measure = AbsoluteAreaFlexibility(MixedPolicy.PAPER_EXAMPLE)
        total = measure.set_value([fig5_f4, fig7_f6])
        assert total == absolute_area_flexibility(
            fig5_f4, MixedPolicy.PAPER_EXAMPLE
        ) + absolute_area_flexibility(fig7_f6, MixedPolicy.PAPER_EXAMPLE)

    def test_set_value_accepts_a_plain_iterator_when_valid(self, fig5_f4, fig6_f5):
        assert AbsoluteAreaFlexibility().set_value(
            iter([fig5_f4, fig6_f5])
        ) == 16
