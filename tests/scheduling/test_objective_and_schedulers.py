"""Tests for the scheduling objectives and all schedulers."""

import random

import pytest

from repro.core import FlexOffer, SchedulingError, TimeSeries
from repro.scheduling import (
    EarliestStartScheduler,
    EvolutionaryScheduler,
    GreedyImbalanceScheduler,
    HillClimbingScheduler,
    ImbalanceObjective,
    Schedule,
    absolute_imbalance,
    build_validated_schedule,
    imbalance_series,
    peak_load,
    random_assignment,
    random_profile,
    squared_imbalance,
)
from repro.core.assignment import Assignment


@pytest.fixture
def small_fleet():
    return [
        FlexOffer(0, 4, [(0, 3), (0, 3)], 2, 6, name="ev-1"),
        FlexOffer(1, 5, [(0, 2), (0, 2), (0, 2)], 2, 6, name="ev-2"),
        FlexOffer(0, 6, [(1, 2)], name="fridge"),
    ]


@pytest.fixture
def supply():
    return TimeSeries(0, (4, 4, 3, 3, 2, 2, 1, 1, 0, 0))


class TestObjective:
    def test_imbalance_series_zero_reference(self):
        load = TimeSeries(0, (1, 2))
        assert imbalance_series(load, None) is load

    def test_absolute_and_squared(self):
        load = TimeSeries(0, (3, 0))
        reference = TimeSeries(0, (1, 2))
        assert absolute_imbalance(load, reference) == 4
        assert squared_imbalance(load, reference) == 8

    def test_peak_load(self):
        assert peak_load(TimeSeries(0, (1, -7, 3))) == 7

    def test_objective_validation(self):
        with pytest.raises(ValueError):
            ImbalanceObjective("cubed")

    def test_of_generation_equals_per_schedule_fold(self, small_fleet, supply):
        """The bulk objective is bit-identical to the scalar fold, on every
        registered backend — the invariant that keeps seeded scheduler
        trajectories unchanged."""
        from repro.backend import available_backends, use_backend

        rng = random.Random(9)
        schedules = [
            build_validated_schedule(
                small_fleet, [random_profile(f, rng) for f in small_fleet]
            )
            for _ in range(5)
        ]
        schedules.append(Schedule(()))
        for metric in ("absolute", "squared"):
            for reference in (None, supply):
                objective = ImbalanceObjective(metric, reference)
                expected = [objective.of_schedule(s) for s in schedules]
                for backend in available_backends():
                    with use_backend(backend):
                        assert objective.of_generation(schedules) == expected

    def test_schedulers_identical_across_backends(self, small_fleet, supply):
        """Seeded evolutionary / hill-climbing runs produce the same
        schedules whichever backend scores their generations."""
        from repro.backend import available_backends, use_backend

        def run():
            evolved = EvolutionaryScheduler(
                population_size=6, generations=4, seed=3
            ).schedule(small_fleet, supply)
            climbed = HillClimbingScheduler(
                iterations=25, restarts=2, seed=3, warm_start=False
            ).schedule(small_fleet, supply)
            return (evolved.assignments, climbed.assignments)

        results = {}
        for backend in available_backends():
            with use_backend(backend):
                results[backend] = run()
        baseline = results.pop("reference")
        for backend, result in results.items():
            assert result == baseline, backend

    def test_improvement_over(self, small_fleet, supply):
        objective = ImbalanceObjective("absolute", supply)
        baseline = EarliestStartScheduler().schedule(small_fleet)
        improvement = objective.improvement_over(baseline, baseline)
        assert improvement == 0.0


class TestSchedule:
    def test_total_load_and_energy(self, small_fleet):
        schedule = EarliestStartScheduler().schedule(small_fleet)
        assert schedule.total_energy() == sum(a.total_energy for a in schedule)
        assert schedule.total_load().total() == schedule.total_energy()

    def test_assignment_lookup_by_name(self, small_fleet):
        schedule = EarliestStartScheduler().schedule(small_fleet)
        assert schedule.assignment_for("fridge").flex_offer.name == "fridge"
        with pytest.raises(SchedulingError):
            schedule.assignment_for("missing")

    def test_replacing(self, small_fleet):
        schedule = EarliestStartScheduler().schedule(small_fleet)
        replacement = Assignment.latest_maximum(small_fleet[0])
        updated = schedule.replacing(0, replacement)
        assert updated.assignments[0] == replacement
        assert schedule.assignments[0] != replacement  # original untouched


class TestEarliestStartScheduler:
    def test_every_flexoffer_gets_earliest_minimum(self, small_fleet):
        schedule = EarliestStartScheduler().schedule(small_fleet)
        assert len(schedule) == len(small_fleet)
        for assignment, flex_offer in zip(schedule, small_fleet):
            assert assignment.start_time == flex_offer.earliest_start
            assert assignment.total_energy == max(
                flex_offer.cmin, flex_offer.profile_minimum
            )


class TestGreedyImbalanceScheduler:
    def test_improves_on_earliest_start_baseline(self, small_fleet, supply):
        objective = ImbalanceObjective("absolute", supply)
        baseline = EarliestStartScheduler().schedule(small_fleet)
        greedy = GreedyImbalanceScheduler().schedule(small_fleet, supply)
        assert objective.of_schedule(greedy) <= objective.of_schedule(baseline)

    def test_assignments_are_valid(self, small_fleet, supply):
        schedule = GreedyImbalanceScheduler().schedule(small_fleet, supply)
        for assignment in schedule:
            assert assignment.flex_offer in small_fleet

    def test_empty_input(self, supply):
        assert len(GreedyImbalanceScheduler().schedule([], supply)) == 0


class TestRandomAssignment:
    def test_respects_constraints(self, small_fleet):
        rng = random.Random(0)
        for flex_offer in small_fleet:
            for _ in range(20):
                assignment = random_assignment(flex_offer, rng)
                assert flex_offer.cmin <= assignment.total_energy <= flex_offer.cmax


class TestHillClimbingScheduler:
    def test_never_worse_than_warm_start(self, small_fleet, supply):
        objective = ImbalanceObjective("absolute", supply)
        baseline = EarliestStartScheduler().schedule(small_fleet)
        improved = HillClimbingScheduler(iterations=200, restarts=2, seed=1).schedule(
            small_fleet, supply
        )
        assert objective.of_schedule(improved) <= objective.of_schedule(baseline)

    def test_deterministic_for_fixed_seed(self, small_fleet, supply):
        first = HillClimbingScheduler(iterations=50, seed=7).schedule(small_fleet, supply)
        second = HillClimbingScheduler(iterations=50, seed=7).schedule(small_fleet, supply)
        assert [a.values for a in first] == [a.values for a in second]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HillClimbingScheduler(iterations=0)
        with pytest.raises(ValueError):
            HillClimbingScheduler(restarts=0)
        with pytest.raises(ValueError):
            HillClimbingScheduler(speculation=0)

    def test_empty_input(self, supply):
        assert len(HillClimbingScheduler().schedule([], supply)) == 0

    @pytest.mark.parametrize("warm_start", [True, False])
    def test_speculative_batching_preserves_seeded_trajectories(
        self, small_fleet, supply, warm_start
    ):
        """Satellite (PR 5): the batched inner loop — any speculation width,
        iteration counts that don't divide it, every backend — reproduces
        the one-candidate-at-a-time trajectory bit for bit."""
        from repro.backend import available_backends, use_backend

        for backend in available_backends():
            with use_backend(backend):
                scalar = HillClimbingScheduler(
                    iterations=23,
                    restarts=2,
                    seed=5,
                    warm_start=warm_start,
                    speculation=1,
                ).schedule(small_fleet, supply)
                for speculation in (2, 7, 64):
                    batched = HillClimbingScheduler(
                        iterations=23,
                        restarts=2,
                        seed=5,
                        warm_start=warm_start,
                        speculation=speculation,
                    ).schedule(small_fleet, supply)
                    assert batched == scalar, (backend, speculation)

    def test_speculation_batches_objective_calls(self, small_fleet, supply, monkeypatch):
        """The win the batching buys: candidate scoring goes through bulk
        ``of_generation`` calls, mostly ``speculation`` candidates wide."""
        from repro.scheduling.objective import ImbalanceObjective

        widths = []
        original = ImbalanceObjective.of_generation

        def spy(self, schedules):
            widths.append(len(schedules))
            return original(self, schedules)

        monkeypatch.setattr(ImbalanceObjective, "of_generation", spy)
        HillClimbingScheduler(
            iterations=16, restarts=1, seed=3, speculation=8
        ).schedule(small_fleet, supply)
        # One initial-schedule scoring call plus the batched inner loop:
        # strictly fewer calls than one per iteration, none wider than 8.
        assert len(widths) < 1 + 16
        assert max(widths[1:]) <= 8
        assert 8 in widths[1:]


class TestEvolutionaryScheduler:
    def test_never_worse_than_earliest_start(self, small_fleet, supply):
        objective = ImbalanceObjective("absolute", supply)
        baseline = EarliestStartScheduler().schedule(small_fleet)
        evolved = EvolutionaryScheduler(
            population_size=10, generations=15, seed=3
        ).schedule(small_fleet, supply)
        assert objective.of_schedule(evolved) <= objective.of_schedule(baseline)

    def test_deterministic_for_fixed_seed(self, small_fleet, supply):
        config = dict(population_size=8, generations=10, seed=11)
        first = EvolutionaryScheduler(**config).schedule(small_fleet, supply)
        second = EvolutionaryScheduler(**config).schedule(small_fleet, supply)
        assert [a.values for a in first] == [a.values for a in second]

    def test_parameter_validation(self):
        with pytest.raises(SchedulingError):
            EvolutionaryScheduler(population_size=2)
        with pytest.raises(SchedulingError):
            EvolutionaryScheduler(generations=0)
        with pytest.raises(SchedulingError):
            EvolutionaryScheduler(mutation_rate=1.5)
        with pytest.raises(SchedulingError):
            EvolutionaryScheduler(elitism=100)

    def test_empty_input(self, supply):
        assert len(EvolutionaryScheduler().schedule([], supply)) == 0
