"""Tests for start-alignment aggregation and grouping strategies."""

import pytest

from repro.aggregation import (
    AggregatedFlexOffer,
    GroupingParameters,
    aggregate_all,
    aggregate_start_aligned,
    group_all_together,
    group_by_grid,
    group_by_kind,
    group_fixed_size,
)
from repro.core import AggregationError, EnergySlice, FlexOffer


@pytest.fixture
def two_evs():
    return [
        FlexOffer(2, 6, [(0, 3), (0, 3)], name="ev-a"),
        FlexOffer(3, 5, [(1, 2), (1, 2), (1, 2)], name="ev-b"),
    ]


class TestStartAlignedAggregation:
    def test_anchor_and_offsets(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs)
        assert aggregated.flex_offer.earliest_start == 2
        assert aggregated.member_offsets == (0, 1)

    def test_profile_is_columnwise_minkowski_sum(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs)
        # Columns: [0,3], [0,3]+[1,2], [1,2], [1,2]
        assert aggregated.flex_offer.slices == (
            EnergySlice(0, 3),
            EnergySlice(1, 5),
            EnergySlice(1, 2),
            EnergySlice(1, 2),
        )

    def test_time_flexibility_is_member_minimum(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs)
        assert aggregated.flex_offer.time_flexibility == 2

    def test_total_constraints_are_summed(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs)
        assert aggregated.flex_offer.cmin == 0 + 3
        assert aggregated.flex_offer.cmax == 6 + 6

    def test_energy_flexibility_is_summed(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs)
        expected = sum(member.energy_flexibility for member in two_evs)
        assert aggregated.flex_offer.energy_flexibility == expected

    def test_single_member_aggregate_keeps_its_flexibility(self, fig1):
        aggregated = aggregate_start_aligned([fig1])
        assert aggregated.flex_offer.time_flexibility == fig1.time_flexibility
        assert aggregated.flex_offer.energy_flexibility == fig1.energy_flexibility

    def test_empty_group_rejected(self):
        with pytest.raises(AggregationError):
            aggregate_start_aligned([])

    def test_gap_columns_become_inflexible_zero_slices(self):
        members = [
            FlexOffer(0, 0, [(1, 2)], name="early"),
            FlexOffer(3, 3, [(1, 2)], name="late"),
        ]
        aggregated = aggregate_start_aligned(members)
        assert aggregated.flex_offer.slices[1] == EnergySlice(0, 0)
        assert aggregated.flex_offer.slices[2] == EnergySlice(0, 0)

    def test_custom_name_and_describe(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs, name="lot-1")
        assert aggregated.flex_offer.name == "lot-1"
        description = aggregated.describe()
        assert description["members"] == ["ev-a", "ev-b"]
        assert aggregated.size == 2

    def test_member_start_mapping(self, two_evs):
        aggregated = aggregate_start_aligned(two_evs)
        assert aggregated.member_start(aggregate_start=4, index=1) == 5

    def test_bookkeeping_length_mismatch_rejected(self, two_evs):
        with pytest.raises(AggregationError):
            AggregatedFlexOffer(two_evs[0], tuple(two_evs), (0,))

    def test_aggregate_all_names_groups(self, two_evs):
        aggregates = aggregate_all([two_evs, two_evs], prefix="lot")
        assert [a.flex_offer.name for a in aggregates] == ["lot-0", "lot-1"]


class TestGrouping:
    def test_grid_grouping_respects_tolerances(self):
        flex_offers = [
            FlexOffer(0, 2, [(0, 1)], name="a"),
            FlexOffer(1, 3, [(0, 1)], name="b"),
            FlexOffer(10, 12, [(0, 1)], name="c"),
        ]
        groups = group_by_grid(flex_offers, GroupingParameters(4, 4))
        names = [sorted(member.name for member in group) for group in groups]
        assert ["a", "b"] in names and ["c"] in names

    def test_grid_grouping_max_group_size(self):
        flex_offers = [FlexOffer(0, 1, [(0, 1)], name=f"f{i}") for i in range(5)]
        groups = group_by_grid(flex_offers, GroupingParameters(2, 2, max_group_size=2))
        assert max(len(group) for group in groups) <= 2
        assert sum(len(group) for group in groups) == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(AggregationError):
            GroupingParameters(0, 1)
        with pytest.raises(AggregationError):
            GroupingParameters(1, 0)
        with pytest.raises(AggregationError):
            GroupingParameters(1, 1, max_group_size=-1)

    def test_group_all_together(self, two_evs):
        assert group_all_together(two_evs) == [two_evs]
        assert group_all_together([]) == []

    def test_group_fixed_size(self):
        flex_offers = [FlexOffer(0, 1, [(0, 1)], name=f"f{i}") for i in range(5)]
        groups = group_fixed_size(flex_offers, 2)
        assert [len(group) for group in groups] == [2, 2, 1]
        with pytest.raises(AggregationError):
            group_fixed_size(flex_offers, 0)

    def test_group_by_kind_separates_signs(self, fig1, fig7_f6):
        production = FlexOffer(0, 1, [(-2, 0)], name="pv")
        groups = group_by_kind([fig1, fig7_f6, production])
        kinds = [{member.kind for member in group} for group in groups]
        assert all(len(kind_set) == 1 for kind_set in kinds)
        assert len(groups) == 3
