"""Tests for disaggregation, balance-aware aggregation and loss accounting."""

import pytest

from repro.aggregation import (
    aggregate_start_aligned,
    aggregation_loss,
    balance_aggregate,
    compare_strategies,
    disaggregate,
    expected_total_energy,
    group_all_together,
    group_by_grid,
    aggregate_all,
)
from repro.core import Assignment, DisaggregationError, FlexOffer
from repro.core.enumeration import enumerate_assignments


@pytest.fixture
def ev_pair():
    return [
        FlexOffer(2, 6, [(0, 3), (0, 3)], 2, 6, name="ev-a"),
        FlexOffer(3, 5, [(1, 2), (1, 2), (1, 2)], name="ev-b"),
    ]


class TestDisaggregation:
    def test_members_are_valid_and_shifted_consistently(self, ev_pair):
        aggregated = aggregate_start_aligned(ev_pair)
        aggregate_assignment = Assignment.latest_maximum(aggregated.flex_offer)
        parts = disaggregate(aggregated, aggregate_assignment)
        shift = aggregate_assignment.start_time - aggregated.flex_offer.earliest_start
        assert len(parts) == 2
        for part, member, offset in zip(parts, ev_pair, aggregated.member_offsets):
            assert part.flex_offer == member
            assert part.start_time == member.earliest_start + shift

    def test_column_sums_match_aggregate(self, ev_pair):
        aggregated = aggregate_start_aligned(ev_pair)
        aggregate_assignment = Assignment.latest_maximum(aggregated.flex_offer)
        parts = disaggregate(aggregated, aggregate_assignment)
        combined = parts[0].series
        for part in parts[1:]:
            combined = combined + part.series
        for time, value in aggregate_assignment.series.items():
            assert combined[time] == value

    def test_every_aggregate_assignment_disaggregates(self):
        members = [
            FlexOffer(0, 1, [(0, 2)], name="m1"),
            FlexOffer(0, 2, [(1, 3)], name="m2"),
        ]
        aggregated = aggregate_start_aligned(members)
        for aggregate_assignment in enumerate_assignments(aggregated.flex_offer):
            parts = disaggregate(aggregated, aggregate_assignment)
            assert sum(p.total_energy for p in parts) == aggregate_assignment.total_energy

    def test_foreign_assignment_rejected(self, ev_pair, fig1):
        aggregated = aggregate_start_aligned(ev_pair)
        foreign = Assignment.earliest_minimum(fig1)
        with pytest.raises(DisaggregationError):
            disaggregate(aggregated, foreign)


class TestBalanceAggregation:
    def test_expected_total_energy_sign(self, fig1):
        assert expected_total_energy(fig1) > 0
        production = FlexOffer(0, 1, [(-4, -2)], name="pv")
        assert expected_total_energy(production) < 0

    def test_pairs_consumption_with_production(self):
        consumers = [FlexOffer(0, 2, [(2, 4)], name=f"c{i}") for i in range(2)]
        producers = [FlexOffer(0, 2, [(-4, -2)], name=f"p{i}") for i in range(2)]
        result = balance_aggregate(consumers + producers, pair_size=1)
        assert result.mixed_count >= 1
        # Pairing one consumer with one producer keeps expected imbalance small.
        paired_imbalance = result.total_expected_imbalance
        unpaired = sum(abs(expected_total_energy(f)) for f in consumers + producers)
        assert paired_imbalance < unpaired

    def test_leftovers_are_still_aggregated(self):
        consumers = [FlexOffer(0, 2, [(2, 4)], name=f"c{i}") for i in range(3)]
        result = balance_aggregate(consumers, pair_size=2)
        member_total = sum(aggregate.size for aggregate in result.aggregates)
        assert member_total == 3


class TestAggregationLoss:
    def test_aggregation_never_gains_product_flexibility(self, small_neighbourhood):
        originals = list(small_neighbourhood.flex_offers)
        aggregates = aggregate_all(group_by_grid(originals))
        report = aggregation_loss(originals, aggregates, ["product", "time", "energy"])
        assert report.retained("product") <= 1.0 + 1e-9
        assert report.retained("time") <= 1.0 + 1e-9
        assert report.compression >= 1.0

    def test_energy_flexibility_is_preserved_by_alignment(self, small_neighbourhood):
        originals = list(small_neighbourhood.flex_offers)
        aggregates = aggregate_all(group_by_grid(originals))
        report = aggregation_loss(originals, aggregates, ["energy"])
        assert report.retained("energy") == pytest.approx(1.0)

    def test_grouped_aggregation_retains_more_than_one_big_group(
        self, small_neighbourhood
    ):
        originals = list(small_neighbourhood.flex_offers)
        strategies = {
            "grouped": aggregate_all(group_by_grid(originals)),
            "one-group": aggregate_all(group_all_together(originals)),
        }
        reports = compare_strategies(originals, strategies, ["time", "product"])
        assert (
            reports["grouped"].retained("time")
            >= reports["one-group"].retained("time")
        )

    def test_report_accessors(self, small_neighbourhood):
        originals = list(small_neighbourhood.flex_offers)
        aggregates = aggregate_all(group_by_grid(originals))
        report = aggregation_loss(originals, aggregates, ["product"])
        assert report.loss("product") == pytest.approx(
            report.per_measure["product"]["before"] - report.per_measure["product"]["after"]
        )
