"""Golden-fixture regression: measure values must stay byte-stable.

``tests/fixtures/`` holds serialized flex-offer sets — the paper's worked
examples and one seeded 100-offer device population — together with every
registered measure's value on each offer, exactly as computed by the
reference backend at the time the fixture was written.  The tests recompute
each value on **both** backends and require exact equality with the stored
JSON numbers (floats round-trip losslessly through JSON), so

* a PR that drifts any measure's semantics fails loudly, and
* the NumPy backend is pinned to the recorded reference values, not merely
  to whatever the reference produces today.

Offers a measure rejects are recorded as ``{"__error__": <class name>}``
and the same exception class must still be raised.

Regenerate (only after an *intentional* semantics change) with::

    PYTHONPATH=src python tests/backend/test_golden_fixtures.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backend import NUMPY_AVAILABLE, available_backends, get_backend, use_backend
from repro.core import MeasureError
from repro.io import flexoffer_from_dict, flexoffer_to_dict
from repro.measures import get_measure, measure_keys
from repro.workloads import all_paper_flexoffers
from repro.workloads.generator import PopulationSpec, generate_population

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
FIXTURES = ["paper_examples.json", "random_population_100.json"]

#: The seeded population behind ``random_population_100.json``.
RANDOM_SPEC = PopulationSpec(
    counts={
        "ev": 25,
        "heat_pump": 15,
        "dishwasher": 15,
        "washing_machine": 10,
        "refrigerator": 10,
        "solar": 10,
        "wind": 5,
        "v2g": 10,
    },
    seed=2026,
    horizon=48,
)


def _fixture_offers(name: str):
    if name == "paper_examples.json":
        return list(all_paper_flexoffers().items())
    population = generate_population(RANDOM_SPEC)
    assert len(population) == 100
    return [(f"random-{index:03d}", offer) for index, offer in enumerate(population)]


def _evaluate(measure, flex_offer):
    # Through the *active backend's* bulk entry point, not measure.value():
    # per-object entry points never dispatch, so only this route actually
    # pins the NumPy batch implementations to the recorded values.
    try:
        return get_backend().measure_values(measure, [flex_offer])[0]
    except MeasureError as error:
        return {"__error__": type(error).__name__}


def build_fixture(name: str) -> dict:
    """The fixture payload for one offer set (reference-backend values)."""
    keys = sorted(measure_keys())
    entries = []
    with use_backend("reference"):
        for offer_id, flex_offer in _fixture_offers(name):
            entries.append(
                {
                    "id": offer_id,
                    "offer": flexoffer_to_dict(flex_offer),
                    "values": {
                        key: _evaluate(get_measure(key), flex_offer) for key in keys
                    },
                }
            )
    return {"measures": keys, "offers": entries}


def _load(name: str) -> dict:
    return json.loads((FIXTURE_DIR / name).read_text())


@pytest.mark.parametrize("name", FIXTURES)
def test_fixture_offers_round_trip_and_match_their_source(name):
    """The serialized offers still deserialize to the generating objects."""
    stored = _load(name)
    generated = _fixture_offers(name)
    assert [entry["id"] for entry in stored["offers"]] == [
        offer_id for offer_id, _ in generated
    ]
    for entry, (_, flex_offer) in zip(stored["offers"], generated):
        assert flexoffer_from_dict(entry["offer"]) == flex_offer


@pytest.mark.parametrize("name", FIXTURES)
@pytest.mark.parametrize(
    "backend",
    [
        "reference",
        "sharded",
        pytest.param("numpy", marks=pytest.mark.skipif(
            not NUMPY_AVAILABLE, reason="NumPy backend not available")),
    ],
)
def test_measure_values_are_byte_stable(name, backend):
    """Every stored value is reproduced exactly by every backend."""
    assert backend in available_backends()
    stored = _load(name)
    keys = stored["measures"]
    assert keys == sorted(measure_keys()), "measure registry changed"
    with use_backend(backend):
        for entry in stored["offers"]:
            flex_offer = flexoffer_from_dict(entry["offer"])
            for key in keys:
                expected = entry["values"][key]
                actual = _evaluate(get_measure(key), flex_offer)
                # Exact equality on purpose: floats survive the JSON round
                # trip bit-for-bit, so any difference is a semantic drift.
                assert actual == expected, (entry["id"], key, actual, expected)


def test_fixture_files_are_in_sync_with_their_generators():
    """Rebuilding the payload reproduces the committed JSON verbatim."""
    for name in FIXTURES:
        assert build_fixture(name) == _load(name), (
            f"{name} is stale — regenerate with "
            "`PYTHONPATH=src python tests/backend/test_golden_fixtures.py` "
            "only if the change in measure semantics is intentional"
        )


if __name__ == "__main__":
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for fixture_name in FIXTURES:
        payload = build_fixture(fixture_name)
        path = FIXTURE_DIR / fixture_name
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path} ({len(payload['offers'])} offers)")
