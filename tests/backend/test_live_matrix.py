"""Lifecycle of the incrementally maintained (live) ProfileMatrix.

The tentpole contract of the incremental-matrix PR: after *any* interleaving
of arrivals, evictions, expiries and assignments — including runs that cross
the tombstone-ratio compaction threshold — the engine's live matrix (and
every shard matrix sliced out of it) is bit-identical to a fresh pack of the
surviving population.  Also covered: the matrix mutation primitives
themselves (append / tombstone / compact / slice / snapshot), the
``REPRO_MATRIX_COMPACT`` knob, cache seeding via :meth:`MatrixCache.put`,
and the engine's columnar fold against its dictionary path.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from strategies import stream_flexoffers

from repro.backend import NUMPY_AVAILABLE
from repro.backend.cache import MatrixCache, matrix_cache
from repro.core import FlexOffer
from repro.stream import (
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamingEngine,
    Tick,
)

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)

MEASURES = ["time", "energy", "product", "vector", "assignments"]

ARRAYS = ("tes", "tls", "cmin", "cmax", "durations", "offsets", "amin", "amax")


@pytest.fixture(autouse=True)
def clean_cache():
    matrix_cache.clear()
    yield
    matrix_cache.clear()


def make_offer(rng: random.Random, index: int) -> FlexOffer:
    earliest = rng.randrange(0, 8)
    slices = [
        (rng.randint(-3, 2), rng.randint(3, 6))
        for _ in range(rng.randint(1, 4))
    ]
    return FlexOffer(earliest, earliest + rng.randrange(0, 4), slices, name=f"o{index}")


def assert_bit_identical(matrix, fresh):
    import numpy as np

    for name in ARRAYS:
        actual, expected = getattr(matrix, name), getattr(fresh, name)
        assert np.array_equal(actual, expected), name
        assert actual.dtype == expected.dtype, name
    assert matrix.offers == fresh.offers
    assert matrix.size == fresh.size and matrix.dead_count == 0


# --------------------------------------------------------------------- #
# Matrix mutation primitives
# --------------------------------------------------------------------- #


def test_append_tombstone_compact_equal_fresh_pack():
    from repro.backend.matrix import ProfileMatrix

    rng = random.Random(0)
    offers = [make_offer(rng, index) for index in range(40)]
    matrix = ProfileMatrix(offers[:10], compact_threshold=1.0)
    matrix.append(offers[10:25])
    matrix.tombstone([0, 3, 11, 24])
    survivors = [
        offer for offer, alive in zip(offers[:25], matrix.alive.tolist()) if alive
    ]
    matrix.append(offers[25:40])
    survivors += offers[25:40]
    matrix.compact()
    assert_bit_identical(matrix, ProfileMatrix(survivors))


def test_tombstone_ratio_triggers_compaction():
    from repro.backend.matrix import ProfileMatrix

    rng = random.Random(1)
    offers = [make_offer(rng, index) for index in range(10)]
    matrix = ProfileMatrix(offers, compact_threshold=0.3)
    assert matrix.tombstone([0]) is None  # 1/10 < 0.3
    assert matrix.tombstone([1]) is None  # 2/10 < 0.3
    kept = matrix.tombstone([2])  # 3/10 >= 0.3 -> compacts
    assert kept is not None and kept.tolist() == list(range(3, 10))
    assert matrix.dead_count == 0 and matrix.size == 7


def test_compact_threshold_knob(monkeypatch):
    from repro.backend.matrix import (
        DEFAULT_COMPACT_THRESHOLD,
        ProfileMatrix,
    )

    assert ProfileMatrix([]).compact_threshold == DEFAULT_COMPACT_THRESHOLD
    monkeypatch.setenv("REPRO_MATRIX_COMPACT", "0.75")
    assert ProfileMatrix([]).compact_threshold == 0.75
    monkeypatch.setenv("REPRO_MATRIX_COMPACT", "nonsense")
    with pytest.warns(RuntimeWarning):
        assert ProfileMatrix([]).compact_threshold == DEFAULT_COMPACT_THRESHOLD
    with pytest.raises(ValueError):
        ProfileMatrix([], compact_threshold=1.5)


def test_append_overflow_leaves_matrix_untouched():
    from repro.backend.matrix import ProfileMatrix

    rng = random.Random(2)
    offers = [make_offer(rng, index) for index in range(4)]
    matrix = ProfileMatrix(offers)
    huge = FlexOffer(0, 1, [(0, 1 << 45)], name="huge")
    with pytest.raises(OverflowError):
        matrix.append([huge])
    assert_bit_identical(matrix, ProfileMatrix(offers))


def test_slice_equals_fresh_pack_of_chunk():
    from repro.backend.matrix import ProfileMatrix

    rng = random.Random(3)
    offers = [make_offer(rng, index) for index in range(20)]
    matrix = ProfileMatrix(offers)
    assert_bit_identical(matrix.slice(4, 17), ProfileMatrix(offers[4:17]))
    assert_bit_identical(matrix.slice(0, 0), ProfileMatrix([]))
    with pytest.raises(IndexError):
        matrix.slice(5, 25)


def test_snapshot_is_frozen_and_stable_across_mutations():
    import numpy as np

    from repro.backend.matrix import ProfileMatrix

    rng = random.Random(4)
    offers = [make_offer(rng, index) for index in range(12)]
    matrix = ProfileMatrix(offers, compact_threshold=0.2)
    frozen = matrix.snapshot()
    reference = {name: getattr(frozen, name).copy() for name in ARRAYS}
    matrix.append([make_offer(rng, 100 + index) for index in range(30)])
    matrix.tombstone(range(10))
    for name, expected in reference.items():
        assert np.array_equal(getattr(frozen, name), expected), name
    for mutate in (
        lambda: frozen.append([make_offer(rng, 999)]),
        lambda: frozen.tombstone([0]),
        lambda: frozen.compact(),
    ):
        with pytest.raises(ValueError):
            mutate()


# --------------------------------------------------------------------- #
# Cache seeding
# --------------------------------------------------------------------- #


def test_matrix_cache_put_seeds_and_respects_bounds():
    cache = MatrixCache(capacity=2, cell_budget=100)
    assert cache.put(("a",), "entry-a", weight=10) is True
    assert cache.put(("b",), "entry-b", weight=10) is True
    assert cache.put(("c",), "entry-c", weight=10) is True  # evicts "a" (LRU)
    assert cache.stats()["size"] == 2 and cache.evictions == 1
    assert cache.put(("d",), "too-heavy", weight=101) is False
    with cache.bypass():
        assert cache.put(("e",), "bypassed", weight=1) is False
    assert MatrixCache(capacity=0).put(("f",), "disabled") is False


def test_engine_publishes_live_matrix_and_discards_on_mutation():
    rng = random.Random(5)
    engine = StreamingEngine(measures=MEASURES)
    for index in range(8):
        engine.apply(OfferArrived(f"f{index}", make_offer(rng, index)))
    published = engine.live_matrix()
    assert published is not None
    assert matrix_cache.peek(engine.live_offers()) is published
    assert engine.live_matrix() is published  # memoised until mutation
    stale = list(engine.live_offers())
    engine.apply(OfferExpired("f3"))
    assert matrix_cache.peek(stale) is None
    refreshed = engine.live_matrix()
    assert refreshed is not published
    assert matrix_cache.peek(engine.live_offers()) is refreshed


def test_live_matrix_refreshes_after_mutation_even_without_cache():
    """Regression: with the cache unable to retain the snapshot (capacity
    0), the memoised snapshot must still be dropped on mutation — it
    describes the pre-mutation population regardless of cache seeding."""
    rng = random.Random(11)
    engine = StreamingEngine(measures=["time", "energy"])
    for index in range(3):
        engine.apply(OfferArrived(f"f{index}", make_offer(rng, index)))
    original_capacity = matrix_cache.capacity
    matrix_cache.capacity = 0  # every put() is refused
    try:
        first = engine.live_matrix()
        assert len(first) == 3
        engine.apply(OfferArrived("f3", make_offer(rng, 3)))
        refreshed = engine.live_matrix()
        assert refreshed is not first and len(refreshed) == engine.size == 4
    finally:
        matrix_cache.capacity = original_capacity


def test_engine_degrades_on_unpackable_offer_and_rearms_when_empty():
    rng = random.Random(6)
    engine = StreamingEngine(measures=["time", "energy"])
    engine.apply(OfferArrived("ok", make_offer(rng, 0)))
    engine.apply(OfferArrived("huge", FlexOffer(0, 1, [(0, 1 << 45)], name="huge")))
    assert engine.live_matrix() is None  # degraded: dict path only
    report = engine.report()
    assert report.values["energy"] == float(
        sum(offer.cmax - offer.cmin for offer in engine.live_offers())
    )
    engine.apply(OfferExpired("ok"))
    engine.apply(OfferAssigned("huge", start_time=0))
    assert engine.size == 0
    engine.apply(OfferArrived("fresh", make_offer(rng, 1)))
    assert engine.live_matrix() is not None  # re-armed after emptying


def test_tracked_measures_subset_and_validation():
    rng = random.Random(7)
    engine = StreamingEngine(
        measures=MEASURES, window_capacity=4, tracked_measures=["time", "vector"]
    )
    for index in range(5):
        engine.apply(OfferArrived(f"f{index}", make_offer(rng, index)))
    engine.apply(Tick(1))
    summary = engine.snapshot().window_summary
    assert sorted(summary) == ["time", "vector"]
    expected = engine.report().values
    assert summary["time"]["last"] == expected["time"]
    assert summary["vector"]["last"] == expected["vector"]
    from repro.stream import StreamError

    with pytest.raises(StreamError):
        StreamingEngine(
            measures=["time"], window_capacity=4, tracked_measures=["nope"]
        )


# --------------------------------------------------------------------- #
# Hypothesis: any interleaving leaves the live matrix batch-identical
# --------------------------------------------------------------------- #


@pytest.mark.slow
@settings(
    max_examples=50,
    deadline=None,
    # The interleaving loop legitimately drains every generated offer, so
    # the smallest natural example is inherently draw-heavy.
    suppress_health_check=[HealthCheck.large_base_example, HealthCheck.data_too_large],
)
@given(
    data=st.data(),
    threshold=st.sampled_from([0.0, 0.15, 0.5, 1.0]),
    offers=st.lists(stream_flexoffers(), min_size=1, max_size=14),
)
def test_live_matrix_matches_fresh_pack_after_any_interleaving(
    data, threshold, offers
):
    """Arrivals / evictions / expiries / assignments / bulk ingestion, in any
    order and across compaction thresholds, leave the live matrix (and each
    shard matrix sliced from it) bit-identical to a fresh pack of the
    surviving population, and the columnar folds equal the dictionary path."""
    from repro.backend.matrix import ProfileMatrix

    engine = StreamingEngine(measures=MEASURES)
    engine._live.matrix.compact_threshold = threshold
    live_ids: list[str] = []
    pending = list(enumerate(offers))
    clock = 0
    while pending or (live_ids and data.draw(st.booleans(), label="more")):
        choices = ["tick"]
        if pending:
            choices += ["arrive", "bulk"]
        if live_ids:
            choices += ["expire", "assign"]
        action = data.draw(st.sampled_from(choices), label="action")
        if action == "arrive":
            index, offer = pending.pop(0)
            engine.apply(OfferArrived(f"f{index}", offer))
            live_ids.append(f"f{index}")
        elif action == "bulk":
            count = data.draw(
                st.integers(min_value=1, max_value=len(pending)), label="bulk"
            )
            batch = [pending.pop(0) for _ in range(count)]
            engine.bulk_arrive(
                [(f"f{index}", offer) for index, offer in batch]
            )
            live_ids.extend(f"f{index}" for index, _ in batch)
        elif action in ("expire", "assign"):
            victim = live_ids.pop(
                data.draw(
                    st.integers(min_value=0, max_value=len(live_ids) - 1),
                    label="victim",
                )
            )
            if action == "expire":
                engine.apply(OfferExpired(victim))
            else:
                engine.apply(OfferAssigned(victim, start_time=0))
        else:
            clock += 1
            engine.apply(Tick(clock))

    survivors = engine.live_offers()
    matrix = engine.live_matrix()
    assert matrix is not None
    fresh = ProfileMatrix(survivors)
    assert_bit_identical(matrix, fresh)
    # Every shard matrix sliced out of the live matrix equals a fresh pack
    # of the same contiguous chunk (the sharded backend's handles).
    if survivors:
        bounds = sorted(
            {0, len(survivors)}
            | {
                data.draw(
                    st.integers(min_value=0, max_value=len(survivors)),
                    label="bound",
                )
                for _ in range(2)
            }
        )
        for low, high in zip(bounds, bounds[1:]):
            assert_bit_identical(
                matrix.slice(low, high), ProfileMatrix(survivors[low:high])
            )
    # Columnar folds reproduce the dictionary path exactly.
    for measure in engine.measures:
        if engine._unsupported_counts[measure.key]:
            continue
        folded = engine._live.fold(measure.key)
        expected = [
            engine._values[offer_id][measure.key] for offer_id in engine.live_ids()
        ]
        assert folded is None or folded == expected, measure.key
