"""Behaviour of the fingerprint-keyed ProfileMatrix cache.

Covers the satellite contract of the sharding PR: hit/miss accounting on
stable vs. mutated populations, proactive invalidation from every
population-mutating :class:`StreamingEngine` event type, survival across
non-mutating events, LRU bounds, the disable knob, and thread-safety of
``use_backend`` interleavings around the shared cache.
"""

from __future__ import annotations

import threading

import pytest

from repro.backend import NUMPY_AVAILABLE, use_backend
from repro.backend.cache import MatrixCache, matrix_cache
from repro.core import FlexOffer
from repro.measures import evaluate_set
from repro.stream import (
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamingEngine,
    Tick,
)

requires_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)

POPULATION = [
    FlexOffer(0, 4, [(1, 3), (0, 2)], name="a"),
    FlexOffer(2, 6, [(2, 5)], 2, 4, name="b"),
    FlexOffer(1, 6, [(0, 1), (1, 1), (0, 3)], name="c"),
    FlexOffer(5, 9, [(3, 3)], name="d"),
]

ENGINE_MEASURES = ["time", "energy", "product", "vector"]


@pytest.fixture(autouse=True)
def clean_cache():
    """Each test observes only its own entries (counters are deltas)."""
    matrix_cache.clear()
    yield
    matrix_cache.clear()


def build_counter():
    """A builder stub counting how many times it actually ran."""
    calls = []

    def builder(offers):
        calls.append(tuple(offers))
        return ("matrix", len(offers))

    return builder, calls


# --------------------------------------------------------------------- #
# Core LRU semantics (no NumPy required)
# --------------------------------------------------------------------- #


def test_hit_on_stable_population_miss_on_mutated():
    cache = MatrixCache(capacity=4)
    builder, calls = build_counter()
    first = cache.get(POPULATION, builder)
    again = cache.get(POPULATION, builder)
    assert first is again and len(calls) == 1
    assert (cache.hits, cache.misses) == (1, 1)
    # Same content, different objects: fingerprints match, still a hit.
    clone = [
        FlexOffer(
            f.earliest_start,
            f.latest_start,
            [(s.amin, s.amax) for s in f.slices],
            f.cmin,
            f.cmax,
            name=f.name,
        )
        for f in POPULATION
    ]
    assert cache.get(clone, builder) is first
    # A mutated population is a different key -> miss.
    cache.get(POPULATION[1:], builder)
    assert len(calls) == 2
    assert cache.stats()["size"] == 2


def test_lru_eviction_and_capacity_bound():
    cache = MatrixCache(capacity=2)
    builder, calls = build_counter()
    cache.get(POPULATION[:1], builder)
    cache.get(POPULATION[:2], builder)
    cache.get(POPULATION[:1], builder)  # refresh entry 1
    cache.get(POPULATION[:3], builder)  # evicts the stale entry 2
    assert cache.evictions == 1
    assert cache.peek(POPULATION[:1]) is not None
    assert cache.peek(POPULATION[:2]) is None
    assert len(cache) == 2


def test_capacity_zero_disables_storage():
    cache = MatrixCache(capacity=0)
    builder, calls = build_counter()
    cache.get(POPULATION, builder)
    cache.get(POPULATION, builder)
    assert len(calls) == 2 and len(cache) == 0
    with pytest.raises(ValueError):
        MatrixCache(capacity=-1)


def test_environment_capacity(monkeypatch):
    monkeypatch.setenv("REPRO_MATRIX_CACHE", "3")
    assert MatrixCache().capacity == 3
    # Malformed values warn and fall back — the process-wide cache is built
    # at import time, so they must never make `import repro` raise.
    monkeypatch.setenv("REPRO_MATRIX_CACHE", "off")
    with pytest.warns(RuntimeWarning):
        from repro.backend.cache import DEFAULT_CAPACITY

        assert MatrixCache().capacity == DEFAULT_CAPACITY


def test_renamed_population_does_not_alias():
    """Fingerprints ignore names, but the cache must not serve a renamed
    population another population's offer objects (extension points such as
    an overridden ``supports`` see ``matrix.offers``)."""
    cache = MatrixCache(capacity=4)
    builder, calls = build_counter()
    cache.get(POPULATION, builder)
    renamed = [
        FlexOffer(
            f.earliest_start,
            f.latest_start,
            [(s.amin, s.amax) for s in f.slices],
            f.cmin,
            f.cmax,
            name=f"renamed-{index}",
        )
        for index, f in enumerate(POPULATION)
    ]
    cache.get(renamed, builder)
    assert len(calls) == 2  # distinct entry, not a hit on the original


def test_builder_errors_are_not_cached():
    cache = MatrixCache(capacity=4)
    attempts = []

    def failing(offers):
        attempts.append(1)
        raise OverflowError("unpackable")

    for _ in range(2):
        with pytest.raises(OverflowError):
            cache.get(POPULATION, failing)
    assert len(attempts) == 2 and len(cache) == 0


def test_cell_budget_bounds_retained_weight():
    """Retention is bounded in reported weight (packed slices), not just
    entry count — 32 entries of 1M offers each must not pin gigabytes."""
    cache = MatrixCache(capacity=10, cell_budget=5)

    def builder(offers):
        return ("matrix", len(offers))

    def weigher(value):
        return value[1]

    cache.get(POPULATION[:2], builder, weigher)  # weight 2
    cache.get(POPULATION[:3], builder, weigher)  # weight 3 -> total 5
    assert cache.stats()["weight"] == 5 and len(cache) == 2
    cache.get(POPULATION[:1], builder, weigher)  # over budget: evicts LRU
    assert cache.stats()["weight"] <= 5
    assert cache.peek(POPULATION[:2]) is None
    assert cache.peek(POPULATION[:1]) is not None
    # An entry heavier than the whole budget is simply not retained — and
    # must not evict the entries that do fit.
    survivors = len(cache)
    oversized = POPULATION + POPULATION[:2]  # weight 6 > 5
    cache.get(oversized, builder, weigher)
    assert cache.peek(oversized) is None
    assert len(cache) == survivors
    # Discarding restores the weight accounting.
    retained = cache.stats()["weight"]
    assert cache.discard(POPULATION[:1]) is True
    assert cache.stats()["weight"] == retained - 1


def test_bypass_serves_hits_but_stores_nothing():
    """One-shot evaluations (streaming arrival batches) must not occupy
    LRU capacity or bump the generation counter."""
    cache = MatrixCache(capacity=4)
    builder, calls = build_counter()
    first = cache.get(POPULATION, builder)
    generation = cache.generation
    with cache.bypass():
        assert cache.get(POPULATION, builder) is first  # hits still served
        cache.get(POPULATION[:2], builder)  # miss: built but not stored
        with cache.bypass():  # nests
            cache.get(POPULATION[:3], builder)
    assert len(cache) == 1
    assert len(calls) == 3
    assert cache.generation == generation
    cache.get(POPULATION[:2], builder)  # stores again once outside
    assert len(cache) == 2


def test_discard_and_clear():
    cache = MatrixCache(capacity=4)
    builder, _ = build_counter()
    cache.get(POPULATION, builder)
    assert cache.discard(POPULATION) is True
    assert cache.discard(POPULATION) is False
    cache.get(POPULATION, builder)
    assert cache.clear() == 1 and len(cache) == 0


# --------------------------------------------------------------------- #
# Wiring: the NumPy backend packs through the cache
# --------------------------------------------------------------------- #


@requires_numpy
def test_repeated_evaluate_set_hits_the_cache():
    with use_backend("numpy"):
        before = matrix_cache.stats()
        first = evaluate_set(POPULATION)
        warm = matrix_cache.stats()
        second = evaluate_set(POPULATION)
        after = matrix_cache.stats()
    assert second == first
    assert warm["misses"] == before["misses"] + 1
    assert after["misses"] == warm["misses"]  # second run: no repacking
    assert after["hits"] > warm["hits"]


@requires_numpy
def test_unpackable_population_falls_back_uncached():
    huge = [FlexOffer(0, 1, [(0, 1 << 50)], name="huge")]
    with use_backend("numpy"):
        report = evaluate_set(huge)
    assert report.size == 1
    assert len(matrix_cache) == 0


# --------------------------------------------------------------------- #
# Wiring: StreamingEngine mutations invalidate proactively
# --------------------------------------------------------------------- #


def make_engine(**kwargs):
    engine = StreamingEngine(measures=ENGINE_MEASURES, **kwargs)
    for index, offer in enumerate(POPULATION):
        engine.apply(OfferArrived(f"f{index}", offer))
    return engine


@requires_numpy
@pytest.mark.parametrize(
    "event",
    [
        OfferArrived("fresh", FlexOffer(0, 2, [(1, 2)], name="fresh")),
        OfferExpired("f1"),
        OfferAssigned("f1", start_time=2, price=10.0),
    ],
    ids=["arrival", "expiry", "assignment"],
)
def test_population_mutating_events_invalidate(event):
    engine = make_engine()
    with use_backend("numpy"):
        evaluate_set(engine.live_offers())
    assert matrix_cache.peek(engine.live_offers()) is not None
    stale = list(engine.live_offers())
    engine.apply(event)
    assert matrix_cache.peek(stale) is None


@requires_numpy
def test_auto_expiry_tick_invalidates():
    engine = make_engine(auto_expire=True)
    with use_backend("numpy"):
        evaluate_set(engine.live_offers())
    stale = list(engine.live_offers())
    engine.apply(Tick(100))  # every latest_start < 100 -> all expire
    assert engine.size == 0
    assert matrix_cache.peek(stale) is None


@requires_numpy
def test_non_mutating_tick_keeps_the_entry():
    engine = make_engine()
    with use_backend("numpy"):
        evaluate_set(engine.live_offers())
    engine.apply(Tick(1))  # no auto-expiry configured: population unchanged
    assert matrix_cache.peek(engine.live_offers()) is not None


@requires_numpy
def test_bulk_arrive_invalidates_once():
    engine = make_engine()
    with use_backend("numpy"):
        evaluate_set(engine.live_offers())
    stale = list(engine.live_offers())
    arrivals = [
        (f"bulk{index}", FlexOffer(index, index + 2, [(1, 2)], name=f"bulk{index}"))
        for index in range(5)
    ]
    with use_backend("numpy"):
        engine.bulk_arrive(arrivals)
    assert matrix_cache.peek(stale) is None
    assert engine.size == len(POPULATION) + 5


# --------------------------------------------------------------------- #
# Thread-safety of use_backend around the shared cache
# --------------------------------------------------------------------- #


@requires_numpy
def test_use_backend_is_thread_safe_around_the_cache():
    """Interleaved backend contexts on many threads: every thread sees its
    own backend selection, and the shared cache never corrupts results."""
    populations = [POPULATION, POPULATION[:3], POPULATION[1:], POPULATION[:2]]
    with use_backend("reference"):
        expected = [evaluate_set(p) for p in populations]
    failures = []
    barrier = threading.Barrier(8)

    def worker(thread_index):
        backend = "numpy" if thread_index % 2 else "reference"
        population = populations[thread_index % len(populations)]
        target = expected[thread_index % len(populations)]
        barrier.wait()
        try:
            for _ in range(25):
                with use_backend(backend):
                    report = evaluate_set(population)
                if report != target:  # pragma: no cover - failure path
                    failures.append((thread_index, report))
        except Exception as error:  # pragma: no cover - failure path
            failures.append((thread_index, error))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
    stats = matrix_cache.stats()
    assert stats["size"] <= stats["capacity"]
