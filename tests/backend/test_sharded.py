"""Unit tests of the sharded backend's partition/merge machinery.

The differential conformance suite (``test_conformance.py``) pins the
sharded backend observationally equivalent to the reference on hypothesis
populations; these tests target the sharding mechanics directly — chunking,
shard-order error propagation, the aggregation re-anchor merge, delegation
thresholds, executor knobs and the process-pool path — on hand-built
populations where the expected shard layout is known.
"""

from __future__ import annotations

import pytest

from repro.backend import (
    ShardedBackend,
    available_backends,
    get_backend,
    use_backend,
)
from repro.backend.sharded import (
    DEFAULT_MIN_POPULATION,
    ENV_EXECUTOR,
    ENV_MIN_POPULATION,
    ENV_SHARDS,
)
from repro.core import FlexOffer, MeasureError
from repro.core.errors import BackendError
from repro.measures import evaluate_set, get_measure
from repro.measures.base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
)
from repro.measures.setwise import resolve_measures

#: A ragged population crossing shard boundaries however it is chunked.
OFFERS = [
    FlexOffer(0, 4, [(1, 3), (0, 2)], name="a"),
    FlexOffer(2, 2, [(2, 5)], 2, 4, name="b"),
    FlexOffer(1, 6, [(0, 1), (1, 1), (0, 3)], name="c"),
    FlexOffer(5, 9, [(3, 3)], name="d"),
    FlexOffer(0, 0, [(1, 2), (2, 2)], 3, 4, name="e"),
    FlexOffer(3, 7, [(0, 4)], name="f"),
    FlexOffer(2, 5, [(1, 1), (0, 2), (2, 3)], name="g"),
]


@pytest.fixture
def sharded():
    """A three-shard thread backend with no delegation threshold."""
    backend = ShardedBackend(shards=3, min_population=1)
    yield backend
    backend.close()


def test_sharded_backend_is_registered_by_default():
    assert "sharded" in available_backends()
    assert get_backend("sharded").name == "sharded"


def test_partition_is_contiguous_and_near_even(sharded):
    chunks = sharded._partition(list(range(7)))
    assert [len(chunk) for chunk in chunks] == [3, 2, 2]
    assert [item for chunk in chunks for item in chunk] == list(range(7))
    # Fewer items than shards: empty chunks are dropped, order preserved.
    assert ShardedBackend(shards=4, min_population=1)._partition([1, 2]) == [[1], [2]]


def test_measure_values_concatenate_in_population_order(sharded):
    measure = get_measure("product")
    expected = [measure.value(flex_offer) for flex_offer in OFFERS]
    assert sharded.measure_values(measure, OFFERS) == expected


def test_evaluate_population_matches_reference(sharded):
    measures = resolve_measures(None)
    expected = get_backend("reference").evaluate_population(measures, OFFERS)
    assert sharded.evaluate_population(measures, OFFERS) == expected


def test_aggregate_merge_reanchors_shards(sharded):
    # Shard 0 holds the globally earliest start; shard 2 extends the horizon.
    expected = get_backend("reference").aggregate_columns(OFFERS)
    assert sharded.aggregate_columns(OFFERS) == expected
    # And with the anchor in a *later* shard, so the merge must shift shard 0.
    reversed_offers = list(reversed(OFFERS))
    expected = get_backend("reference").aggregate_columns(reversed_offers)
    assert sharded.aggregate_columns(reversed_offers) == expected


def test_feasible_profiles_and_feasibility_concatenate(sharded):
    reference = get_backend("reference")
    for target in ("min", "max"):
        assert sharded.feasible_profiles(OFFERS, target) == (
            reference.feasible_profiles(OFFERS, target)
        )
    with pytest.raises(ValueError):
        sharded.feasible_profiles(OFFERS, "median")
    starts = [flex_offer.earliest_start for flex_offer in OFFERS]
    values = reference.feasible_profiles(OFFERS, "min")
    bad_values = list(values)
    bad_values[-1] = tuple(v + 1000 for v in bad_values[-1])  # last shard fails
    assert sharded.assignment_feasibility(OFFERS, starts, values) == [True] * len(
        OFFERS
    )
    expected = reference.assignment_feasibility(OFFERS, starts, bad_values)
    assert sharded.assignment_feasibility(OFFERS, starts, bad_values) == expected
    assert expected[-1] is False


def test_error_surfaces_from_lowest_failing_shard(sharded):
    """The exception position matches the reference scalar loop: the first
    offending offer in population order decides, not executor timing."""

    class Explosive(FlexibilityMeasure):
        key = "sharded-explosive-test"
        label = "Explosive"
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )

        def value(self, flex_offer):
            if flex_offer.name in ("c", "f"):
                raise MeasureError(f"boom on {flex_offer.name}")
            return 1.0

    with pytest.raises(MeasureError, match="boom on c"):
        sharded.measure_values(Explosive(), OFFERS)


def test_support_error_does_not_preempt_earlier_value_error(sharded):
    """Assembly is measure-major like the reference loop: measure 0's value
    error must surface even when measure 1's ``supports`` raises."""

    class BadValue(FlexibilityMeasure):
        key = "sharded-bad-value-test"
        label = "BadValue"
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )

        def value(self, flex_offer):
            raise MeasureError("value exploded first")

    class BadSupport(FlexibilityMeasure):
        key = "sharded-bad-support-test"
        label = "BadSupport"
        characteristics = BadValue.characteristics

        def value(self, flex_offer):
            return 0.0

        def supports(self, flex_offer):
            raise RuntimeError("supports exploded")

    with pytest.raises(MeasureError, match="value exploded first"):
        sharded.evaluate_population([BadValue(), BadSupport()], OFFERS)
    with pytest.raises(RuntimeError, match="supports exploded"):
        sharded.evaluate_population([BadSupport(), BadValue()], OFFERS)


def test_skip_false_with_raising_supports_matches_reference(sharded):
    """skip_unsupported=False + an early-shard unsupported verdict + a
    later-shard raising ``supports``: the reference's lazy all() never hits
    the raiser and still returns values — so must the sharded assembly."""

    class Quirky(FlexibilityMeasure):
        key = "sharded-quirky-support-test"
        label = "Quirky"
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )

        def supports(self, flex_offer):
            if flex_offer.name == "g":  # last shard
                raise RuntimeError("supports exploded late")
            return flex_offer.name != "a"  # first shard: unsupported

        def value(self, flex_offer):
            return 1.0

    measures = [Quirky()]
    expected = get_backend("reference").evaluate_population(
        measures, OFFERS, skip_unsupported=False
    )
    assert sharded.evaluate_population(
        measures, OFFERS, skip_unsupported=False
    ) == expected
    assert expected[0] == {"sharded-quirky-support-test": float(len(OFFERS))}


def test_set_value_override_falls_back_to_full_population(sharded):
    """A non-decomposable set semantics must not be shard-merged."""

    class MaxTime(FlexibilityMeasure):
        key = "sharded-max-time-test"
        label = "MaxTime"
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )

        def value(self, flex_offer):
            return float(flex_offer.time_flexibility)

        def set_value(self, flex_offers):  # max, not the default sum
            return max((self.value(f) for f in flex_offers), default=0.0)

    values, skipped = sharded.evaluate_population([MaxTime()], OFFERS)
    assert skipped == []
    assert values["sharded-max-time-test"] == max(
        f.time_flexibility for f in OFFERS
    )


def test_mean_measures_combine_over_concatenated_values(sharded):
    """Relative area averages per-offer values: the shard merge must divide
    by the population size once, not average per-shard averages."""
    measure = get_measure("relative_area")
    expected = measure.set_value(OFFERS)
    assert sharded.measure_set_value(measure, OFFERS) == expected


def test_skip_unsupported_merges_support_across_shards(sharded):
    mixed = FlexOffer(0, 1, [(-2, 3)], name="mixed")
    population = OFFERS + [mixed]  # the offending offer sits in the last shard
    reference = get_backend("reference").evaluate_population(
        resolve_measures(None), population
    )
    assert sharded.evaluate_population(resolve_measures(None), population) == (
        reference
    )
    assert "absolute_area" in reference[1]  # sanity: something was skipped


def test_delegation_below_min_population():
    backend = ShardedBackend(shards=3, min_population=DEFAULT_MIN_POPULATION)
    assert backend._delegates(OFFERS)
    measure = get_measure("energy")
    expected = [measure.value(flex_offer) for flex_offer in OFFERS]
    assert backend.measure_values(measure, OFFERS) == expected
    assert ShardedBackend(shards=1, min_population=1)._delegates(OFFERS)


def test_dispatch_through_use_backend(sharded):
    """evaluate_set through the registry-selected sharded backend."""
    from repro.backend import register_backend

    register_backend(ShardedBackend(shards=3, min_population=1))
    try:
        with use_backend("reference"):
            expected = evaluate_set(OFFERS)
        with use_backend("sharded"):
            report = evaluate_set(OFFERS)
        assert report == expected
    finally:
        register_backend(ShardedBackend())


def test_environment_knobs(monkeypatch):
    monkeypatch.setenv(ENV_SHARDS, "5")
    monkeypatch.setenv(ENV_EXECUTOR, "thread")
    monkeypatch.setenv(ENV_MIN_POPULATION, "17")
    backend = ShardedBackend()
    assert backend.shards == 5
    assert backend.executor_kind == "thread"
    assert backend.min_population == 17


def test_malformed_environment_warns_and_defaults(monkeypatch):
    """Bad env knobs must not break registry bootstrap: the default
    instance is constructed there, so they warn and fall back instead."""
    monkeypatch.setenv(ENV_SHARDS, "four")
    monkeypatch.setenv(ENV_EXECUTOR, "rocket")
    monkeypatch.setenv(ENV_MIN_POPULATION, "-3")
    with pytest.warns(RuntimeWarning):
        backend = ShardedBackend()
    assert backend.shards >= 1
    assert backend.executor_kind == "thread"
    assert backend.min_population == DEFAULT_MIN_POPULATION


def test_explicit_arguments_fail_fast():
    with pytest.raises(BackendError):
        ShardedBackend(shards=0)
    with pytest.raises(BackendError):
        ShardedBackend(executor="rocket")
    with pytest.raises(BackendError):
        ShardedBackend(min_population=-1)
    with pytest.raises(BackendError):
        ShardedBackend(inner="sharded")  # would recurse into itself
    with pytest.raises(BackendError):
        ShardedBackend(inner="nunpy")  # unknown inner fails at construction


def test_close_is_idempotent_and_pool_recreates(sharded):
    measure = get_measure("time")
    first = sharded.measure_values(measure, OFFERS)
    sharded.close()
    sharded.close()
    assert sharded.measure_values(measure, OFFERS) == first


@pytest.mark.slow
def test_process_executor_agrees_with_reference():
    """The process pool ships shards by pickle and must merge identically."""
    backend = ShardedBackend(shards=2, min_population=1, executor="process")
    try:
        measure = get_measure("product")
        expected = [measure.value(flex_offer) for flex_offer in OFFERS]
        assert backend.measure_values(measure, OFFERS) == expected
        reference = get_backend("reference").evaluate_population(
            resolve_measures(None), OFFERS
        )
        assert backend.evaluate_population(resolve_measures(None), OFFERS) == (
            reference
        )
    finally:
        backend.close()
