"""Differential conformance: every backend must match the reference.

The reference backend *is* the semantics (the library's original per-object
code); every other backend is only trustworthy if it is observationally
equivalent.  These hypothesis properties drive random populations — ragged
profile lengths, mixed consumption/production signs, tight total
constraints — through the reference backend and each vectorized/parallel
backend (``numpy``, ``sharded``) and assert:

* per-offer measure values agree exactly on integer paths and to 1e-9 on
  float paths, for every registered measure in every configuration;
* set values, ``evaluate_set`` reports, start-aligned aggregates, feasible
  extreme profiles, assignment feasibility and bulk support verdicts agree
  likewise;
* when one backend rejects an input (``MeasureError`` family), the other
  rejects it too — with the same exception class;
* the streaming engine's bulk ingestion reproduces per-event ingestion.

The registered ``sharded`` instance is swapped for one with three shards
and no delegation threshold for the duration of this module, so the tiny
hypothesis populations genuinely exercise the shard partition/merge paths
rather than being delegated whole to the inner backend.

Everything here is marked ``slow`` together with the other hypothesis
suites; CI runs it in the dedicated property-tests job.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import grouping_parameters, populations

from repro.aggregation import aggregate_start_aligned
from repro.backend import (
    NUMPY_AVAILABLE,
    ShardedBackend,
    get_backend,
    register_backend,
    use_backend,
)
from repro.core import (
    MeasureError,
    batch_assignment_feasibility,
    batch_feasible_profiles,
)
from repro.measures import (
    MixedPolicy,
    WeightedFlexibility,
    evaluate_set,
    get_measure,
)
from repro.stream import OfferArrived, StreamingEngine

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available"),
]

#: The backends pinned against the reference in every property below.
#: ``sharded-remote`` is the same sharded merge logic with every shard
#: dispatched over TCP to loopback worker processes — the conformance
#: properties double as a wire-serialization differential.
VECTOR_BACKENDS = ["numpy", "sharded", "sharded-remote"]

#: Measures whose values are exact integers — backends must agree exactly.
INTEGER_KEYS = {"time", "energy", "product", "assignments", "absolute_area"}


class _RemoteSharded(ShardedBackend):
    """A second registry slot so local and remote sharded coexist."""

    name = "sharded-remote"


@pytest.fixture(autouse=True, scope="module")
def _sharded_exercises_merge_paths():
    """Make the registered ``sharded`` backend shard even tiny populations,
    and register a remote twin served by real worker subprocesses."""
    from repro.backend.dispatch import _REGISTRY
    from repro.cluster import LocalCluster

    tuned = ShardedBackend(shards=3, min_population=1)
    register_backend(tuned)
    cluster = LocalCluster(workers=4)
    remote = _RemoteSharded(
        shards=3, executor="remote", min_population=1, cluster=cluster.spec()
    )
    register_backend(remote)
    yield
    tuned.close()
    remote.close()
    cluster.close()
    _REGISTRY.pop(_RemoteSharded.name, None)
    register_backend(ShardedBackend())


#: Every registered measure in every configuration worth distinguishing.
MEASURE_VARIANTS = [
    ("time", lambda: get_measure("time")),
    ("energy", lambda: get_measure("energy")),
    ("product", lambda: get_measure("product")),
    ("vector-l1", lambda: get_measure("vector", norm="l1")),
    ("vector-l2", lambda: get_measure("vector", norm="l2")),
    ("vector-max", lambda: get_measure("vector", norm="max")),
    ("series-l1", lambda: get_measure("series", norm="l1")),
    ("series-l2", lambda: get_measure("series", norm="l2")),
    ("series-max", lambda: get_measure("series", norm="max")),
    ("assignments", lambda: get_measure("assignments")),
    ("assignments-log", lambda: get_measure("assignments", logarithmic=True)),
    (
        "assignments-constrained",
        lambda: get_measure("assignments", respect_total_constraints=True),
    ),
    ("absolute-forbid", lambda: get_measure("absolute_area")),
    (
        "absolute-paper",
        lambda: get_measure("absolute_area", mixed_policy=MixedPolicy.PAPER_EXAMPLE),
    ),
    (
        "absolute-raw",
        lambda: get_measure("absolute_area", mixed_policy=MixedPolicy.RAW_AREA),
    ),
    ("relative-forbid", lambda: get_measure("relative_area")),
    (
        "relative-paper",
        lambda: get_measure("relative_area", mixed_policy=MixedPolicy.PAPER_EXAMPLE),
    ),
    (
        "weighted",
        lambda: WeightedFlexibility({"time": 1.0, "vector": 2.0, "product": 0.5}),
    ),
]

VARIANT_IDS = [label for label, _ in MEASURE_VARIANTS]
VARIANT_FACTORIES = [factory for _, factory in MEASURE_VARIANTS]


def outcome(callable_):
    """``("ok", value)`` or ``("error", <exact exception class>)`` of a call.

    The exact class matters: callers catch specific ``MeasureError``
    subclasses (e.g. ``UnsupportedFlexOfferError`` to retry with a mixed
    policy), so backends must raise the same subclass on the same input.
    """
    try:
        return "ok", callable_()
    except MeasureError as error:
        return "error", type(error)
    except (OverflowError, ValueError) as error:  # pragma: no cover - debugging aid
        return "error", type(error)


def assert_values_agree(key, reference, vectorized):
    assert len(reference) == len(vectorized)
    for expected, actual in zip(reference, vectorized):
        if key in INTEGER_KEYS:
            assert actual == expected
        else:
            assert math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-9)


# --------------------------------------------------------------------- #
# Per-offer measure values
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize("factory", VARIANT_FACTORIES, ids=VARIANT_IDS)
@given(population=populations(max_size=8))
@settings(max_examples=25, deadline=None)
def test_per_offer_values_agree(backend, factory, population):
    measure = factory()
    reference = outcome(
        lambda: get_backend("reference").measure_values(measure, population)
    )
    vectorized = outcome(
        lambda: get_backend(backend).measure_values(measure, population)
    )
    if reference[0] == "ok" and vectorized[0] == "ok":
        assert_values_agree(measure.key, reference[1], vectorized[1])
    else:
        # Error parity includes the exact exception class: callers catch
        # specific MeasureError subclasses (retry-with-mixed-policy flows).
        assert vectorized == reference


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize("factory", VARIANT_FACTORIES, ids=VARIANT_IDS)
@given(population=populations(max_size=8))
@settings(max_examples=25, deadline=None)
def test_set_values_agree(backend, factory, population):
    measure = factory()
    with use_backend("reference"):
        reference = outcome(lambda: measure.set_value(population))
    with use_backend(backend):
        vectorized = outcome(lambda: measure.set_value(population))
    if reference[0] == "ok" and vectorized[0] == "ok":
        if measure.key in INTEGER_KEYS:
            assert vectorized[1] == reference[1]
        else:
            assert math.isclose(
                vectorized[1], reference[1], rel_tol=1e-9, abs_tol=1e-9
            )
    else:
        assert vectorized == reference  # same exact exception class


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@given(population=populations(max_size=10))
@settings(max_examples=25, deadline=None)
def test_evaluate_set_reports_agree(backend, population):
    """The full-registry report: identical keys, skips and values."""
    with use_backend("reference"):
        reference = outcome(lambda: evaluate_set(population))
    with use_backend(backend):
        vectorized = outcome(lambda: evaluate_set(population))
    if reference[0] != "ok" or vectorized[0] != "ok":
        assert vectorized == reference  # same exact exception class
        return
    assert vectorized[1].skipped == reference[1].skipped
    assert set(vectorized[1].values) == set(reference[1].values)
    for key, expected in reference[1].values.items():
        actual = vectorized[1].values[key]
        if key in INTEGER_KEYS:
            assert actual == expected
        else:
            assert math.isclose(actual, expected, rel_tol=1e-9, abs_tol=1e-9)


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize(
    "factory",
    [lambda: get_measure("relative_area"), lambda: get_measure("series")],
    ids=["relative_area", "series"],
)
@given(population=populations(max_size=10))
@settings(max_examples=25, deadline=None)
def test_measure_support_agrees(backend, factory, population):
    """Bulk applicability verdicts match the scalar ``supports`` loop."""
    measure = factory()
    reference = get_backend("reference").measure_support(measure, population)
    vectorized = get_backend(backend).measure_support(measure, population)
    assert vectorized == reference
    assert reference == [measure.supports(flex_offer) for flex_offer in population]


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@given(members=populations(min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_start_aligned_aggregation_agrees(backend, members):
    """Aggregates are integer structures: equality must be exact (==)."""
    with use_backend("reference"):
        reference = aggregate_start_aligned(members)
    with use_backend(backend):
        vectorized = aggregate_start_aligned(members)
    assert vectorized == reference


# --------------------------------------------------------------------- #
# Assignments
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize("target", ["min", "max"])
@given(population=populations(max_size=8))
@settings(max_examples=40, deadline=None)
def test_feasible_profiles_agree(backend, target, population):
    with use_backend("reference"):
        reference = batch_feasible_profiles(population, target)
    with use_backend(backend):
        vectorized = batch_feasible_profiles(population, target)
    assert vectorized == reference


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@given(
    population=populations(min_size=1, max_size=6),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_assignment_feasibility_agrees(backend, population, data):
    """Candidate assignments around the valid region: same verdict per offer."""
    starts = []
    profiles = []
    for flex_offer in population:
        starts.append(
            data.draw(
                st.integers(
                    min_value=flex_offer.earliest_start - 1,
                    max_value=flex_offer.latest_start + 1,
                )
            )
        )
        profiles.append(
            tuple(
                data.draw(st.integers(min_value=s.amin - 1, max_value=s.amax + 1))
                for s in flex_offer.slices
            )
        )
    with use_backend("reference"):
        reference = batch_assignment_feasibility(population, starts, profiles)
    with use_backend(backend):
        vectorized = batch_assignment_feasibility(population, starts, profiles)
    assert vectorized == reference


# --------------------------------------------------------------------- #
# Streaming bulk ingestion
# --------------------------------------------------------------------- #

ENGINE_MEASURES = [
    "time",
    "energy",
    "product",
    "vector",
    "series",
    "assignments",
    "absolute_area",
    "relative_area",
]


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@given(population=populations(max_size=8), parameters=grouping_parameters())
@settings(max_examples=25, deadline=None)
def test_bulk_arrive_matches_per_event_ingestion(backend, population, parameters):
    """bulk_arrive under a bulk backend ≡ per-event arrivals (reference)."""
    # The relative-area measure supports — but cannot evaluate — offers whose
    # totals pin the energy to exactly zero; both ingestion paths would raise
    # identically, which the set-value properties already cover.  Keep the
    # engine comparison on evaluable populations.
    population = [f for f in population if abs(f.cmin) + abs(f.cmax) > 0]
    arrivals = [(f"f{index}", offer) for index, offer in enumerate(population)]
    with use_backend("reference"):
        per_event = StreamingEngine(parameters=parameters, measures=ENGINE_MEASURES)
        for offer_id, offer in arrivals:
            per_event.apply(OfferArrived(offer_id, offer))
        reference_snapshot = per_event.snapshot()
    with use_backend(backend):
        bulk = StreamingEngine(parameters=parameters, measures=ENGINE_MEASURES)
        bulk.bulk_arrive(arrivals)
        bulk_snapshot = bulk.snapshot()
    assert bulk_snapshot == reference_snapshot


# --------------------------------------------------------------------- #
# Generation objectives (batch_objectives)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize("metric", ["absolute", "squared"])
@given(
    population=populations(min_size=0, max_size=8),
    seed=st.integers(min_value=0, max_value=2**16),
    reference_kind=st.sampled_from(["none", "int", "float", "empty"]),
)
@settings(max_examples=30, deadline=None)
def test_batch_objectives_agree(backend, metric, population, seed, reference_kind):
    """Generation objectives equal the reference fold bit-for-bit.

    Schedules are random valid assignments (the evolutionary scheduler's
    gene shape), references cover the int, float and empty spans; the
    sharded instance partitions the schedules across three shards, so the
    concat merge is exercised too.  Exactness is asserted with ``==`` —
    the contract is bit-identity, not closeness, because scheduler
    selection decisions ride on these floats.
    """
    import random as random_module

    from repro.core import TimeSeries
    from repro.scheduling.stochastic import random_profile

    rng = random_module.Random(seed)
    schedules = [
        [random_profile(flex_offer, rng) for flex_offer in population]
        for _ in range(3)
    ]
    schedules.append([])  # the empty-schedule anchor (load at time 0)
    if reference_kind == "none":
        reference = None
    elif reference_kind == "int":
        reference = TimeSeries(
            rng.randint(0, 6), tuple(rng.randint(-9, 9) for _ in range(6))
        )
    elif reference_kind == "float":
        reference = TimeSeries(
            rng.randint(0, 6),
            tuple(rng.random() * 10 - 5 for _ in range(5)),
        )
    else:
        reference = TimeSeries(rng.randint(0, 6), ())
    expected = get_backend("reference").batch_objectives(
        schedules, reference, metric
    )
    actual = get_backend(backend).batch_objectives(schedules, reference, metric)
    assert actual == expected


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
def test_batch_objectives_metric_error_parity(backend):
    """An unknown metric raises ``ValueError`` up front on every backend."""
    with pytest.raises(ValueError):
        get_backend("reference").batch_objectives([[]], None, "cubic")
    with pytest.raises(ValueError):
        get_backend(backend).batch_objectives([[]], None, "cubic")


@pytest.mark.parametrize("backend", VECTOR_BACKENDS)
@pytest.mark.parametrize(
    "schedule",
    [
        [(0, (True, 2))],  # bool values: the scalar TimeSeries rejects them
        [(0, (1.5, 2))],  # float values
        [(True, (1, 2))],  # bool start
        [(-1, (1, 2))],  # negative start (time domain is natural numbers)
        [(0, (1 << 45, 2))],  # beyond the exactly-packable magnitude
        [(0, (10**30, 2))],  # beyond int64 entirely
    ],
    ids=["bool-value", "float-value", "bool-start", "negative-start", "huge", "unbounded"],
)
def test_batch_objectives_fallback_parity(backend, schedule):
    """Inputs the packed grid cannot hold take the scalar path — same value
    or same exception class as the reference backend, position included."""
    reference_outcome = outcome(
        lambda: get_backend("reference").batch_objectives([schedule, []])
    )
    vector_outcome = outcome(
        lambda: get_backend(backend).batch_objectives([schedule, []])
    )
    assert vector_outcome == reference_outcome
