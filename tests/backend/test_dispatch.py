"""Unit tests of the backend dispatch layer and the packed representation.

Fast, deterministic companions to the hypothesis conformance suite: registry
and selection semantics (env var, default, context nesting, error paths),
``ProfileMatrix`` internals against the scalar model, the scalar-fallback
routes of the NumPy backend (int64 overflow, non-integer inputs, measures
without a ``batch_values`` override), and the bulk entry points that ride on
the dispatch API.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.backend import (
    ENV_VAR,
    NUMPY_AVAILABLE,
    ComputeBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    use_backend,
)
from repro.core import (
    Assignment,
    BackendError,
    FlexOffer,
    MeasureError,
    batch_assignment_feasibility,
    batch_extreme_assignments,
    batch_feasible_profiles,
)
from repro.measures import evaluate_set, get_measure
from repro.measures.base import FlexibilityMeasure, MeasureCharacteristics
from repro.stream import OfferArrived, StreamingEngine

requires_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)

OFFERS = [
    FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)], name="fig1"),
    FlexOffer(0, 2, [(0, 2)], name="fig3"),
    FlexOffer(0, 2, [(-1, 2), (-4, -1), (-3, 1)], -8, 2, name="fig7-mixed"),
    FlexOffer(3, 3, [(-2, 0), (-3, -1)], name="production"),
    FlexOffer(0, 4, [(1, 1), (2, 2)], 3, 3, name="fig6"),
]

#: An offer whose bounds overflow int64 — exercises every fallback route.
HUGE = FlexOffer(0, 1, [(10**30, 10**30 + 5)], name="huge")


# --------------------------------------------------------------------- #
# Registry and selection
# --------------------------------------------------------------------- #


def test_reference_backend_is_always_available_and_default():
    assert "reference" in available_backends()
    assert get_backend().name == "reference"
    assert get_backend("reference").name == "reference"


@requires_numpy
def test_numpy_backend_is_registered_when_numpy_exists():
    assert "numpy" in available_backends()
    assert get_backend("numpy").name == "numpy"


def test_unknown_backend_raises_backend_error():
    with pytest.raises(BackendError):
        get_backend("no-such-backend")


def test_environment_variable_sets_the_default(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "reference")
    assert get_backend().name == "reference"
    monkeypatch.setenv(ENV_VAR, "bogus")
    with pytest.raises(BackendError):
        get_backend()


# --------------------------------------------------------------------- #
# Backend isolation (the PR 5 global-state regression fixes, post-shim)
# --------------------------------------------------------------------- #


def test_set_default_backend_shim_is_gone():
    """The v2.0 removal is final: neither the package nor the dispatch
    module exports the mutable-default shim any more."""
    import repro
    import repro.backend
    import repro.backend.dispatch as dispatch

    for module in (repro, repro.backend, dispatch):
        assert not hasattr(module, "set_default_backend")
        assert "set_default_backend" not in getattr(module, "__all__", ())
    assert not hasattr(dispatch, "_thread_default")
    assert not hasattr(dispatch, "_process_default")


def test_use_backend_activation_is_invisible_to_worker_threads():
    """Regression (PR 5): a caller's backend selection must never leak
    into pool worker threads — inside a sharded worker it could resolve
    the sharded backend itself and recurse into its own pool."""
    from concurrent.futures import ThreadPoolExecutor

    with use_backend("sharded"):
        assert get_backend().name == "sharded"
        with ThreadPoolExecutor(max_workers=1) as pool:
            seen_by_worker = pool.submit(lambda: get_backend().name).result()
        assert seen_by_worker == "reference"
    assert get_backend().name == "reference"


def test_threads_can_activate_different_backends_concurrently():
    import threading

    results: dict[str, str] = {}
    barrier = threading.Barrier(2)

    def worker(label: str, backend_name: str) -> None:
        with use_backend(backend_name):
            barrier.wait()  # both activations live at the same time
            results[label] = get_backend().name
            barrier.wait()

    threads = [
        threading.Thread(target=worker, args=("a", "reference")),
        threading.Thread(target=worker, args=("b", "sharded")),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert results == {"a": "reference", "b": "sharded"}


@requires_numpy
def test_sharded_operation_is_immune_to_foreign_activations():
    """The latent bug scenario end-to-end: a sharded bulk call must keep
    producing correct results while the caller has sharded activated."""
    from repro.backend import ShardedBackend
    from repro.measures import get_measure

    offers = OFFERS * 40
    backend = ShardedBackend(shards=2, min_population=1)
    measure = get_measure("time")
    try:
        with use_backend("sharded"):
            values = backend.measure_values(measure, offers)
        expected = get_backend("reference").measure_values(measure, offers)
        assert values == expected
    finally:
        backend.close()


def test_use_backend_accepts_instances():
    """The session façade's route: an unregistered instance activates."""

    class Tagged(ReferenceBackend):
        name = "tagged-instance-test"

    instance = Tagged()
    assert "tagged-instance-test" not in available_backends()
    with use_backend(instance) as active:
        assert active is instance
        assert get_backend() is instance
        with use_backend("reference"):
            assert get_backend().name == "reference"
        assert get_backend() is instance
    assert get_backend().name == "reference"
    assert get_backend(instance) is instance  # explicit selection too


@requires_numpy
def test_use_backend_nests_and_restores():
    assert get_backend().name == "reference"
    with use_backend("numpy") as outer:
        assert outer.name == "numpy"
        assert get_backend().name == "numpy"
        with use_backend("reference"):
            assert get_backend().name == "reference"
        assert get_backend().name == "numpy"
    assert get_backend().name == "reference"


def test_register_backend_rejects_bad_backends():
    with pytest.raises(BackendError):
        register_backend(object())  # type: ignore[arg-type]

    class Anonymous(ReferenceBackend):
        name = ""

    with pytest.raises(BackendError):
        register_backend(Anonymous())

    class Impostor(ComputeBackend):
        name = "reference"

        def measure_values(self, measure, flex_offers):  # pragma: no cover
            return []

        def evaluate_population(self, measures, flex_offers, skip_unsupported=True):
            return {}, []  # pragma: no cover

        def per_offer_values(self, measures, flex_offers):  # pragma: no cover
            return []

        def aggregate_columns(self, members):  # pragma: no cover
            return 0, [], []

        def feasible_profiles(self, flex_offers, target):  # pragma: no cover
            return []

        def assignment_feasibility(self, flex_offers, starts, values):
            return []  # pragma: no cover

    with pytest.raises(BackendError):
        register_backend(Impostor())
    # Re-registering the same class under its own name is idempotent.
    register_backend(ReferenceBackend())
    assert get_backend("reference").name == "reference"


# --------------------------------------------------------------------- #
# Reference backend operations
# --------------------------------------------------------------------- #


def test_reference_evaluate_population_skips_unsupported():
    backend = get_backend("reference")
    measures = [get_measure("time"), get_measure("absolute_area")]
    values, skipped = backend.evaluate_population(measures, OFFERS)
    assert skipped == ["absolute_area"]  # OFFERS contains a mixed offer
    assert values["time"] == sum(f.time_flexibility for f in OFFERS)


def test_reference_per_offer_values_respects_support():
    backend = get_backend("reference")
    measures = [get_measure("time"), get_measure("absolute_area")]
    per_offer = backend.per_offer_values(measures, OFFERS)
    mixed_index = next(i for i, f in enumerate(OFFERS) if f.is_mixed)
    assert "absolute_area" not in per_offer[mixed_index]
    assert all("time" in cached for cached in per_offer)


# --------------------------------------------------------------------- #
# ProfileMatrix internals
# --------------------------------------------------------------------- #


@requires_numpy
def test_profile_matrix_matches_the_scalar_model():
    from repro.backend import ProfileMatrix

    matrix = ProfileMatrix(OFFERS)
    assert matrix.size == len(OFFERS)
    assert matrix.offsets.tolist() == [0, 4, 5, 8, 10, 12]
    assert matrix.durations.tolist() == [f.duration for f in OFFERS]
    assert matrix.profile_min.tolist() == [f.profile_minimum for f in OFFERS]
    assert matrix.profile_max.tolist() == [f.profile_maximum for f in OFFERS]
    assert matrix.time_flexibility.tolist() == [f.time_flexibility for f in OFFERS]
    assert matrix.energy_flexibility.tolist() == [
        f.energy_flexibility for f in OFFERS
    ]
    assert matrix.is_consumption.tolist() == [f.is_consumption for f in OFFERS]
    assert matrix.is_production.tolist() == [f.is_production for f in OFFERS]
    assert matrix.is_mixed.tolist() == [f.is_mixed for f in OFFERS]
    # Packed effective bounds equal the scalar per-offer computation.
    effective = matrix.profiles(matrix.effective_amin), matrix.profiles(
        matrix.effective_amax
    )
    for index, flex_offer in enumerate(OFFERS):
        scalar = flex_offer.effective_slice_bounds()
        assert effective[0][index] == tuple(s.amin for s in scalar)
        assert effective[1][index] == tuple(s.amax for s in scalar)
    # owner/within address every packed position correctly.
    for position, (owner, within) in enumerate(
        zip(matrix.owner.tolist(), matrix.within.tolist())
    ):
        assert matrix.amin[position] == OFFERS[owner].slices[within].amin


@requires_numpy
def test_profile_matrix_take_and_empty():
    from repro.backend import ProfileMatrix

    matrix = ProfileMatrix(OFFERS)
    subset = matrix.take([4, 0])
    assert subset.offers == (OFFERS[4], OFFERS[0])
    assert subset.durations.tolist() == [2, 4]

    empty = ProfileMatrix([])
    assert empty.size == 0
    assert empty.profile_min.tolist() == []
    assert empty.is_mixed.tolist() == []


@requires_numpy
def test_profile_matrix_rejects_int64_overflow():
    from repro.backend import ProfileMatrix

    with pytest.raises(OverflowError):
        ProfileMatrix([HUGE])


@requires_numpy
def test_profile_matrix_rejects_values_whose_sums_could_overflow():
    """Elements fitting int64 is not enough: derived sums must fit too."""
    from repro.backend import ProfileMatrix

    sum_overflow = FlexOffer(0, 0, [(0, 2**62)] * 4, 0, 10)
    with pytest.raises(OverflowError):
        ProfileMatrix([sum_overflow])
    # ... and the backend therefore answers through the reference fallback.
    with use_backend("reference"):
        reference = batch_feasible_profiles([sum_overflow], "max")
    with use_backend("numpy"):
        vectorized = batch_feasible_profiles([sum_overflow], "max")
    assert vectorized == reference == [(0, 0, 0, 10)]


@requires_numpy
@pytest.mark.slow  # the exact reference loop over 8M start shifts takes ~10s
def test_area_measure_exact_on_huge_column_spans():
    """A packable offer whose area leaves int64 (huge width × max values)
    must route through the scalar big-integer loop, not wrap silently."""
    offer = FlexOffer(0, 2**23 + 100, [(2**40, 2**40)])
    measure = get_measure("absolute_area")
    reference = get_backend("reference").measure_values(measure, [offer])
    vectorized = get_backend("numpy").measure_values(measure, [offer])
    assert vectorized == reference
    assert vectorized[0] > 0


# --------------------------------------------------------------------- #
# NumPy backend: fallbacks and edge cases
# --------------------------------------------------------------------- #


@requires_numpy
def test_numpy_backend_empty_population():
    backend = get_backend("numpy")
    measures = [get_measure("time"), get_measure("absolute_area")]
    assert backend.measure_values(get_measure("series"), []) == []
    values, skipped = backend.evaluate_population(measures, [])
    assert skipped == []
    assert values == {"time": 0.0, "absolute_area": 0.0}
    assert backend.per_offer_values(measures, []) == []
    assert backend.feasible_profiles([], "min") == []
    assert backend.assignment_feasibility([], [], []) == []


@requires_numpy
def test_numpy_backend_falls_back_on_overflowing_integers():
    reference = get_backend("reference")
    vectorized = get_backend("numpy")
    population = OFFERS + [HUGE]
    for measure in (get_measure("energy"), get_measure("series")):
        assert vectorized.measure_values(measure, population) == (
            reference.measure_values(measure, population)
        )
    assert vectorized.evaluate_population(
        [get_measure("time")], population
    ) == reference.evaluate_population([get_measure("time")], population)
    assert vectorized.per_offer_values(
        [get_measure("energy")], population
    ) == reference.per_offer_values([get_measure("energy")], population)
    assert vectorized.aggregate_columns(population) == reference.aggregate_columns(
        population
    )
    for target in ("min", "max"):
        assert vectorized.feasible_profiles(population, target) == (
            reference.feasible_profiles(population, target)
        )
    starts = [f.earliest_start for f in population]
    profiles = [f.maximum_profile() for f in population]
    assert vectorized.assignment_feasibility(population, starts, profiles) == (
        reference.assignment_feasibility(population, starts, profiles)
    )


@requires_numpy
def test_numpy_backend_feasibility_rejects_non_integer_values_like_scalar():
    backend = get_backend("numpy")
    offer = FlexOffer(0, 2, [(0, 2), (1, 3)])
    # bool and float slice values are violations in the scalar checker and
    # must not be silently coerced by the packed arrays.
    assert backend.assignment_feasibility([offer], [0], [(True, 2)]) == [False]
    assert backend.assignment_feasibility([offer], [0], [(1.0, 2)]) == [False]
    assert backend.assignment_feasibility([offer], [True], [(1, 2)]) == [False]
    # A wrong-length profile is infeasible, not an indexing error.
    assert backend.assignment_feasibility([offer], [0], [(1,)]) == [False]
    assert backend.assignment_feasibility([offer], [0], [(1, 2)]) == [True]


@requires_numpy
def test_feasible_profiles_rejects_unknown_target():
    with pytest.raises(ValueError):
        get_backend("numpy").feasible_profiles(OFFERS, "median")
    with pytest.raises(ValueError):
        batch_feasible_profiles(OFFERS, "median")


@requires_numpy
def test_measures_without_batch_override_fall_back_to_scalar_loop():
    class OddDuration(FlexibilityMeasure):
        key = "odd-duration-test"
        label = "Odd"
        characteristics = MeasureCharacteristics(
            captures_time=False,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=True,
        )

        def value(self, flex_offer):
            return float(flex_offer.duration % 2)

    measure = OddDuration()
    vectorized = get_backend("numpy").measure_values(measure, OFFERS)
    assert vectorized == [float(f.duration % 2) for f in OFFERS]


@requires_numpy
def test_backends_honour_supports_overrides():
    """An overridden supports() (public extension point) must drive the
    skip logic on both backends — not the characteristics-derived mask."""

    class Picky(FlexibilityMeasure):
        key = "picky-support-test"
        label = "Picky"
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )

        def supports(self, flex_offer):
            return flex_offer.duration <= 2

        def value(self, flex_offer):
            if flex_offer.duration > 2:
                raise RuntimeError("evaluated an unsupported offer")
            return float(flex_offer.time_flexibility)

    measure = Picky()
    # OFFERS contains profiles longer than 2 slices -> skipped on both.
    results = {}
    for backend in available_backends():
        with use_backend(backend):
            results[backend] = evaluate_set(OFFERS, [measure])
    assert results["numpy"] == results["reference"]
    assert results["reference"].skipped == ("picky-support-test",)
    # The per-offer bulk path (streaming cache) obeys the override too.
    short = [f for f in OFFERS if f.duration <= 2]
    reference = get_backend("reference").per_offer_values([measure], OFFERS)
    vectorized = get_backend("numpy").per_offer_values([measure], OFFERS)
    assert vectorized == reference
    assert sum("picky-support-test" in cached for cached in vectorized) == len(short)


@requires_numpy
def test_relative_area_error_class_matches_reference_order():
    """The first offending offer (population order) decides the exception
    class, exactly as the reference backend's scalar loop does."""
    from repro.core import UnsupportedFlexOfferError

    mixed = FlexOffer(0, 1, [(-1, 2)])  # denom 3, mixed
    zero_denominator = FlexOffer(0, 1, [(0, 1)], 0, 0)  # consumption, denom 0
    measure = get_measure("relative_area")
    for population, expected in [
        ([mixed, zero_denominator], UnsupportedFlexOfferError),
        ([zero_denominator, mixed], MeasureError),
    ]:
        for backend in available_backends():
            with pytest.raises(expected) as excinfo:
                get_backend(backend).measure_values(measure, population)
            assert type(excinfo.value) is expected, backend


def test_evaluate_set_honours_set_value_overrides():
    """A subclassed set_value (public extension point) must not be bypassed
    by the backends' inlined values-plus-combine fast path."""

    class MaxTime(FlexibilityMeasure):
        key = "max-time-override-test"
        label = "MaxTime"
        characteristics = MeasureCharacteristics(
            captures_time=True,
            captures_energy=False,
            captures_time_and_energy=False,
            captures_size=False,
        )

        def value(self, flex_offer):
            return float(flex_offer.time_flexibility)

        def set_value(self, flex_offers):  # max instead of the default sum
            return max((self.value(f) for f in flex_offers), default=0.0)

    expected = max(f.time_flexibility for f in OFFERS)
    for backend in available_backends():
        with use_backend(backend):
            report = evaluate_set(OFFERS, [MaxTime()])
        assert report.values["max-time-override-test"] == expected


def test_importing_repro_does_not_import_numpy():
    """NumPy loads lazily: plain `import repro` must not pay its cost."""
    import subprocess
    import sys

    code = "import sys, repro; sys.exit(1 if 'numpy' in sys.modules else 0)"
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={**__import__("os").environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).resolve().parents[2],
    )
    assert result.returncode == 0, "import repro dragged numpy in eagerly"


# --------------------------------------------------------------------- #
# Batch entry points on top of the dispatch API
# --------------------------------------------------------------------- #


def test_batch_extreme_assignments_match_scalar_constructors():
    pairs = batch_extreme_assignments(OFFERS)
    for flex_offer, (minimum, maximum) in zip(OFFERS, pairs):
        assert minimum == Assignment.earliest_minimum(flex_offer)
        assert maximum == Assignment.latest_maximum(flex_offer)


def test_batch_assignment_feasibility_checks_lengths():
    from repro.core import InvalidAssignmentError

    with pytest.raises(InvalidAssignmentError):
        batch_assignment_feasibility(OFFERS, [0], [(1, 2)])


@requires_numpy
def test_evaluate_set_is_backend_invariant_on_paper_offers():
    with use_backend("reference"):
        reference = evaluate_set(OFFERS)
    with use_backend("numpy"):
        vectorized = evaluate_set(OFFERS)
    assert vectorized == reference


@requires_numpy
def test_bulk_arrive_accepts_events_and_pairs():
    arrivals = [OfferArrived(f"e{i}", f) for i, f in enumerate(OFFERS)]
    with use_backend("numpy"):
        from_events = StreamingEngine().bulk_arrive(arrivals)
        from_pairs = StreamingEngine().bulk_arrive(
            (f"e{i}", f) for i, f in enumerate(OFFERS)
        )
    baseline = StreamingEngine()
    for event in arrivals:
        baseline.apply(event)
    assert from_events.snapshot() == baseline.snapshot()
    assert from_pairs.snapshot() == baseline.snapshot()
