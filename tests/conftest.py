"""Shared pytest fixtures: the paper's flex-offers and small populations."""

from __future__ import annotations

import os
import random
import sys

import pytest

# Make the shared helper modules next to this conftest (``strategies.py``)
# importable from every test package regardless of pytest's rootdir insertion.
sys.path.insert(0, os.path.dirname(__file__))

from repro.core import FlexOffer
from repro.workloads import (
    balancing_scenario,
    figure1_flexoffer,
    figure2_flexoffer,
    figure3_flexoffer,
    figure5_flexoffer,
    figure6_flexoffer,
    figure7_flexoffer,
    neighbourhood_scenario,
)


@pytest.fixture
def fig1() -> FlexOffer:
    """Figure 1 flex-offer (Examples 1–4)."""
    return figure1_flexoffer()


@pytest.fixture
def fig2_f1() -> FlexOffer:
    """Figure 2 flex-offer f1 (Example 5)."""
    return figure2_flexoffer()


@pytest.fixture
def fig3_f2() -> FlexOffer:
    """Figure 3 flex-offer f2 (Examples 6, 14)."""
    return figure3_flexoffer()


@pytest.fixture
def fig5_f4() -> FlexOffer:
    """Figure 5 flex-offer f4 (Examples 8, 10)."""
    return figure5_flexoffer()


@pytest.fixture
def fig6_f5() -> FlexOffer:
    """Figure 6 flex-offer f5 (Examples 9, 10)."""
    return figure6_flexoffer()


@pytest.fixture
def fig7_f6() -> FlexOffer:
    """Figure 7 mixed flex-offer f6 (Examples 14, 15)."""
    return figure7_flexoffer()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for device/workload tests."""
    return random.Random(1234)


@pytest.fixture(scope="session")
def small_neighbourhood():
    """A small neighbourhood scenario reused by integration-style tests."""
    return neighbourhood_scenario(households=8, seed=5, horizon=32)


@pytest.fixture(scope="session")
def small_balancing():
    """A small balancing scenario containing mixed flex-offers."""
    return balancing_scenario(units=8, seed=9, horizon=32)
