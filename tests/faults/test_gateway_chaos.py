"""Chaos tests of the gateway: dispatch faults, 503s, the sweeper, /healthz."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.faults import GATEWAY_DISPATCH, PERSIST_PROBE, WAL_FSYNC, FaultPlan, FaultRule
from repro.server.app import Gateway, GatewayConfig, GatewayServer
from repro.service import SessionConfig

OFFER = {"earliest_start": 0, "latest_start": 2, "slices": [[1, 2]]}
EVALUATE = json.dumps({"kind": "evaluate", "offers": [OFFER]}).encode()
TICK = json.dumps(
    {"kind": "stream", "events": [{"kind": "tick", "time": 0}]}
).encode()


def run(coroutine):
    return asyncio.run(coroutine)


def gateway(**overrides) -> Gateway:
    overrides.setdefault("session_defaults", SessionConfig(backend="reference"))
    return Gateway(GatewayConfig(**overrides))


def degraded_plan() -> FaultPlan:
    return FaultPlan(
        [
            FaultRule(WAL_FSYNC, after=1, count=None),
            FaultRule(PERSIST_PROBE, after=1, count=None),
        ]
    )


class TestDispatchFaults:
    def test_dispatch_fault_is_a_500_then_service_recovers(self):
        async def scenario():
            plan = FaultPlan([FaultRule(GATEWAY_DISPATCH, after=1, count=1)])
            gate = gateway(fault_plan=plan)
            try:
                assert (await gate.handle("PUT", "/sessions/t")).status == 201
                faulted = await gate.handle("POST", "/sessions/t/requests", EVALUATE)
                assert faulted.status == 500
                assert "injected" in faulted.payload["detail"]
                healed = await gate.handle("POST", "/sessions/t/requests", EVALUATE)
                assert healed.status == 200
                health = await gate.handle("GET", "/healthz")
                assert health.payload["faults"]["fired"] == {GATEWAY_DISPATCH: 1}
                assert gate.failed == 1 and gate.served == 1
            finally:
                gate.close()

        run(scenario())

    def test_injected_gateway_errors_keep_their_status_and_retry_after(self):
        async def scenario():
            plan = FaultPlan(
                [
                    FaultRule(
                        GATEWAY_DISPATCH,
                        error="repro.server.limits.SaturatedError",
                        after=1,
                        count=1,
                    )
                ]
            )
            gate = gateway(fault_plan=plan, retry_after_s=0.25)
            try:
                assert (await gate.handle("PUT", "/sessions/t")).status == 201
                response = await gate.handle("POST", "/sessions/t/requests", EVALUATE)
                # A typed GatewayError thrown from the fault plane keeps
                # its own status, and the gateway fills in the Retry-After
                # hint every 429 promises.
                assert response.status == 429
                assert response.payload["error"] == "saturated"
                assert response.retry_after == 0.25
            finally:
                gate.close()

        run(scenario())

    def test_dispatch_faults_never_wedge_the_session_gate(self):
        async def scenario():
            plan = FaultPlan([FaultRule(GATEWAY_DISPATCH, after=1, count=3)])
            gate = gateway(fault_plan=plan)
            try:
                assert (await gate.handle("PUT", "/sessions/t")).status == 201
                statuses = []
                for _ in range(5):
                    response = await gate.handle(
                        "POST", "/sessions/t/requests", EVALUATE
                    )
                    statuses.append(response.status)
                assert statuses == [500, 500, 500, 200, 200]
                # Both gates fully released: nothing waiting, nothing held.
                assert gate.gate.stats()["waiting"] == 0
                entry = gate.registry.entry("t")
                assert not entry.gate.busy
            finally:
                gate.close()

        run(scenario())


class TestDegradedPersistence:
    def test_checkpoint_is_503_with_retry_after_while_serving_continues(
        self, tmp_path
    ):
        async def scenario():
            gate = gateway(
                persist_root=str(tmp_path),
                session_defaults=SessionConfig(
                    backend="reference", fault_plan=degraded_plan()
                ),
            )
            try:
                assert (await gate.handle("PUT", "/sessions/d")).status == 201
                served = await gate.handle("POST", "/sessions/d/requests", TICK)
                assert served.status == 200  # degraded, but still serving
                checkpoint = await gate.handle("POST", "/sessions/d/checkpoint")
                assert checkpoint.status == 503
                assert checkpoint.payload["error"] == "degraded"
                assert checkpoint.retry_after is not None
                health = await gate.handle("GET", "/healthz")
                assert health.payload["status"] == "degraded"
                assert health.payload["components"]["persistence"] == "degraded"
                assert health.payload["persistence"]["degraded_sessions"] == ["d"]
            finally:
                gate.close()

        run(scenario())

    def test_healthz_is_ok_without_persistence(self):
        async def scenario():
            gate = gateway()
            try:
                health = await gate.handle("GET", "/healthz")
                assert health.payload["status"] == "ok"
                assert health.payload["components"]["persistence"] == "disabled"
            finally:
                gate.close()

        run(scenario())


class TestSweeperResilience:
    def test_sweep_survives_a_close_that_raises(self):
        async def scenario():
            gate = gateway(idle_ttl=100.0)
            try:
                assert (await gate.handle("PUT", "/sessions/a")).status == 201
                assert (await gate.handle("PUT", "/sessions/b")).status == 201

                def explode():
                    raise RuntimeError("checkpoint-on-evict blew up")

                gate.registry.entry("a").session.close = explode
                # Both sessions idle past the TTL: the sweep must drop
                # both despite a's close raising, and count the failure.
                for entry in gate.registry._entries.values():
                    entry.last_used -= 1000.0
                swept = gate.registry.sweep()
                assert sorted(swept) == ["a", "b"]
                assert gate.registry.sweep_failures == 1
                health = await gate.handle("GET", "/healthz")
                assert health.payload["status"] == "degraded"
                assert health.payload["components"]["sweeper"] == "degraded"
                assert health.payload["registry"]["sweep_failures"] == 1
            finally:
                gate.close()

        run(scenario())

    def test_sweeper_task_survives_registry_level_exceptions(self):
        async def scenario():
            gate = gateway(idle_ttl=0.02)
            server = GatewayServer(gate, _FakeServer())
            try:
                calls = {"count": 0}

                def broken_sweep(now=None):
                    calls["count"] += 1
                    raise RuntimeError("registry lock poisoned")

                gate.registry.sweep = broken_sweep
                await asyncio.sleep(0.06)
                assert calls["count"] >= 2  # still ticking after a failure
                assert gate.sweeper_failures == calls["count"]
                health = await gate.handle("GET", "/healthz")
                assert health.payload["components"]["sweeper"] == "degraded"
                assert health.payload["sweeper_failures"] >= 2
            finally:
                await server.close()

        run(scenario())


class _FakeServer:
    """Just enough asyncio.AbstractServer surface for GatewayServer tests."""

    sockets = ()

    def close(self) -> None:
        return None

    async def wait_closed(self) -> None:
        return None


class TestConfigResolution:
    def test_gateway_config_coerces_specs_and_rejects_garbage(self):
        config = GatewayConfig(
            fault_plan={"rules": [{"site": GATEWAY_DISPATCH}], "seed": 4}
        )
        assert isinstance(config.fault_plan, FaultPlan)
        assert config.fault_plan.seed == 4
        with pytest.raises(ValueError, match="invalid fault_plan"):
            GatewayConfig(fault_plan={"bogus": True})

    def test_gateway_config_reads_the_environment(self, monkeypatch):
        spec = {"rules": [{"site": GATEWAY_DISPATCH, "after": 9}]}
        monkeypatch.setenv("REPRO_FAULTS", json.dumps(spec))
        config = GatewayConfig()
        assert config.fault_plan is not None
        assert config.fault_plan.rules[0].after == 9
        monkeypatch.delenv("REPRO_FAULTS")
        assert GatewayConfig().fault_plan is None
