"""Unit tests of the fault-plan model: rules, windows, determinism, specs."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    ALL_SITES,
    ENV_FAULTS,
    FaultInjected,
    FaultPlan,
    FaultRule,
    WAL_FSYNC,
)
from repro.faults.plan import _error_name, _resolve_error


class TestFaultRule:
    def test_defaults_raise_fault_injected_on_the_first_hit(self):
        rule = FaultRule(WAL_FSYNC)
        assert rule.action == "raise"
        assert rule.error is FaultInjected
        assert rule.matches(1)
        assert not rule.matches(2)

    def test_window_selects_hits_after_through_count(self):
        rule = FaultRule(WAL_FSYNC, after=3, count=2)
        assert [rule.matches(hit) for hit in range(1, 7)] == [
            False, False, True, True, False, False,
        ]

    def test_open_ended_window_with_count_none(self):
        rule = FaultRule(WAL_FSYNC, after=2, count=None)
        assert not rule.matches(1)
        assert all(rule.matches(hit) for hit in range(2, 50))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"action": "explode"},
            {"after": 0},
            {"count": 0},
            {"delay_s": -0.1},
            {"probability": 1.5},
            {"probability": -0.1},
            {"error": "NoSuchError"},
            {"error": 42},
        ],
    )
    def test_invalid_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(WAL_FSYNC, **kwargs)

    def test_spec_round_trip(self):
        rule = FaultRule(
            WAL_FSYNC, after=2, count=None, probability=0.5
        )
        rebuilt = FaultRule.from_spec(rule.spec())
        assert rebuilt == rule

    def test_spec_round_trip_for_builtin_and_dotted_errors(self):
        for error in (OSError, FaultInjected):
            rule = FaultRule(WAL_FSYNC, error=error)
            assert FaultRule.from_spec(rule.spec()).error is error
        dotted = FaultRule(WAL_FSYNC, error="repro.core.errors.BackendError")
        assert FaultRule.from_spec(dotted.spec()).error is dotted.error

    def test_from_spec_rejects_non_specs(self):
        with pytest.raises(ValueError):
            FaultRule.from_spec({"action": "raise"})  # no site
        with pytest.raises(ValueError):
            FaultRule.from_spec({"site": WAL_FSYNC, "bogus": 1})
        with pytest.raises(ValueError):
            FaultRule.from_spec("wal.fsync")

    def test_error_name_helpers(self):
        assert _error_name(FaultInjected) == "FaultInjected"
        assert _error_name(OSError) == "OSError"
        assert "." in _error_name(type("Weird", (RuntimeError,), {}))
        assert _resolve_error(OSError) is OSError
        with pytest.raises(ValueError):
            _resolve_error(int)  # a class, but not an exception
        with pytest.raises(ValueError):
            _resolve_error("no.such.module.Error")


class TestFaultPlan:
    def test_fire_counts_hits_and_raises_in_the_window(self):
        plan = FaultPlan([FaultRule(WAL_FSYNC, after=2, count=1)])
        assert plan.fire(WAL_FSYNC) is None
        with pytest.raises(FaultInjected, match="hit 2"):
            plan.fire(WAL_FSYNC)
        assert plan.fire(WAL_FSYNC) is None  # window exhausted
        assert plan.stats()["hits"] == {WAL_FSYNC: 3}
        assert plan.stats()["fired"] == {WAL_FSYNC: 1}

    def test_unrelated_sites_never_fire(self):
        plan = FaultPlan([FaultRule(WAL_FSYNC)])
        for site in ALL_SITES:
            if site != WAL_FSYNC:
                assert plan.fire(site) is None

    def test_kill_rules_return_the_kill_token(self):
        plan = FaultPlan([FaultRule(WAL_FSYNC, action="kill")])
        assert plan.fire(WAL_FSYNC) == "kill"
        assert plan.fire(WAL_FSYNC) is None

    def test_delay_rules_sleep_and_return_none(self):
        plan = FaultPlan([FaultRule(WAL_FSYNC, action="delay", delay_s=0.0)])
        assert plan.fire(WAL_FSYNC) is None
        assert plan.stats()["fired"] == {WAL_FSYNC: 1}

    def test_probability_is_deterministic_under_the_seed(self):
        def decisions(seed: int) -> list:
            plan = FaultPlan(
                [FaultRule(WAL_FSYNC, count=None, probability=0.5)], seed=seed
            )
            outcome = []
            for _ in range(64):
                try:
                    plan.fire(WAL_FSYNC)
                    outcome.append(False)
                except FaultInjected:
                    outcome.append(True)
            return outcome

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)
        assert any(decisions(7)) and not all(decisions(7))

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [
                FaultRule(WAL_FSYNC, error=KeyError),
                FaultRule(WAL_FSYNC, error=OSError, count=None),
            ]
        )
        with pytest.raises(KeyError):
            plan.fire(WAL_FSYNC)
        with pytest.raises(OSError):
            plan.fire(WAL_FSYNC)

    def test_spec_round_trip_including_json_string(self):
        plan = FaultPlan(
            [FaultRule(WAL_FSYNC, after=2), FaultRule("shard.submit")], seed=3
        )
        assert FaultPlan.from_spec(plan.spec()).spec() == plan.spec()
        assert FaultPlan.from_spec(json.dumps(plan.spec())).spec() == plan.spec()

    def test_from_spec_accepts_a_bare_rule_list(self):
        plan = FaultPlan.from_spec([{"site": WAL_FSYNC}])
        assert len(plan.rules) == 1
        assert plan.seed == 0

    def test_from_spec_accepts_rule_dicts_in_the_constructor(self):
        plan = FaultPlan([{"site": WAL_FSYNC, "after": 4}])
        assert plan.rules[0] == FaultRule(WAL_FSYNC, after=4)

    @pytest.mark.parametrize(
        "payload",
        ["{not json", 42, {"seed": 1, "bogus": []}],
    )
    def test_from_spec_rejects_malformed_payloads(self, payload):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(payload)

    def test_from_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_FAULTS, "   ")
        assert FaultPlan.from_env() is None
        spec = {"seed": 5, "rules": [{"site": WAL_FSYNC, "after": 2}]}
        monkeypatch.setenv(ENV_FAULTS, json.dumps(spec))
        plan = FaultPlan.from_env()
        assert plan is not None and plan.spec() == FaultPlan.from_spec(spec).spec()

    def test_from_env_warns_and_ignores_malformed_values(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULTS, "{broken")
        with pytest.warns(RuntimeWarning, match=ENV_FAULTS):
            assert FaultPlan.from_env() is None

    def test_injected_error_is_an_oserror(self):
        # The persistence layer suspends on OSError and the sharded
        # executor retries FaultInjected: the default error must reach
        # both behaviours through their real except clauses.
        assert issubclass(FaultInjected, OSError)
