"""The PR 9 acceptance property, hypothesis-driven.

For *any* single-site fault plan — any site the library fires, any hit
window, raise or kill — a session serving a fixed workload returns, per
request, either a payload bit-identical to the fault-free run or a typed
error; the session never wedges; and the persisted directory always
recovers to the exact fault-free final state once the plan's window is
spent.  Runs against every registered compute backend.
"""

from __future__ import annotations

import json
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import NUMPY_AVAILABLE
from repro.core.errors import FlexError
from repro.faults import (
    PERSIST_PROBE,
    SHARD_RESULT,
    SHARD_SUBMIT,
    SNAPSHOT_REPLACE,
    WAL_APPEND,
    WAL_COMMIT,
    WAL_FSYNC,
    FaultPlan,
    FaultRule,
)
from repro.io.serialization import result_to_dict
from repro.service import EvaluateRequest, FlexSession, SessionConfig, StreamRequest
from repro.stream import population_events
from repro.workloads import neighbourhood_scenario

requires_numpy = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="NumPy backend not available"
)

BACKENDS = [
    "reference",
    pytest.param("numpy", marks=requires_numpy),
    pytest.param("sharded", marks=requires_numpy),
]

SITES = (
    WAL_APPEND,
    WAL_COMMIT,
    WAL_FSYNC,
    SNAPSHOT_REPLACE,
    PERSIST_PROBE,
    SHARD_SUBMIT,
    SHARD_RESULT,
)

EVENTS = population_events(neighbourhood_scenario(households=4).flex_offers)
HALF = len(EVENTS) // 2

#: Fault-free reference outcomes, computed once per backend.
_GOLDEN: dict = {}


def config(backend: str, directory=None, plan=None) -> SessionConfig:
    return SessionConfig(
        backend=backend,
        persist_dir=directory,
        persist_fsync=directory is not None,
        checkpoint_events=4,  # checkpoint often: snapshot.replace gets hit
        measures=("time", "energy"),
        shards=2,
        shard_min_population=0,  # fan out even tiny populations
        fault_plan=plan,
    )


def run_workload(session: FlexSession) -> list:
    """Serve the fixed request sequence; one JSON outcome per request."""
    outcomes = []
    for request in (
        StreamRequest(events=EVENTS[:HALF]),
        EvaluateRequest(),
        StreamRequest(events=EVENTS[HALF:]),
        EvaluateRequest(),
    ):
        try:
            payload = result_to_dict(session.submit(request))
            payload.pop("stats", None)  # timings are not part of identity
            outcomes.append(("ok", json.dumps(payload, sort_keys=True)))
        except (FlexError, OSError) as error:
            outcomes.append(("error", type(error).__name__))
    return outcomes


def fingerprint(session: FlexSession) -> str:
    return json.dumps(session.engine.export_state(), sort_keys=True)


def golden(backend: str) -> tuple:
    if backend not in _GOLDEN:
        with FlexSession(config(backend)) as session:
            outcomes = run_workload(session)
            assert all(kind == "ok" for kind, _ in outcomes)
            _GOLDEN[backend] = (outcomes, fingerprint(session))
    return _GOLDEN[backend]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=25, deadline=None)
@given(
    site=st.sampled_from(SITES),
    action=st.sampled_from(["raise", "kill"]),
    after=st.integers(min_value=1, max_value=5),
    count=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_single_site_fault_yields_identical_results_or_typed_errors(
    backend, site, action, after, count, seed
):
    golden_outcomes, golden_state = golden(backend)
    plan = FaultPlan([FaultRule(site, action=action, after=after, count=count)], seed=seed)
    with tempfile.TemporaryDirectory() as root:
        directory = root + "/session"
        with FlexSession(config(backend, directory, plan)) as session:
            outcomes = run_workload(session)
            for observed, expected in zip(outcomes, golden_outcomes):
                if observed[0] == "ok":
                    # Identical down to the serialised byte, or a typed error.
                    assert observed == expected
            # The session never wedges: each evaluate may still return a
            # typed error while it burns down the window's tail (a hit
            # window of after+count-1 <= 7 can outlast the workload *and*
            # one call's retry budget), but the window is finite, so an
            # evaluate soon answers exactly like the fault-free run.
            for _ in range(8):
                try:
                    final = result_to_dict(session.submit(EvaluateRequest()))
                    break
                except (FlexError, OSError):
                    continue
            else:
                pytest.fail("session wedged: evaluate never recovered")
            final.pop("stats", None)
            assert json.dumps(final, sort_keys=True) == golden_outcomes[-1][1]
            assert fingerprint(session) == golden_state

        # The durable directory is never corrupt: recovery always works
        # and reproduces the fault-free state bit-for-bit (the close above
        # resumed and checkpointed once the bounded window was spent).
        with FlexSession(config(backend, directory)) as recovered:
            assert recovered.recovery is not None
            assert fingerprint(recovered) == golden_state


@pytest.mark.parametrize("backend", BACKENDS)
def test_unbounded_disk_failure_still_serves_and_degrades(backend):
    """The worst case: every WAL write and every probe fails forever.

    Serving must continue bit-identically with persistence suspended —
    the session trades durability for availability, never correctness.
    """
    golden_outcomes, golden_state = golden(backend)
    plan = FaultPlan(
        [
            FaultRule(WAL_FSYNC, count=None),
            FaultRule(WAL_APPEND, count=None),
            FaultRule(PERSIST_PROBE, count=None),
        ]
    )
    with tempfile.TemporaryDirectory() as root:
        session = FlexSession(config(backend, root + "/session", plan))
        try:
            assert run_workload(session) == golden_outcomes
            assert fingerprint(session) == golden_state
            assert session.stats()["persistence"]["status"] == "degraded"
        finally:
            session.close()  # must not raise despite the dead disk
