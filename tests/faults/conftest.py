"""Fixtures for the chaos suite."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def persist_dir(tmp_path: Path) -> Path:
    """A fresh directory for one persisted session."""
    return tmp_path / "session"
