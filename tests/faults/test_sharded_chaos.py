"""Chaos tests of the self-healing sharded executor.

Every test injects faults through a deterministic :class:`FaultPlan` and
asserts the acceptance property of the robustness PR: the caller sees
either a result *bit-identical* to the fault-free run or a typed error —
never a corrupt merge, never a wedged backend.
"""

from __future__ import annotations

import time

import pytest

from repro.backend import NUMPY_AVAILABLE, ShardedBackend, get_backend
from repro.core import FlexOffer
from repro.core.errors import BackendError
from repro.faults import SHARD_RESULT, SHARD_SUBMIT, FaultInjected, FaultPlan, FaultRule
from repro.measures import get_measure
from repro.measures.base import FlexibilityMeasure, MeasureCharacteristics

OFFERS = [
    FlexOffer(0, 4, [(1, 3), (0, 2)], name="a"),
    FlexOffer(2, 2, [(2, 5)], 2, 4, name="b"),
    FlexOffer(1, 6, [(0, 1), (1, 1), (0, 3)], name="c"),
    FlexOffer(5, 9, [(3, 3)], name="d"),
    FlexOffer(0, 0, [(1, 2), (2, 2)], 3, 4, name="e"),
    FlexOffer(3, 7, [(0, 4)], name="f"),
    FlexOffer(2, 5, [(1, 1), (0, 2), (2, 3)], name="g"),
]

PRODUCT = get_measure("product")
GOLDEN = get_backend("reference").measure_values(PRODUCT, OFFERS)


def sharded(plan=None, **kwargs) -> ShardedBackend:
    kwargs.setdefault("shards", 3)
    kwargs.setdefault("min_population", 1)
    kwargs.setdefault("retry_backoff_s", 0.0)
    return ShardedBackend(faults=plan, **kwargs)


class SlowMeasure(FlexibilityMeasure):
    """A measure whose per-offer value stalls — the straggler generator."""

    key = "chaos-slow-measure"
    label = "Slow"
    characteristics = MeasureCharacteristics(
        captures_time=True,
        captures_energy=False,
        captures_time_and_energy=False,
        captures_size=False,
    )

    def value(self, flex_offer: FlexOffer) -> float:
        time.sleep(0.05)
        return float(flex_offer.time_flexibility)


class TestRetries:
    @pytest.mark.parametrize("site", [SHARD_SUBMIT, SHARD_RESULT])
    def test_single_fault_heals_to_the_identical_result(self, site):
        plan = FaultPlan([FaultRule(site, after=2, count=1)])
        backend = sharded(plan)
        try:
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            stats = backend.resilience_stats()
            assert stats["retried"] == 1
            assert stats["pool_rebuilds"] == 0
        finally:
            backend.close()

    def test_consecutive_faults_within_the_budget_still_heal(self):
        # Hits count across retries, so a count=2 window makes shard 0
        # fail twice in a row before its third attempt succeeds.
        plan = FaultPlan([FaultRule(SHARD_RESULT, after=1, count=2)])
        backend = sharded(plan)
        try:
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            assert backend.resilience_stats()["retried"] == 2
        finally:
            backend.close()

    def test_exhausted_budget_is_a_typed_backend_error(self):
        plan = FaultPlan([FaultRule(SHARD_RESULT, count=None)])
        backend = sharded(plan, retries=1)
        try:
            with pytest.raises(BackendError, match="after 2 attempt"):
                backend.measure_values(PRODUCT, OFFERS)
            # The backend is not wedged: with the plan spent elsewhere it
            # keeps serving (rule is open-ended, so use a fresh backend).
        finally:
            backend.close()
        assert sharded().measure_values(PRODUCT, OFFERS) == GOLDEN

    def test_retries_zero_fails_fast(self):
        plan = FaultPlan([FaultRule(SHARD_SUBMIT)])
        backend = sharded(plan, retries=0)
        try:
            with pytest.raises(BackendError, match="after 1 attempt"):
                backend.measure_values(PRODUCT, OFFERS)
        finally:
            backend.close()

    def test_application_errors_are_never_retried(self):
        class Explosive(FlexibilityMeasure):
            key = "chaos-explosive-measure"
            label = "Explosive"
            characteristics = SlowMeasure.characteristics

            def value(self, flex_offer: FlexOffer) -> float:
                raise ValueError(f"bad offer {flex_offer.name}")

        backend = sharded(FaultPlan())  # plan present, no rules
        try:
            with pytest.raises(ValueError, match="bad offer a"):
                backend.measure_values(Explosive(), OFFERS)
            assert backend.resilience_stats()["retried"] == 0
        finally:
            backend.close()

    def test_negative_retries_is_rejected(self):
        with pytest.raises(BackendError):
            sharded(retries=-1)

    def test_small_populations_delegate_below_the_fault_plane(self):
        # _delegates() bypasses the fan-out entirely: an always-raise plan
        # must never fire because the injection sites are never crossed.
        plan = FaultPlan([FaultRule(SHARD_SUBMIT, count=None)])
        backend = ShardedBackend(shards=3, min_population=1000, faults=plan)
        try:
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            assert plan.stats()["hits"] == {}
        finally:
            backend.close()


class TestKill:
    def test_thread_pools_degrade_kill_to_raise(self):
        plan = FaultPlan([FaultRule(SHARD_SUBMIT, action="kill", after=1, count=1)])
        backend = sharded(plan)
        try:
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            stats = backend.resilience_stats()
            assert stats["retried"] == 1
            assert stats["worker_kills"] == 0
        finally:
            backend.close()

    def test_process_worker_kill_rebuilds_the_pool_once(self):
        # after=2: the pool must exist (shard 0 already submitted) before
        # there is a live worker process to kill.
        plan = FaultPlan([FaultRule(SHARD_SUBMIT, action="kill", after=2, count=1)])
        backend = sharded(plan, shards=2, executor="process")
        try:
            # Whether the breakage surfaces inside the first call or on the
            # next submit is a kernel-scheduling race; the merged results
            # must be golden either way, with exactly one pool rebuild.
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            stats = backend.resilience_stats()
            assert stats["worker_kills"] == 1
            assert stats["pool_rebuilds"] == 1
        finally:
            backend.close()


class TestHedging:
    def test_hedged_run_is_bit_identical(self):
        backend = sharded(hedge_ms=1.0)
        try:
            slow = SlowMeasure()
            expected = get_backend("reference").measure_values(slow, OFFERS)
            assert backend.measure_values(slow, OFFERS) == expected
            stats = backend.resilience_stats()
            assert stats["hedges"] >= 1
        finally:
            backend.close()

    def test_hedging_disabled_by_default(self):
        backend = sharded()
        try:
            assert backend.resilience_stats()["hedge_ms"] == 0.0
            assert backend.measure_values(PRODUCT, OFFERS) == GOLDEN
            assert backend.resilience_stats()["hedges"] == 0
        finally:
            backend.close()


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="NumPy backend not available")
class TestNumpyInner:
    def test_faulted_numpy_fanout_heals_identically(self):
        plan = FaultPlan([FaultRule(SHARD_RESULT, after=1, count=2)])
        backend = sharded(plan, inner="numpy")
        try:
            golden = get_backend("numpy").measure_values(PRODUCT, OFFERS)
            assert backend.measure_values(PRODUCT, OFFERS) == golden
        finally:
            backend.close()
