"""Chaos tests of the degraded-persistence path and the WAL rewind.

The acceptance property: a persistence fault never corrupts durable
state and never wedges the session — serving continues, ``/healthz``
shows the degradation, and the probe-gated circuit breaker resumes
with a forced snapshot that covers everything logged *and unlogged*
while degraded, bit-identical to a run that never faulted.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    PERSIST_PROBE,
    SNAPSHOT_REPLACE,
    WAL_APPEND,
    WAL_COMMIT,
    WAL_FSYNC,
    FaultInjected,
    FaultPlan,
    FaultRule,
)
from repro.persist import PersistenceSuspendedError, WriteAheadLog
from repro.service import FlexSession, SessionConfig, StreamRequest
from repro.stream import Tick, population_events
from repro.workloads import neighbourhood_scenario

EVENTS = population_events(neighbourhood_scenario(households=4).flex_offers)


def fingerprint(session: FlexSession) -> str:
    return json.dumps(session.engine.export_state(), sort_keys=True)


def durable_config(directory, plan=None, **overrides) -> SessionConfig:
    defaults = dict(
        backend="reference",
        persist_dir=directory,
        persist_fsync=True,  # the faults target fsync; it must actually run
        measures=("time", "energy"),
        fault_plan=plan,
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def golden_fingerprint(tmp_path) -> str:
    with FlexSession(durable_config(tmp_path / "golden")) as session:
        session.submit(StreamRequest(events=EVENTS))
        return fingerprint(session)


class TestWalRewind:
    """The commit() non-atomicity fix: a failed commit must not leave a
    half-flushed tail that replays as committed."""

    def test_failed_fsync_marks_the_log_dirty_and_rewinds(self, persist_dir):
        plan = FaultPlan([FaultRule(WAL_FSYNC, after=1, count=1)])
        wal = WriteAheadLog(persist_dir, fsync=True, faults=plan)
        wal.append({"event": {"kind": "tick", "time": 0}})
        with pytest.raises(FaultInjected):
            wal.commit()
        assert wal.stats()["dirty"] is True
        # Re-logging reuses the abandoned sequence numbers (gapless): the
        # rewind is lazy — it runs (and can itself be retried) on the next
        # touch, so a failing disk cannot also break the failure path.
        assert wal.append({"event": {"kind": "tick", "time": 0}}) == 1
        wal.commit()
        assert wal.stats()["dirty"] is False
        assert wal.stats()["rewinds"] == 1
        assert [r.seq for r in wal.records()] == [1]
        wal.close()

    def test_failed_commit_flush_preserves_the_committed_prefix(self, persist_dir):
        plan = FaultPlan([FaultRule(WAL_COMMIT, after=2, count=1)])
        wal = WriteAheadLog(persist_dir, fsync=True, faults=plan)
        wal.append({"event": {"kind": "tick", "time": 0}})
        wal.commit()  # commit hit 1: succeeds
        wal.append({"event": {"kind": "tick", "time": 1}})
        with pytest.raises(FaultInjected):
            wal.commit()  # commit hit 2: fails before flush
        wal.append({"event": {"kind": "tick", "time": 99}})
        wal.commit()
        records = wal.records()
        assert [r.seq for r in records] == [1, 2]
        assert [r.payload["event"]["time"] for r in records] == [0, 99]
        wal.close()

    def test_reopen_after_failed_commit_resumes_at_the_committed_seq(
        self, persist_dir
    ):
        plan = FaultPlan([FaultRule(WAL_FSYNC, after=2, count=None)])
        wal = WriteAheadLog(persist_dir, fsync=True, faults=plan)
        wal.append({"event": {"kind": "tick", "time": 0}})
        wal.commit()
        wal.append({"event": {"kind": "tick", "time": 1}})
        with pytest.raises(FaultInjected):
            wal.commit()
        wal.close()

        reopened = WriteAheadLog(persist_dir, fsync=False)
        assert reopened.last_seq == 1
        assert reopened.append({"event": {"kind": "tick", "time": 2}}) == 2
        reopened.commit()
        assert [r.seq for r in reopened.records()] == [1, 2]
        reopened.close()

    def test_append_fault_suspends_nothing_by_itself(self, persist_dir):
        plan = FaultPlan([FaultRule(WAL_APPEND, after=1, count=1)])
        wal = WriteAheadLog(persist_dir, fsync=False, faults=plan)
        with pytest.raises(FaultInjected):
            wal.append({"event": {"kind": "tick", "time": 0}})
        assert wal.append({"event": {"kind": "tick", "time": 0}}) == 1
        wal.commit()
        assert [r.seq for r in wal.records()] == [1]
        wal.close()


class TestDegradedSession:
    def test_fsync_fault_degrades_but_the_session_keeps_serving(
        self, tmp_path, persist_dir
    ):
        golden = golden_fingerprint(tmp_path)
        plan = FaultPlan(
            [
                FaultRule(WAL_FSYNC, after=1, count=None),
                FaultRule(PERSIST_PROBE, after=1, count=None),
            ]
        )
        with FlexSession(durable_config(persist_dir, plan)) as session:
            session.submit(StreamRequest(events=EVENTS))
            stats = session.stats()["persistence"]
            assert stats["status"] == "degraded"
            assert "FaultInjected" in stats["degraded_reason"]
            assert stats["suspensions"] >= 1
            # Serving state is untouched by the persistence failure.
            assert fingerprint(session) == golden
            with pytest.raises(PersistenceSuspendedError):
                session.checkpoint()

    @pytest.mark.parametrize("site", [WAL_APPEND, SNAPSHOT_REPLACE])
    def test_other_sites_degrade_identically(self, tmp_path, persist_dir, site):
        golden = golden_fingerprint(tmp_path)
        plan = FaultPlan(
            [
                FaultRule(site, after=1, count=None),
                FaultRule(PERSIST_PROBE, after=1, count=None),
            ]
        )
        with FlexSession(durable_config(persist_dir, plan)) as session:
            session.submit(StreamRequest(events=EVENTS))
            if site == SNAPSHOT_REPLACE:
                # Streaming alone never snapshots; force the attempt.
                with pytest.raises(PersistenceSuspendedError):
                    session.checkpoint()
            assert session.stats()["persistence"]["status"] == "degraded"
            assert fingerprint(session) == golden

    def test_probe_holds_the_breaker_until_the_disk_heals(
        self, tmp_path, persist_dir
    ):
        golden = golden_fingerprint(tmp_path)
        # fsync fails once; the first two probes fail too, then succeed.
        # Probe 1 runs inside the faulted submit itself (maybe_checkpoint
        # ticks the breaker at the end of every served request).
        plan = FaultPlan(
            [
                FaultRule(WAL_FSYNC, after=1, count=1),
                FaultRule(PERSIST_PROBE, after=1, count=2),
            ]
        )
        with FlexSession(durable_config(persist_dir, plan)) as session:
            session.submit(StreamRequest(events=EVENTS[: len(EVENTS) // 2]))
            persister = session._persister
            assert persister.degraded
            assert persister.stats()["probe_attempts"] == 1
            assert persister.try_resume(session.engine) is None  # probe 2 fails
            assert persister.degraded
            summary = persister.try_resume(session.engine)  # probe 3 succeeds
            assert summary is not None
            assert not persister.degraded
            stats = persister.stats()
            assert stats["status"] == "ok"
            assert stats["resumptions"] == 1
            assert stats["probe_attempts"] == 3
            # Events arriving after the resume persist normally again.
            session.submit(StreamRequest(events=EVENTS[len(EVENTS) // 2 :]))
            assert fingerprint(session) == golden

        # The resumed directory recovers bit-identically: the forced
        # snapshot covered the events that never reached the WAL.
        with FlexSession(durable_config(persist_dir)) as recovered:
            assert recovered.recovery is not None
            assert fingerprint(recovered) == golden

    def test_resume_rotates_onto_a_fresh_pruned_segment(self, persist_dir):
        # The probe fault holds the breaker open past the in-submit tick,
        # so the rotation is observable across the manual resume.  The
        # forced checkpoint rewinds the dirty tail, snapshots, rotates and
        # prunes: afterwards the WAL is a single fresh segment with no
        # records — everything lives in the snapshot.
        plan = FaultPlan(
            [
                FaultRule(WAL_FSYNC, after=1, count=1),
                FaultRule(PERSIST_PROBE, after=1, count=1),
            ]
        )
        with FlexSession(durable_config(persist_dir, plan)) as session:
            session.submit(StreamRequest(events=[Tick(time=0)]))
            persister = session._persister
            assert persister.degraded
            assert persister.wal.stats()["dirty"] is True
            assert persister.try_resume(session.engine) is not None
            assert persister.wal.stats()["dirty"] is False
            assert persister.wal.records() == []
            assert len(persister.wal.segments()) == 1
            assert persister.stats()["checkpoints"] == 1

    def test_maybe_checkpoint_drives_the_breaker(self, persist_dir):
        # Probe 1 (inside the faulted request) fails; the next served
        # request's maybe_checkpoint tick probes again and resumes.
        plan = FaultPlan(
            [
                FaultRule(WAL_FSYNC, after=1, count=1),
                FaultRule(PERSIST_PROBE, after=1, count=1),
            ]
        )
        with FlexSession(durable_config(persist_dir, plan)) as session:
            session.submit(StreamRequest(events=[Tick(time=0)]))
            persister = session._persister
            assert persister.degraded
            session.submit(StreamRequest(events=[Tick(time=1)]))
            assert not persister.degraded
            assert persister.stats()["resumptions"] == 1

    def test_close_while_degraded_never_raises(self, persist_dir):
        plan = FaultPlan(
            [
                FaultRule(WAL_FSYNC, after=1, count=None),
                FaultRule(PERSIST_PROBE, after=1, count=None),
            ]
        )
        session = FlexSession(durable_config(persist_dir, plan))
        session.submit(StreamRequest(events=[Tick(time=0)]))
        assert session._persister.degraded
        session.close()  # must swallow the persistence failure
        assert session.closed
