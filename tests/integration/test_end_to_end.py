"""Integration tests: the full Scenario 1 / Scenario 2 pipelines.

These tests exercise the library the way the paper's two application
scenarios describe: prosumers emit flex-offers, an Aggregator groups and
aggregates them, flexibility losses are measured with the paper's measures,
schedules track wind production, and the market settles the imbalance.
"""

import pytest

from repro.aggregation import (
    aggregate_all,
    aggregation_loss,
    balance_aggregate,
    disaggregate,
    group_by_grid,
)
from repro.core import Assignment
from repro.market import (
    Aggregator,
    BalanceResponsibleParty,
    FlexibilityPricer,
    ImbalanceSettlement,
    TradingSession,
)
from repro.measures import applicable_measures, evaluate_set
from repro.scheduling import (
    EarliestStartScheduler,
    EvolutionaryScheduler,
    GreedyImbalanceScheduler,
    HillClimbingScheduler,
    ImbalanceObjective,
)


class TestScenario1AggregationForScheduling:
    def test_aggregation_reduces_count_and_measures_quantify_loss(
        self, small_neighbourhood
    ):
        originals = list(small_neighbourhood.flex_offers)
        aggregates = aggregate_all(group_by_grid(originals))
        assert len(aggregates) <= len(originals)

        report = aggregation_loss(originals, aggregates, ["time", "energy", "product"])
        # Start-alignment aggregation preserves total energy flexibility and
        # never gains time or product flexibility.
        assert report.retained("energy") == pytest.approx(1.0)
        assert report.retained("time") <= 1.0 + 1e-9
        assert report.retained("product") <= 1.0 + 1e-9

    def test_schedule_aggregates_then_disaggregate_to_members(
        self, small_neighbourhood
    ):
        originals = list(small_neighbourhood.flex_offers)
        aggregates = aggregate_all(group_by_grid(originals))
        scheduler = GreedyImbalanceScheduler(
            ImbalanceObjective("absolute", small_neighbourhood.supply)
        )
        schedule = scheduler.schedule(
            [a.flex_offer for a in aggregates], small_neighbourhood.supply
        )
        total_members = 0
        for aggregated, assignment in zip(aggregates, schedule):
            parts = disaggregate(aggregated, assignment)
            total_members += len(parts)
            assert sum(p.total_energy for p in parts) == assignment.total_energy
        assert total_members == len(originals)

    def test_flexibility_correlates_with_scheduling_benefit(self, small_neighbourhood):
        """More retained flexibility -> lower imbalance (the Scenario 1 thesis)."""
        originals = list(small_neighbourhood.flex_offers)
        supply = small_neighbourhood.supply
        objective = ImbalanceObjective("absolute", supply)

        baseline = EarliestStartScheduler().schedule(originals)
        pinned = [f.without_time_flexibility().without_energy_flexibility() for f in originals]
        flexible_schedule = GreedyImbalanceScheduler(objective).schedule(originals, supply)
        pinned_schedule = GreedyImbalanceScheduler(objective).schedule(pinned, supply)

        assert objective.of_schedule(flexible_schedule) <= objective.of_schedule(
            pinned_schedule
        )
        assert objective.of_schedule(flexible_schedule) <= objective.of_schedule(baseline)

    def test_all_schedulers_agree_flexibility_helps(self, small_neighbourhood):
        originals = list(small_neighbourhood.flex_offers)
        supply = small_neighbourhood.supply
        objective = ImbalanceObjective("absolute", supply)
        baseline_value = objective.of_schedule(
            EarliestStartScheduler().schedule(originals)
        )
        for scheduler in (
            GreedyImbalanceScheduler(objective),
            HillClimbingScheduler(iterations=150, restarts=1, seed=2, objective=objective),
            EvolutionaryScheduler(population_size=8, generations=10, seed=2, objective=objective),
        ):
            value = objective.of_schedule(scheduler.schedule(originals, supply))
            assert value <= baseline_value


class TestScenario2TradingAndBalancing:
    def test_aggregator_to_market_pipeline(self, small_neighbourhood):
        aggregator = Aggregator("agg")
        aggregator.collect(small_neighbourhood.flex_offers)
        lots = aggregator.aggregate()

        session = TradingSession(
            FlexibilityPricer(measure="product", energy_price=1.0, premium_per_unit=2.0),
            budget=1e6,
        )
        accepted, rejected = session.clear(lots)
        assert len(accepted) + len(rejected) == len(lots)
        assert accepted  # a large budget buys at least one lot

        brp = BalanceResponsibleParty("brp", small_neighbourhood.supply)
        purchased = [bid.flex_offer for bid in accepted]
        schedule = brp.schedule_flexibility(purchased)
        settlement = ImbalanceSettlement(small_neighbourhood.prices)
        result = settlement.settle(schedule, small_neighbourhood.supply)
        assert result.imbalance_cost >= 0

    def test_balancing_portfolio_uses_mixed_capable_measures(self, small_balancing):
        flex_offers = list(small_balancing.flex_offers)
        result = balance_aggregate(flex_offers, pair_size=2)
        aggregate_offers = [a.flex_offer for a in result.aggregates]

        # Mixed aggregates: area measures are excluded, vector/assignments remain.
        measures = {m.key for m in applicable_measures(aggregate_offers)}
        if result.mixed_count:
            assert "absolute_area" not in measures
        assert {"time", "energy", "vector", "assignments"}.issubset(measures)

        report = evaluate_set(aggregate_offers)
        assert report.size == len(aggregate_offers)
        assert report.values["vector"] >= 0

    def test_flexibility_reduces_imbalance_cost(self, small_neighbourhood):
        originals = list(small_neighbourhood.flex_offers)
        supply = small_neighbourhood.supply
        settlement = ImbalanceSettlement(small_neighbourhood.prices)
        baseline = EarliestStartScheduler().schedule(originals)
        brp = BalanceResponsibleParty("brp", supply)
        flexible = brp.schedule_flexibility(originals)
        assert settlement.savings(baseline, flexible, supply) >= 0
