"""Tests for comparison matrices, statistics and text reporting."""

import pytest

from repro.aggregation import aggregate_all, aggregation_loss, group_by_grid
from repro.analysis import (
    format_comparison,
    format_loss_report,
    format_table,
    measure_matrix,
    measure_summary,
    population_summary,
    ranking_agreement,
    summarise,
)
from repro.measures import compare_sets


class TestMeasureMatrix:
    def test_shape_and_labels(self, fig1, fig7_f6):
        matrix = measure_matrix([fig1, fig7_f6], ["time", "product", "absolute_area"])
        assert matrix.flexoffer_names == (fig1.name, fig7_f6.name)
        assert matrix.measure_keys == ("time", "product", "absolute_area")

    def test_unsupported_cells_are_none(self, fig1, fig7_f6):
        matrix = measure_matrix([fig1, fig7_f6], ["absolute_area"])
        assert matrix.value(fig1.name, "absolute_area") is not None
        assert matrix.value(fig7_f6.name, "absolute_area") is None

    def test_column_and_ranking(self, fig1, fig3_f2):
        matrix = measure_matrix([fig1, fig3_f2], ["product"])
        assert matrix.column("product")[fig1.name] == 60
        assert matrix.ranking("product") == [fig1.name, fig3_f2.name]

    def test_unnamed_flexoffers_get_generated_labels(self, fig1):
        anonymous = fig1.with_name(None) if False else fig1  # keep named fixture intact
        matrix = measure_matrix([anonymous], ["time"])
        assert matrix.flexoffer_names[0] == fig1.name

    def test_as_rows_for_export(self, fig1):
        rows = measure_matrix([fig1], ["time", "energy"]).as_rows()
        assert rows[0]["flex_offer"] == fig1.name
        assert rows[0]["time"] == 5

    def test_ranking_agreement_bounds(self, fig1, fig3_f2, fig5_f4):
        matrix = measure_matrix([fig1, fig3_f2, fig5_f4], ["time", "product", "vector"])
        agreement = ranking_agreement(matrix, "time", "vector")
        assert 0.0 <= agreement <= 1.0
        assert ranking_agreement(matrix, "time", "time") == 1.0

    def test_ranking_agreement_single_offer_defaults_to_one(self, fig1):
        matrix = measure_matrix([fig1], ["time", "product"])
        assert ranking_agreement(matrix, "time", "product") == 1.0


class TestStatistics:
    def test_summarise_basic(self):
        summary = summarise([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1 and summary.maximum == 4
        assert summary.as_dict()["count"] == 4

    def test_summarise_empty(self):
        summary = summarise([])
        assert summary.count == 0 and summary.mean == 0

    def test_population_summary_keys(self, small_neighbourhood):
        summary = population_summary(list(small_neighbourhood.flex_offers))
        assert set(summary) == {
            "time_flexibility", "energy_flexibility", "duration", "expected_energy",
        }
        assert summary["duration"].minimum >= 1

    def test_measure_summary_skips_unsupported(self, fig1, fig7_f6):
        summary = measure_summary([fig1, fig7_f6], "absolute_area")
        assert summary.count == 1  # the mixed flex-offer is skipped


class TestReporting:
    def test_format_table_renders_none_and_floats(self):
        text = format_table(["a", "b"], [[1.23456, None], ["x", True]], title="T")
        assert "T" in text
        assert "1.235" in text
        assert "-" in text
        assert "Yes" in text

    def test_format_comparison(self, fig1, fig3_f2):
        comparison = compare_sets([fig1, fig3_f2], [fig1], ["product", "time"])
        text = format_comparison(comparison, title="loss")
        assert "product" in text and "retained" in text

    def test_format_loss_report(self, small_neighbourhood):
        originals = list(small_neighbourhood.flex_offers)
        reports = {
            "grouped": aggregation_loss(
                originals, aggregate_all(group_by_grid(originals)), ["time", "product"]
            )
        }
        text = format_loss_report(reports, ["time", "product"])
        assert "grouped" in text
        assert "retained[time]" in text
