"""Golden tick fixtures: per-tick window summaries must stay byte-stable.

``tests/fixtures/streaming_ticks_1k.json`` records a seeded 1,000-offer
streaming run — arrivals in chunks of 50, a :class:`~repro.stream.Tick`
advancing the clock by 3 after each chunk, auto-expiry on, a 32-sample
window per tracked measure — together with every tick's
:meth:`~repro.stream.window.WindowTracker.summary` exactly as the scalar
window kernel on the reference backend computed it when the fixture was
written.  The regression test replays the identical run on **every**
backend (``reference`` / ``numpy`` / ``sharded`` — scalar and array window
kernels alike) and requires exact equality with the stored JSON numbers
(floats round-trip losslessly through JSON), so

* a PR that drifts tick sampling, window statistics, auto-expiry order or
  the measure fold fails loudly, and
* the array window kernel and the bulk ``cumsum`` sampling path are pinned
  to the recorded scalar values, not merely to whatever the scalar path
  produces today.

Regenerate (only after an *intentional* semantics change) with::

    PYTHONPATH=src python tests/stream/test_golden_ticks.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.backend import NUMPY_AVAILABLE, available_backends
from repro.stream import StreamingEngine, Tick
from repro.workloads.generator import PopulationSpec, generate_population

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
FIXTURE = "streaming_ticks_1k.json"

#: The seeded 1,000-offer population behind the fixture.
SPEC = PopulationSpec(
    counts={
        "ev": 250,
        "heat_pump": 150,
        "dishwasher": 150,
        "washing_machine": 100,
        "refrigerator": 100,
        "solar": 100,
        "wind": 50,
        "v2g": 100,
    },
    seed=8080,
    horizon=48,
)

#: Streaming protocol: chunked arrivals, the clock stepping between chunks.
CHUNK = 50
TICK_STEP = 3
WINDOW_CAPACITY = 32

#: Tracked measures, pinned explicitly: the registry may carry extra
#: measures registered by other test modules.
MEASURES = ("time", "energy", "product", "vector", "assignments")

BACKENDS = [
    "reference",
    "sharded",
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not NUMPY_AVAILABLE, reason="NumPy backend not available"
        ),
    ),
    # Sharded again, but with every shard crossing a TCP wire to loopback
    # worker subprocesses: the streaming fold must survive serialization.
    "sharded-remote",
]


@pytest.fixture(scope="module")
def remote_backend_registered():
    """Register ``sharded-remote`` backed by a loopback worker cluster.

    Requested lazily (``request.getfixturevalue``) by the one parametrized
    case that needs it, so the other backends never pay the subprocess
    spin-up.
    """
    from repro.backend import ShardedBackend, register_backend
    from repro.backend.dispatch import _REGISTRY
    from repro.cluster import LocalCluster

    class _RemoteSharded(ShardedBackend):
        name = "sharded-remote"

    with LocalCluster(workers=2) as cluster:
        backend = _RemoteSharded(
            shards=3, executor="remote", min_population=1,
            cluster=cluster.spec(),
        )
        register_backend(backend)
        try:
            yield backend.name
        finally:
            backend.close()
            _REGISTRY.pop(backend.name, None)


def run_streaming(backend: str, window_kernel=None) -> list[dict]:
    """Replay the fixture protocol; one record per tick."""
    population = generate_population(SPEC)
    assert len(population) == 1000
    engine = StreamingEngine(
        measures=MEASURES,
        window_capacity=WINDOW_CAPACITY,
        auto_expire=True,
        backend=backend,
        window_kernel=window_kernel,
    )
    ticks: list[dict] = []
    time = 0
    for start in range(0, len(population), CHUNK):
        chunk = population[start : start + CHUNK]
        engine.bulk_arrive(
            (f"offer-{start + index:04d}", offer)
            for index, offer in enumerate(chunk)
        )
        time += TICK_STEP
        engine.apply(Tick(time))
        ticks.append(
            {
                "time": time,
                "live": len(engine),
                "windows": engine.tracker.summary(),
            }
        )
    return ticks


def build_fixture() -> dict:
    """The fixture payload (reference backend, scalar window kernel)."""
    return {
        "spec": {
            "counts": dict(SPEC.counts),
            "seed": SPEC.seed,
            "horizon": SPEC.horizon,
        },
        "protocol": {
            "chunk": CHUNK,
            "tick_step": TICK_STEP,
            "window_capacity": WINDOW_CAPACITY,
            "measures": list(MEASURES),
        },
        "ticks": run_streaming("reference", window_kernel="scalar"),
    }


def _load() -> dict:
    return json.loads((FIXTURE_DIR / FIXTURE).read_text())


def test_fixture_matches_its_generating_protocol():
    """The stored spec/protocol block still describes this module's run."""
    stored = _load()
    assert stored["spec"] == {
        "counts": dict(SPEC.counts),
        "seed": SPEC.seed,
        "horizon": SPEC.horizon,
    }
    assert stored["protocol"] == {
        "chunk": CHUNK,
        "tick_step": TICK_STEP,
        "window_capacity": WINDOW_CAPACITY,
        "measures": list(MEASURES),
    }
    assert len(stored["ticks"]) == 1000 // CHUNK


@pytest.mark.parametrize("backend", BACKENDS)
def test_tick_summaries_are_byte_stable(backend, request):
    """Every per-tick window summary is reproduced exactly, per backend.

    No tolerance anywhere: the array kernel's ``cumsum``/deque/sort paths
    and the engine's bulk sampling fold are designed to reproduce the
    scalar floats bit for bit, and this is where that claim is enforced
    against a *committed* artifact rather than a freshly computed one.
    """
    if backend == "sharded-remote":
        request.getfixturevalue("remote_backend_registered")
    assert backend in available_backends()
    stored = _load()["ticks"]
    replayed = run_streaming(backend)
    assert len(replayed) == len(stored)
    for expected, actual in zip(stored, replayed):
        assert actual["time"] == expected["time"]
        assert actual["live"] == expected["live"]
        assert actual["windows"] == expected["windows"]


def test_fixture_is_current():
    """Rebuilding the fixture reproduces the committed file verbatim."""
    assert build_fixture() == _load()


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    payload = build_fixture()
    target = FIXTURE_DIR / FIXTURE
    target.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {target} ({len(payload['ticks'])} ticks)")
