"""Differential window-conformance: the array kernel must match the scalar.

The scalar :class:`~repro.stream.window.MeasureWindow` *is* the window
semantics; the NumPy ring-buffer
:class:`~repro.stream.windowkernels.ArrayMeasureWindow` is only trustworthy
if it is observationally equivalent.  The hypothesis property here drives
*identical interleavings* of records, ring evictions and queries through
both kernels side by side and asserts, after every operation:

* exact float equality on ``total`` / ``minimum`` / ``maximum`` / ``count``
  / ``last`` / ``values`` (the ``cumsum`` fold and the monotonic deques are
  designed to be bit-identical, not merely close);
* agreement within 1e-9 on ``mean`` and every percentile (also exact in
  practice — the tolerance is the contract, the exactness an
  implementation property);
* the same :class:`~repro.stream.StreamError` on the same bad inputs
  (non-finite samples, out-of-range percentiles), with no state change.

The deterministic tests pin the named edge cases — capacity 1, all-equal
values, negative values, non-finite rejection — plus the per-backend kernel
selection: the reference backend keeps the scalar kernel, the NumPy and
sharded tiers hand out the array kernel, and ``REPRO_WINDOW_KERNEL`` /
``StreamingEngine(window_kernel=...)`` override either way.
"""

from __future__ import annotations

import math
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import NUMPY_AVAILABLE, ShardedBackend, get_backend
from repro.stream import MeasureWindow, StreamError, StreamingEngine
from repro.stream.engine import ENV_WINDOW_KERNEL

if NUMPY_AVAILABLE:
    from repro.stream.windowkernels import ArrayMeasureWindow

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="the array window kernel needs NumPy"
)

#: Percentiles every comparison probes, the boundaries included.
PROBES = (0, 25, 50, 90, 100)


def assert_windows_agree(scalar: MeasureWindow, array) -> None:
    """One full cross-examination of both kernels' observable state."""
    assert len(array) == len(scalar)
    assert array.values() == scalar.values()
    assert array.samples() == scalar.samples()
    assert array.last == scalar.last
    assert array.total() == scalar.total()
    if len(scalar):
        assert array.minimum() == scalar.minimum()
        assert array.maximum() == scalar.maximum()
        assert math.isclose(
            array.mean(), scalar.mean(), rel_tol=0, abs_tol=1e-9
        )
        for q in PROBES:
            assert math.isclose(
                array.percentile(q),
                scalar.percentile(q),
                rel_tol=0,
                abs_tol=1e-9,
            )
        array_summary = array.summary()
        scalar_summary = scalar.summary()
        assert set(array_summary) == set(scalar_summary)
        for key in ("count", "last", "total", "min", "max"):
            assert array_summary[key] == scalar_summary[key]
        for key in ("mean", "p50", "p90"):
            assert math.isclose(
                array_summary[key],
                scalar_summary[key],
                rel_tol=0,
                abs_tol=1e-9,
            )
    else:
        assert array.summary() == scalar.summary() == {"count": 0}
        for kernel in (scalar, array):
            with pytest.raises(StreamError):
                kernel.minimum()
            with pytest.raises(StreamError):
                kernel.maximum()
            with pytest.raises(StreamError):
                kernel.percentile(50)


#: Finite sample values: plain floats (negatives included), integral
#: floats (repeat-heavy, so all-equal windows occur) and exact halves.
sample_values = st.one_of(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    st.integers(min_value=-5, max_value=5).map(float),
    st.integers(min_value=-100, max_value=100).map(lambda n: n / 2),
)


class TestDifferentialConformance:
    """Both kernels through identical interleavings, compared per step."""

    @pytest.mark.slow
    @settings(max_examples=200, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=9),
        values=st.lists(sample_values, max_size=40),
    )
    def test_every_prefix_agrees(self, capacity, values):
        scalar = MeasureWindow(capacity)
        array = ArrayMeasureWindow(capacity)
        assert_windows_agree(scalar, array)
        for time, value in enumerate(values):
            scalar.record(time, value)
            array.record(time, value)
            assert_windows_agree(scalar, array)

    @pytest.mark.slow
    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        values=st.lists(sample_values, min_size=1, max_size=25),
        bad_at=st.integers(min_value=0, max_value=24),
        bad=st.sampled_from([float("nan"), float("inf"), float("-inf")]),
    )
    def test_rejections_leave_both_kernels_unchanged(
        self, capacity, values, bad_at, bad
    ):
        scalar = MeasureWindow(capacity)
        array = ArrayMeasureWindow(capacity)
        for time, value in enumerate(values):
            if time == bad_at % len(values):
                for kernel in (scalar, array):
                    with pytest.raises(StreamError):
                        kernel.record(time, bad)
            scalar.record(time, value)
            array.record(time, value)
        assert_windows_agree(scalar, array)

    def test_capacity_one_tracks_the_last_sample_only(self):
        scalar, array = MeasureWindow(1), ArrayMeasureWindow(1)
        for time, value in enumerate([5.0, -3.0, 7.5, 7.5, 0.0]):
            scalar.record(time, value)
            array.record(time, value)
            assert_windows_agree(scalar, array)
            assert array.minimum() == array.maximum() == value

    def test_all_equal_values(self):
        scalar, array = MeasureWindow(4), ArrayMeasureWindow(4)
        for time in range(10):
            scalar.record(time, 2.5)
            array.record(time, 2.5)
            assert_windows_agree(scalar, array)
        assert array.percentile(0) == array.percentile(100) == 2.5

    def test_negative_values_and_eviction_of_the_extreme(self):
        # The initial extremes (-100 and 50) slide out of the ring; the
        # monotonic deques must forget them exactly when the scalar does.
        stream = [-100.0, 50.0, -1.0, -2.0, -3.0, -0.5]
        scalar, array = MeasureWindow(3), ArrayMeasureWindow(3)
        for time, value in enumerate(stream):
            scalar.record(time, value)
            array.record(time, value)
            assert_windows_agree(scalar, array)
        assert array.minimum() == -3.0
        assert array.maximum() == -0.5

    def test_invalid_percentiles_and_capacities_match(self):
        for bad in (0, -2, 1.5, True):
            with pytest.raises(StreamError):
                ArrayMeasureWindow(bad)
        window = ArrayMeasureWindow(4)
        window.record(0, 1.0)
        for q in (-0.1, 100.1):
            with pytest.raises(StreamError):
                window.percentile(q)

    def test_array_sorted_view_is_memoised_and_invalidated(self):
        window = ArrayMeasureWindow(4)
        for time, value in enumerate([4.0, 1.0, 3.0]):
            window.record(time, value)
        assert window._ordered() is window._ordered()
        ordered = window._ordered()
        window.record(3, 2.0)
        assert window._ordered() is not ordered
        assert window.percentile(50) == 2.0


class TestKernelSelection:
    """Backend hook, env knob and explicit override resolution."""

    def test_backend_hooks_pick_the_expected_kernel(self):
        assert get_backend("reference").measure_window(4).kernel == "scalar"
        assert get_backend("numpy").measure_window(4).kernel == "array"
        sharded = ShardedBackend(shards=2)
        try:
            assert sharded.measure_window(4).kernel == sharded.inner.measure_window(4).kernel
        finally:
            sharded.close()

    def test_engine_inherits_its_backend_kernel(self):
        assert (
            StreamingEngine(window_capacity=4, backend="numpy").window_kernel
            == "array"
        )
        assert (
            StreamingEngine(
                window_capacity=4, backend="reference"
            ).window_kernel
            == "scalar"
        )
        assert StreamingEngine().window_kernel is None

    def test_explicit_kernel_beats_the_backend(self):
        engine = StreamingEngine(
            window_capacity=4, backend="numpy", window_kernel="scalar"
        )
        assert engine.window_kernel == "scalar"
        engine = StreamingEngine(
            window_capacity=4, backend="reference", window_kernel="array"
        )
        assert engine.window_kernel == "array"

    def test_env_knob_is_consulted_when_no_explicit_kernel(self, monkeypatch):
        monkeypatch.setenv(ENV_WINDOW_KERNEL, "array")
        assert (
            StreamingEngine(
                window_capacity=4, backend="reference"
            ).window_kernel
            == "array"
        )
        monkeypatch.setenv(ENV_WINDOW_KERNEL, "scalar")
        assert (
            StreamingEngine(window_capacity=4, backend="numpy").window_kernel
            == "scalar"
        )

    def test_invalid_env_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_WINDOW_KERNEL, "gpu")
        with pytest.warns(RuntimeWarning, match="REPRO_WINDOW_KERNEL"):
            engine = StreamingEngine(window_capacity=4, backend="reference")
        assert engine.window_kernel == "scalar"

    def test_invalid_explicit_kernel_raises(self):
        with pytest.raises(StreamError):
            StreamingEngine(window_capacity=4, window_kernel="gpu")

    def test_lazy_package_export(self):
        import repro.stream

        assert repro.stream.ArrayMeasureWindow is ArrayMeasureWindow
        with pytest.raises(AttributeError):
            repro.stream.NoSuchKernel


class TestEngineConformance:
    """Identical event streams give matching window summaries per backend."""

    def run_engine(self, backend, window_kernel=None):
        from repro.stream import OfferArrived, Tick
        from repro.workloads import neighbourhood_scenario

        scenario = neighbourhood_scenario(households=6, seed=11, horizon=32)
        engine = StreamingEngine(
            window_capacity=8,
            backend=backend,
            window_kernel=window_kernel,
            auto_expire=True,
        )
        for index, offer in enumerate(scenario.flex_offers):
            engine.apply(OfferArrived(f"offer-{index}", offer))
            if index % 3 == 2:
                engine.apply(Tick(index))
        engine.apply(Tick(10_000))
        return engine

    @pytest.mark.parametrize("backend", ["reference", "numpy", "sharded"])
    def test_tick_summaries_match_the_scalar_reference(self, backend):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResourceWarning)
            reference = self.run_engine("reference", window_kernel="scalar")
            candidate = self.run_engine(backend)
        expected = reference.tracker.summary()
        actual = candidate.tracker.summary()
        assert set(actual) == set(expected)
        for key, block in expected.items():
            other = actual[key]
            assert set(other) == set(block)
            for stat, value in block.items():
                if stat in ("count", "last", "total", "min", "max"):
                    assert other[stat] == value
                else:
                    assert math.isclose(
                        other[stat], value, rel_tol=0, abs_tol=1e-9
                    )
