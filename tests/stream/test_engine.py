"""Tests of the streaming engine: batch equivalence, life-cycle, windows."""

from __future__ import annotations

import pytest

from repro.aggregation import (
    GroupingParameters,
    aggregate_all,
    group_by_grid,
)
from repro.core import FlexOffer
from repro.market import FlexibilityPricer, TradingSession
from repro.measures import evaluate_set
from repro.stream import (
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamError,
    StreamingEngine,
    Tick,
    churn_events,
    market_events,
    offer_identifier,
    population_events,
)
from repro.workloads import balancing_scenario, neighbourhood_scenario

MEASURES = ["time", "energy", "product", "vector"]


def assert_batch_equivalent(engine, survivors, parameters, measures=None):
    """The core guarantee: snapshot ≡ batch pipeline on the survivors."""
    snapshot = engine.snapshot()
    assert list(snapshot.live) == list(survivors)
    batch_groups = group_by_grid(survivors, parameters)
    assert [list(group) for group in snapshot.groups] == batch_groups
    assert list(snapshot.aggregates) == aggregate_all(batch_groups)
    assert snapshot.report == evaluate_set(survivors, measures)


class TestBatchEquivalence:
    def test_population_replay_equals_batch(self):
        scenario = neighbourhood_scenario(households=10, seed=7, horizon=32)
        parameters = GroupingParameters()
        engine = StreamingEngine(parameters=parameters).replay(
            population_events(scenario.flex_offers)
        )
        assert_batch_equivalent(engine, list(scenario.flex_offers), parameters)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_churn_replay_equals_batch_on_survivors(self, seed):
        scenario = neighbourhood_scenario(households=12, seed=7, horizon=32)
        parameters = GroupingParameters(2, 2, 3)
        log = churn_events(scenario.flex_offers, survive_fraction=0.5, seed=seed)
        engine = StreamingEngine(parameters=parameters).replay(log)
        expired = {
            event.offer_id for event in log if isinstance(event, OfferExpired)
        }
        survivors = [
            event.flex_offer
            for event in log
            if isinstance(event, OfferArrived) and event.offer_id not in expired
        ]
        assert_batch_equivalent(engine, survivors, parameters)

    def test_mixed_population_skips_measures_like_batch(self):
        # The balancing scenario contains production and mixed flex-offers,
        # so some measures are unsupported — skipped must match batch.
        scenario = balancing_scenario(units=12, seed=11, horizon=32)
        parameters = GroupingParameters()
        engine = StreamingEngine(parameters=parameters).replay(
            population_events(scenario.flex_offers)
        )
        batch = evaluate_set(list(scenario.flex_offers))
        report = engine.report()
        assert report == batch
        # Skipped measures become available again once the offending
        # offers leave the population.
        log = population_events(scenario.flex_offers)
        engine2 = StreamingEngine(parameters=parameters).replay(log)
        unsupported_ids = [
            event.offer_id
            for event in log
            if any(
                not measure.supports(event.flex_offer)
                for measure in engine2.measures
            )
        ]
        for offer_id in unsupported_ids:
            engine2.apply(OfferExpired(offer_id))
        survivors = [
            event.flex_offer
            for event in log
            if event.offer_id not in set(unsupported_ids)
        ]
        assert engine2.report() == evaluate_set(survivors)
        assert engine2.report().skipped == ()

    def test_empty_engine_matches_empty_batch(self):
        engine = StreamingEngine(measures=MEASURES)
        assert engine.report() == evaluate_set([], MEASURES)
        assert engine.snapshot().groups == ()
        assert engine.snapshot().aggregates == ()


class TestLifecycle:
    def offer(self, name, tes=0):
        return FlexOffer(tes, tes + 2, [(1, 3), (0, 2)], name=name)

    def test_assignment_removes_and_accrues_revenue(self):
        engine = StreamingEngine(measures=MEASURES)
        engine.apply(OfferArrived("a", self.offer("a")))
        engine.apply(OfferArrived("b", self.offer("b")))
        engine.apply(OfferAssigned("a", start_time=1, price=42.0))
        assert engine.live_ids() == ["b"]
        assert engine.stats.assigned == 1
        assert engine.stats.revenue == 42.0

    def test_double_removal_rejected(self):
        engine = StreamingEngine(measures=MEASURES)
        engine.apply(OfferArrived("a", self.offer("a")))
        engine.apply(OfferExpired("a"))
        with pytest.raises(StreamError):
            engine.apply(OfferExpired("a"))

    def test_duplicate_arrival_rejected(self):
        engine = StreamingEngine(measures=MEASURES)
        engine.apply(OfferArrived("a", self.offer("a")))
        with pytest.raises(StreamError):
            engine.apply(OfferArrived("a", self.offer("a2")))

    def test_time_must_be_monotonic(self):
        engine = StreamingEngine(measures=MEASURES)
        engine.apply(Tick(5))
        engine.apply(Tick(5))  # equal is fine
        with pytest.raises(StreamError):
            engine.apply(Tick(4))

    def test_auto_expiry_on_tick(self):
        engine = StreamingEngine(measures=MEASURES, auto_expire=True)
        engine.apply(OfferArrived("early", self.offer("early", tes=0)))  # tls=2
        engine.apply(OfferArrived("late", self.offer("late", tes=8)))  # tls=10
        engine.apply(Tick(2))
        assert engine.live_ids() == ["early", "late"]  # tls=2 can still start at 2
        engine.apply(Tick(3))
        assert engine.live_ids() == ["late"]
        assert engine.stats.expired == 1

    def test_auto_expiry_ignores_stale_deadline_of_reused_id(self):
        # Regression: an id reused by a later arrival must not inherit the
        # previous occupant's (earlier) deadline.
        engine = StreamingEngine(measures=MEASURES, auto_expire=True)
        engine.apply(OfferArrived("x", self.offer("x1", tes=0)))  # tls=2
        engine.apply(OfferExpired("x"))
        engine.apply(OfferArrived("x", self.offer("x2", tes=50)))  # tls=52
        engine.apply(Tick(10))
        assert engine.live_ids() == ["x"]
        assert engine.stats.expired == 1  # only the explicit expiry
        engine.apply(Tick(53))
        assert engine.live_ids() == []
        assert engine.stats.expired == 2

    def test_auto_expiry_skips_already_removed(self):
        engine = StreamingEngine(measures=MEASURES, auto_expire=True)
        engine.apply(OfferArrived("a", self.offer("a", tes=0)))
        engine.apply(OfferAssigned("a"))
        engine.apply(Tick(100))  # stale deadline must not raise
        assert engine.stats.expired == 0

    def test_hooks_fire_after_state_change(self):
        seen = []

        def on_assigned(offer_id, flex_offer, event):
            seen.append((offer_id, flex_offer.name, event.price))

        engine = StreamingEngine(measures=MEASURES, on_assigned=on_assigned)
        engine.apply(OfferArrived("a", self.offer("a")))
        engine.apply(OfferAssigned("a", price=7.0))
        assert seen == [("a", "a", 7.0)]

    def test_unknown_event_rejected(self):
        with pytest.raises(StreamError):
            StreamingEngine(measures=MEASURES).apply("not an event")


class TestWindowSampling:
    def test_tick_samples_population_values(self):
        scenario = neighbourhood_scenario(households=6, seed=7, horizon=32)
        engine = StreamingEngine(measures=MEASURES, window_capacity=32)
        for sequence, event in enumerate(population_events(scenario.flex_offers)):
            engine.apply(event)
            engine.apply(Tick(sequence))
        window = engine.tracker.window("time")
        assert len(window) == scenario.size
        # The last sample equals the batch set value of the full population.
        batch = evaluate_set(list(scenario.flex_offers), MEASURES)
        assert window.last == batch.values["time"]
        summary = engine.snapshot().window_summary
        assert summary["time"]["count"] == float(scenario.size)

    def test_no_tracker_without_capacity(self):
        engine = StreamingEngine(measures=MEASURES)
        assert engine.tracker is None
        assert engine.snapshot().window_summary == {}


class TestMarketReplay:
    def test_market_events_assign_accepted_lots(self):
        scenario = neighbourhood_scenario(households=8, seed=7, horizon=32)
        parameters = GroupingParameters()
        groups = group_by_grid(list(scenario.flex_offers), parameters)
        lots = aggregate_all(groups)
        session = TradingSession(
            pricer=FlexibilityPricer(measure="vector"), budget=5000.0
        )
        log = market_events(session, lots)
        engine = StreamingEngine(parameters=parameters).replay(log)
        accepted, rejected = TradingSession(
            pricer=FlexibilityPricer(measure="vector"), budget=5000.0
        ).clear(lots)
        assert engine.stats.assigned == len(accepted)
        assert engine.size == len(rejected)
        assert engine.stats.revenue == pytest.approx(
            sum(bid.total_price for bid in accepted)
        )
        # The still-live lots are exactly the rejected ones.
        live_names = {flex_offer.name for flex_offer in engine.live_offers()}
        assert live_names == {bid.flex_offer.name for bid in rejected}

    def test_market_events_handle_duplicate_lot_objects(self):
        # Regression: the same lot object offered twice must get two distinct
        # offer ids and replay cleanly.
        lot = FlexOffer(0, 2, [(1, 3), (0, 2)], name="dup")
        session = TradingSession(pricer=FlexibilityPricer(measure="time"))
        log = market_events(session, [lot, lot])
        arrivals = [event for event in log if isinstance(event, OfferArrived)]
        assert len({event.offer_id for event in arrivals}) == 2
        engine = StreamingEngine(measures=["time"]).replay(log)
        assert engine.stats.assigned == 2  # unlimited budget buys both
        assert engine.size == 0


class TestIdentifiers:
    def test_offer_identifier_stable_and_position_unique(self):
        flex_offer = FlexOffer(1, 6, [(1, 3)], name="x")
        twin = FlexOffer(1, 6, [(1, 3)], name="x")
        assert offer_identifier(flex_offer, 3) == offer_identifier(twin, 3)
        assert offer_identifier(flex_offer, 3) != offer_identifier(flex_offer, 4)

    def test_fingerprint_ignores_name(self):
        named = FlexOffer(1, 6, [(1, 3)], name="x")
        anonymous = FlexOffer(1, 6, [(1, 3)])
        assert named.fingerprint == anonymous.fingerprint
        different = FlexOffer(1, 7, [(1, 3)])
        assert named.fingerprint != different.fingerprint


class TestInjectableState:
    """PR 5: the engine's cache, backend and compaction are per instance."""

    def test_engine_publishes_into_an_injected_cache(self):
        pytest.importorskip("numpy")
        from repro.backend import MatrixCache, matrix_cache

        private = MatrixCache(capacity=4, cell_budget=10_000)
        engine = StreamingEngine(measures=["time"], cache=private)
        offers = [FlexOffer(i, i + 2, [(1, 3)]) for i in range(5)]
        for index, offer in enumerate(offers):
            engine.apply(OfferArrived(f"o{index}", offer))
        published = engine.live_matrix()
        assert published is not None
        assert private.peek(engine.live_offers()) is published
        assert matrix_cache.peek(engine.live_offers()) is None
        # Mutation drops the entry from the *injected* cache, O(1).
        engine.apply(OfferExpired("o0"))
        assert private.peek(offers) is None

    def test_engine_backend_spec_routes_bulk_arrive(self):
        pytest.importorskip("numpy")
        from repro.backend import MatrixCache
        from repro.backend.numpy_backend import NumpyBackend

        cache = MatrixCache(capacity=4)
        backend = NumpyBackend(cache=cache)
        offers = [FlexOffer(i % 3, i % 3 + 1, [(1, 2), (0, 2)]) for i in range(6)]
        engine = StreamingEngine(
            measures=["time", "vector"], cache=cache, backend=backend
        )
        engine.bulk_arrive((f"o{i}", offer) for i, offer in enumerate(offers))
        baseline = StreamingEngine(measures=["time", "vector"])
        for index, offer in enumerate(offers):
            baseline.apply(OfferArrived(f"o{index}", offer))
        assert engine.snapshot() == baseline.snapshot()

    def test_engine_compact_threshold_parameter(self):
        pytest.importorskip("numpy")
        engine = StreamingEngine(measures=["time"], compact_threshold=0.0)
        for index in range(4):
            engine.apply(OfferArrived(f"o{index}", FlexOffer(0, 2, [(1, 3)])))
        engine.apply(OfferExpired("o1"))
        # Threshold 0 compacts on every tombstone: no dead rows linger.
        assert engine._live.matrix.dead_count == 0
