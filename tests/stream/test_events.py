"""Tests of the streaming event model and the append-only event log."""

from __future__ import annotations

import pytest

from repro.core import FlexOffer
from repro.stream import (
    EventLog,
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamError,
    Tick,
)

FO = FlexOffer(1, 6, [(1, 3), (2, 4)], name="f")


class TestEventValidation:
    def test_arrival_carries_offer(self):
        event = OfferArrived("a", FO)
        assert event.offer_id == "a"
        assert event.flex_offer is FO

    def test_arrival_rejects_empty_id(self):
        with pytest.raises(StreamError):
            OfferArrived("", FO)

    def test_arrival_rejects_non_flexoffer(self):
        with pytest.raises(StreamError):
            OfferArrived("a", "not a flex-offer")

    def test_expiry_and_assignment_reject_empty_id(self):
        with pytest.raises(StreamError):
            OfferExpired("")
        with pytest.raises(StreamError):
            OfferAssigned("")

    def test_assignment_optional_fields(self):
        event = OfferAssigned("a", start_time=3, price=12.5)
        assert event.start_time == 3
        assert event.price == 12.5

    def test_tick_rejects_non_int_time(self):
        with pytest.raises(StreamError):
            Tick("noon")
        with pytest.raises(StreamError):
            Tick(True)

    def test_events_are_frozen(self):
        event = OfferExpired("a")
        with pytest.raises(Exception):
            event.offer_id = "b"


class TestEventLog:
    def test_append_returns_sequence_numbers(self):
        log = EventLog()
        assert log.append(OfferArrived("a", FO)) == 0
        assert log.append(OfferExpired("a")) == 1
        assert log.next_sequence == 2

    def test_iteration_preserves_append_order(self):
        events = [OfferArrived("a", FO), Tick(1), OfferExpired("a")]
        log = EventLog(events)
        assert list(log) == events
        assert len(log) == 3
        assert log[1] == Tick(1)

    def test_since_returns_suffix(self):
        events = [OfferArrived("a", FO), Tick(1), OfferExpired("a")]
        log = EventLog(events)
        assert log.since(1) == events[1:]
        assert log.since(3) == []

    def test_since_rejects_negative(self):
        with pytest.raises(StreamError):
            EventLog().since(-1)

    def test_append_rejects_non_events(self):
        with pytest.raises(StreamError):
            EventLog().append("not an event")
