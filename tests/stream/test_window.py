"""Tests of the ring buffer and the sliding-window measure statistics."""

from __future__ import annotations

import math

import pytest

from repro.stream import MeasureWindow, RingBuffer, StreamError, WindowTracker
from repro.stream.window import nearest_rank


class TestRingBuffer:
    def test_fills_then_overwrites_oldest(self):
        buffer = RingBuffer(3)
        for value in (1, 2, 3):
            buffer.push(value)
        assert buffer.items() == [1, 2, 3]
        assert buffer.full
        buffer.push(4)
        buffer.push(5)
        assert buffer.items() == [3, 4, 5]
        assert len(buffer) == 3

    def test_partial_fill(self):
        buffer = RingBuffer(4)
        buffer.push("x")
        assert buffer.items() == ["x"]
        assert not buffer.full

    def test_capacity_validation(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(StreamError):
                RingBuffer(bad)


class TestMeasureWindow:
    def build(self, values, capacity=8):
        window = MeasureWindow(capacity)
        for time, value in enumerate(values):
            window.record(time, value)
        return window

    def test_statistics(self):
        window = self.build([4.0, 1.0, 3.0, 2.0])
        assert window.last == 2.0
        assert window.total() == 10.0
        assert window.mean() == 2.5
        assert window.minimum() == 1.0
        assert window.maximum() == 4.0
        assert window.percentile(0) == 1.0
        assert window.percentile(50) == 2.0
        assert window.percentile(100) == 4.0

    def test_percentile_nearest_rank(self):
        window = self.build([10.0, 20.0, 30.0, 40.0, 50.0])
        assert window.percentile(90) == 50.0
        assert window.percentile(40) == 20.0
        assert window.percentile(41) == 30.0

    def test_percentile_fractional_rank_rounds_up(self):
        # Regression: ceil must apply to the exact q*n/100, not to a
        # truncated intermediate (33.4% of 3 samples -> rank 2).
        window = self.build([1.0, 2.0, 3.0])
        assert window.percentile(33.4) == 2.0
        assert window.percentile(66.8) == 3.0
        assert window.percentile(33.0) == 1.0

    def test_sliding_eviction_changes_statistics(self):
        window = self.build([100.0, 1.0, 2.0, 3.0], capacity=3)
        assert window.maximum() == 3.0  # the 100.0 sample slid out
        assert window.samples() == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_sorted_view_is_memoised_and_invalidated_on_record(self):
        # Repeated percentile reads between ticks reuse one sorted view...
        window = self.build([4.0, 1.0, 3.0])
        assert window.percentile(50) == 3.0
        assert window._ordered() is window._ordered()
        ordered = window._ordered()
        # ...and the next push drops it, so statistics see the new sample
        # (including one sliding an old sample out of the ring).
        window.record(3, 2.0)
        assert window._ordered() is not ordered
        assert window.percentile(50) == 2.0
        assert window.summary()["p90"] == 4.0
        for time in range(4, 12):
            window.record(time, float(time))
        assert window.percentile(0) == window.minimum()
        assert window.percentile(100) == 11.0

    def test_empty_window_guards(self):
        window = MeasureWindow(4)
        assert window.last is None
        assert window.mean() == 0.0
        assert window.summary() == {"count": 0}
        with pytest.raises(StreamError):
            window.minimum()
        with pytest.raises(StreamError):
            window.percentile(50)
        with pytest.raises(StreamError):
            self.build([1.0]).percentile(101)

    def test_summary_block(self):
        summary = self.build([1.0, 2.0, 3.0]).summary()
        assert summary["count"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["p50"] == 2.0
        assert summary["p90"] == 3.0

    @pytest.mark.parametrize("size", [1, 2, 3, 7, 64, 100, 1000])
    def test_percentile_boundaries_are_exact_extremes(self, size):
        # Regression: q=0 must be exactly minimum() and q=100 exactly
        # maximum() for *every* window size — by definition, not by the
        # luck of ceil(q*n/100) rounding the right way.
        window = self.build(
            [float((7 * index) % size) + 0.5 for index in range(size)],
            capacity=size,
        )
        assert window.percentile(0) == window.minimum()
        assert window.percentile(0.0) == window.minimum()
        assert window.percentile(100) == window.maximum()
        assert window.percentile(100.0) == window.maximum()

    def test_nearest_rank_boundary_short_circuits(self):
        # The shared helper hits the explicit q<=0 / q>=100 branches even
        # for q values where the rank formula could misround.
        ordered = [1.0, 2.0, 3.0]
        assert nearest_rank(ordered, 0) == 1.0
        assert nearest_rank(ordered, 100) == 3.0
        assert nearest_rank(ordered, 1e-300) == 1.0
        assert nearest_rank(ordered, 100.0 - 1e-12) == 3.0
        assert nearest_rank([5.0], 0) == 5.0
        assert nearest_rank([5.0], 100) == 5.0

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_samples_rejected_without_state_change(self, bad):
        window = self.build([1.0, 2.0])
        with pytest.raises(StreamError):
            window.record(2, bad)
        assert window.values() == [1.0, 2.0]
        assert math.isfinite(window.total())


class TestWindowTracker:
    def test_samples_only_present_measures(self):
        tracker = WindowTracker(["time", "vector"], capacity=4)
        tracker.sample(0, {"time": 5.0, "vector": 2.0, "energy": 9.0})
        tracker.sample(1, {"time": 6.0})  # vector skipped this round
        assert tracker.window("time").values() == [5.0, 6.0]
        assert tracker.window("vector").values() == [2.0]

    def test_unknown_window_rejected(self):
        tracker = WindowTracker(["time"])
        with pytest.raises(StreamError):
            tracker.window("ghost")
        with pytest.raises(StreamError):
            WindowTracker([])

    def test_non_finite_set_values_are_skipped_not_recorded(self):
        # A measure's float sum can overflow to inf on extreme
        # populations; that tick must be dropped for that measure, not
        # poison the window or crash the engine's tick path.
        tracker = WindowTracker(["time"], capacity=4)
        tracker.sample(0, {"time": 1.0})
        tracker.sample(1, {"time": float("inf")})
        tracker.sample(2, {"time": float("nan")})
        tracker.sample(3, {"time": 2.0})
        assert tracker.window("time").values() == [1.0, 2.0]

    def test_summary_keyed_by_measure(self):
        tracker = WindowTracker(["time"], capacity=2)
        tracker.sample(0, {"time": 1.0})
        summary = tracker.summary()
        assert set(summary) == {"time"}
        assert summary["time"]["count"] == 1.0
