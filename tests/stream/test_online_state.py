"""Tests of the incremental state: the grid index and the aggregate."""

from __future__ import annotations

import pytest

from repro.aggregation import (
    GroupingParameters,
    aggregate_start_aligned,
    group_by_grid,
)
from repro.core import FlexOffer
from repro.stream import IncrementalAggregate, OnlineGridIndex, StreamError


def offer(tes: int, tls: int, slices, name: str) -> FlexOffer:
    return FlexOffer(tes, tls, slices, name=name)


OFFERS = {
    "a": offer(0, 2, [(1, 3), (0, 2)], "a"),
    "b": offer(1, 3, [(2, 4)], "b"),
    "c": offer(4, 9, [(0, 5), (1, 2)], "c"),
    "d": offer(5, 10, [(1, 1)], "d"),
}


class TestOnlineGridIndex:
    def test_insert_and_lookup(self):
        index = OnlineGridIndex()
        cell = index.insert("a", OFFERS["a"])
        assert "a" in index
        assert index.get("a") is OFFERS["a"]
        assert index.cell_of("a") == cell
        assert len(index) == 1

    def test_duplicate_insert_rejected(self):
        index = OnlineGridIndex()
        index.insert("a", OFFERS["a"])
        with pytest.raises(StreamError):
            index.insert("a", OFFERS["b"])

    def test_evict_drops_empty_cells(self):
        index = OnlineGridIndex()
        index.insert("a", OFFERS["a"])
        cell, flex_offer = index.evict("a")
        assert flex_offer is OFFERS["a"]
        assert index.cell_count == 0
        assert "a" not in index

    def test_evict_unknown_rejected(self):
        with pytest.raises(StreamError):
            OnlineGridIndex().evict("ghost")

    @pytest.mark.parametrize(
        "parameters",
        [GroupingParameters(), GroupingParameters(3, 1, 0), GroupingParameters(2, 2, 1)],
    )
    def test_groups_match_batch_grouping(self, parameters):
        index = OnlineGridIndex(parameters)
        for offer_id, flex_offer in OFFERS.items():
            index.insert(offer_id, flex_offer)
        survivors = list(OFFERS.values())
        assert index.groups() == group_by_grid(survivors, parameters)

    def test_groups_match_batch_after_evictions(self):
        parameters = GroupingParameters(2, 2, 2)
        index = OnlineGridIndex(parameters)
        for offer_id, flex_offer in OFFERS.items():
            index.insert(offer_id, flex_offer)
        index.evict("b")
        survivors = [OFFERS[key] for key in ("a", "c", "d")]
        assert index.groups() == group_by_grid(survivors, parameters)

    def test_iteration_is_arrival_order(self):
        index = OnlineGridIndex()
        for offer_id in ("c", "a", "d"):
            index.insert(offer_id, OFFERS[offer_id])
        index.evict("a")
        index.insert("b", OFFERS["b"])
        assert list(index) == ["c", "d", "b"]


class TestIncrementalAggregate:
    def test_matches_batch_on_growing_membership(self):
        aggregate = IncrementalAggregate()
        members = []
        for offer_id in ("a", "b", "c"):
            aggregate.add(offer_id, OFFERS[offer_id])
            members.append(OFFERS[offer_id])
            assert aggregate.aggregated() == aggregate_start_aligned(members)
            assert aggregate.flex_offer() == aggregate_start_aligned(members).flex_offer

    def test_matches_batch_after_removal(self):
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b", "c", "d"):
            aggregate.add(offer_id, OFFERS[offer_id])
        aggregate.remove("b")
        survivors = [OFFERS[key] for key in ("a", "c", "d")]
        assert aggregate.aggregated() == aggregate_start_aligned(survivors)

    def test_removing_extreme_member_triggers_lazy_rebuild(self):
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b", "c"):
            aggregate.add(offer_id, OFFERS[offer_id])
        assert aggregate.rebuilds == 0
        # "a" attains min tes; removing it dirties the running extremes.
        aggregate.remove("a")
        assert aggregate.rebuilds == 0  # repair is lazy
        survivors = [OFFERS["b"], OFFERS["c"]]
        assert aggregate.aggregated() == aggregate_start_aligned(survivors)
        assert aggregate.rebuilds == 1
        # Querying again does not rebuild a clean state a second time.
        assert aggregate.anchor == OFFERS["b"].earliest_start
        assert aggregate.rebuilds == 1

    def test_removing_non_extreme_member_avoids_rebuild(self):
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b", "d"):
            aggregate.add(offer_id, OFFERS[offer_id])
        # tes=2 (min is 0), tf=3 (min is 2), end=4 (max is 6): no extreme.
        interior = offer(2, 5, [(1, 2), (1, 2)], "interior")
        aggregate.add("i", interior)
        aggregate.remove("i")
        assert aggregate.rebuilds == 0
        aggregate.flex_offer()
        assert aggregate.rebuilds == 0

    def test_running_totals(self):
        aggregate = IncrementalAggregate()
        aggregate.add("a", OFFERS["a"])
        aggregate.add("b", OFFERS["b"])
        assert aggregate.total_energy_min == OFFERS["a"].cmin + OFFERS["b"].cmin
        assert aggregate.total_energy_max == OFFERS["a"].cmax + OFFERS["b"].cmax
        assert aggregate.size == 2
        assert aggregate.member_ids() == ["a", "b"]

    def test_empty_aggregate_guards(self):
        aggregate = IncrementalAggregate()
        with pytest.raises(Exception):
            aggregate.flex_offer()
        with pytest.raises(Exception):
            aggregate.anchor
        aggregate.add("a", OFFERS["a"])
        aggregate.remove("a")
        assert aggregate.size == 0
        with pytest.raises(Exception):
            aggregate.aggregated()

    def test_duplicate_and_unknown_membership_rejected(self):
        aggregate = IncrementalAggregate()
        aggregate.add("a", OFFERS["a"])
        with pytest.raises(StreamError):
            aggregate.add("a", OFFERS["b"])
        with pytest.raises(StreamError):
            aggregate.remove("ghost")

    def test_drain_and_refill_stays_consistent(self):
        aggregate = IncrementalAggregate()
        for round_index in range(3):
            for offer_id, flex_offer in OFFERS.items():
                aggregate.add(offer_id, flex_offer)
            assert aggregate.aggregated() == aggregate_start_aligned(
                list(OFFERS.values())
            )
            for offer_id in OFFERS:
                aggregate.remove(offer_id)
            assert len(aggregate) == 0

    def test_rebuilds_counts_one_repair_per_dirty_interval(self):
        # Several extreme removals between queries share one lazy rebuild:
        # the counter tracks repairs, not removals.
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b", "c", "d"):
            aggregate.add(offer_id, OFFERS[offer_id])
        aggregate.remove("a")  # attained min tes
        aggregate.remove("d")  # attained max end
        assert aggregate.rebuilds == 0
        assert aggregate.anchor == OFFERS["b"].earliest_start
        assert aggregate.rebuilds == 1
        assert aggregate.time_flexibility == min(
            OFFERS["b"].time_flexibility, OFFERS["c"].time_flexibility
        )
        assert aggregate.rebuilds == 1  # clean again: no second repair

    def test_rebuilds_remove_then_query_interleavings(self):
        # remove → query → remove → query: each dirtying removal that is
        # followed by a query costs exactly one rebuild, and the
        # materialised aggregate matches the batch path at every step.
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b", "c", "d"):
            aggregate.add(offer_id, OFFERS[offer_id])
        aggregate.remove("a")
        assert aggregate.aggregated() == aggregate_start_aligned(
            [OFFERS[key] for key in ("b", "c", "d")]
        )
        assert aggregate.rebuilds == 1
        aggregate.remove("d")
        assert aggregate.aggregated() == aggregate_start_aligned(
            [OFFERS[key] for key in ("b", "c")]
        )
        assert aggregate.rebuilds == 2

    def test_rebuilds_reset_is_not_implied_by_drain(self):
        # Draining resets the extremes and the dirty flag but keeps the
        # observability counter: it records lifetime repairs.
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b"):
            aggregate.add(offer_id, OFFERS[offer_id])
        aggregate.remove("a")
        aggregate.flex_offer()
        assert aggregate.rebuilds == 1
        aggregate.remove("b")
        assert len(aggregate) == 0
        aggregate.add("c", OFFERS["c"])
        assert aggregate.anchor == OFFERS["c"].earliest_start
        assert aggregate.rebuilds == 1  # fresh extremes needed no repair

    def test_adding_after_dirty_removal_still_repairs_lazily(self):
        # An add while dirty must not resurrect the cheap monotone update
        # on a stale extreme: the next query still repairs from scratch.
        aggregate = IncrementalAggregate()
        for offer_id in ("a", "b", "c"):
            aggregate.add(offer_id, OFFERS[offer_id])
        aggregate.remove("a")  # dirties min tes
        aggregate.add("d", OFFERS["d"])
        assert aggregate.rebuilds == 0
        survivors = [OFFERS[key] for key in ("b", "c", "d")]
        assert aggregate.aggregated() == aggregate_start_aligned(survivors)
        assert aggregate.rebuilds == 1


class TestColumnStore:
    """The packed/dict column store behind IncrementalAggregate."""

    def batch_equal(self, aggregate, members):
        assert aggregate.aggregated() == aggregate_start_aligned(members)

    def test_packed_mode_is_active_with_numpy(self):
        pytest.importorskip("numpy")
        aggregate = IncrementalAggregate()
        aggregate.add("a", OFFERS["a"])
        assert aggregate._columns.packed

    def test_huge_bounds_migrate_to_dict_with_identical_results(self):
        pytest.importorskip("numpy")
        big = offer(0, 2, [(0, 1 << 33)], "big")
        aggregate = IncrementalAggregate()
        aggregate.add("a", OFFERS["a"])
        assert aggregate._columns.packed
        aggregate.add("big", big)
        assert not aggregate._columns.packed
        self.batch_equal(aggregate, [OFFERS["a"], big])
        # Membership changes keep working in dict mode.
        aggregate.remove("a")
        self.batch_equal(aggregate, [big])

    def test_huge_span_migrates_to_dict_with_identical_results(self):
        pytest.importorskip("numpy")
        far = offer(1 << 21, (1 << 21) + 2, [(1, 2)], "far")
        aggregate = IncrementalAggregate()
        aggregate.add("a", OFFERS["a"])
        aggregate.add("far", far)
        assert not aggregate._columns.packed
        self.batch_equal(aggregate, [OFFERS["a"], far])

    def test_emptying_re_arms_the_packed_mode(self):
        pytest.importorskip("numpy")
        aggregate = IncrementalAggregate()
        aggregate.add("far", offer(1 << 21, (1 << 21) + 2, [(1, 2)], "far"))
        aggregate.add("a", OFFERS["a"])
        assert not aggregate._columns.packed
        aggregate.remove("far")
        aggregate.remove("a")
        aggregate.add("b", OFFERS["b"])
        assert aggregate._columns.packed
        self.batch_equal(aggregate, [OFFERS["b"]])

    def test_span_growth_in_both_directions(self):
        # Left and right extensions of the packed arrays, interleaved with
        # removals, stay batch-identical throughout.
        members = {
            "mid": offer(100, 102, [(1, 2), (2, 3)], "mid"),
            "left": offer(40, 44, [(0, 1)], "left"),
            "right": offer(180, 185, [(2, 2), (1, 4)], "right"),
            "lefter": offer(5, 6, [(3, 3)], "lefter"),
        }
        aggregate = IncrementalAggregate()
        added = []
        for offer_id, flex_offer in members.items():
            aggregate.add(offer_id, flex_offer)
            added.append(flex_offer)
            self.batch_equal(aggregate, added)
        aggregate.remove("left")
        self.batch_equal(
            aggregate, [members[key] for key in ("mid", "right", "lefter")]
        )

    def test_overlapping_members_sum_exactly(self):
        overlapping = [
            offer(0, 4, [(1, 2), (2, 3), (3, 4)], "x"),
            offer(1, 5, [(5, 6), (6, 7)], "y"),
            offer(2, 6, [(0, 9)], "z"),
        ]
        aggregate = IncrementalAggregate()
        for index, flex_offer in enumerate(overlapping):
            aggregate.add(f"o{index}", flex_offer)
        self.batch_equal(aggregate, overlapping)
        aggregate.remove("o1")
        self.batch_equal(aggregate, [overlapping[0], overlapping[2]])
