"""The PR 9 chaos contract, extended to the network path.

Under any single-site plan over the wire sites (``cluster.connect`` /
``cluster.send`` / ``cluster.recv``) — and under a worker process killed
outright — every evaluation either returns results bit-identical to the
fault-free run or a typed :class:`BackendError`, and the backend never
wedges: once the plan's window is spent, evaluation answers identically
again.  These tests run against real ``python -m repro.cluster.worker``
subprocesses (:class:`LocalCluster`), not in-process servers, so kills and
half-open sockets are genuine.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import build_population
from repro.backend import ShardedBackend, get_backend, use_backend
from repro.cluster import LocalCluster
from repro.core.errors import BackendError
from repro.faults import (
    CLUSTER_CONNECT,
    CLUSTER_RECV,
    CLUSTER_SEND,
    FaultPlan,
    FaultRule,
)
from repro.measures import evaluate_set, get_measure

CLUSTER_SITES = (CLUSTER_CONNECT, CLUSTER_SEND, CLUSTER_RECV)

#: The fixed workload every plan is judged against.
OFFERS = build_population(120, seed=42)
MEASURES = ("time", "energy", "product", "vector")


@pytest.fixture(scope="module")
def local_cluster():
    with LocalCluster(workers=3) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def golden():
    with use_backend("reference"):
        return (
            get_backend("reference").measure_values(get_measure("time"), OFFERS),
            evaluate_set(OFFERS, MEASURES).values,
        )


def remote_backend(cluster: LocalCluster, plan=None) -> ShardedBackend:
    # probe_interval_s=0 keeps demoted hosts immediately probe-eligible, so
    # the burn-down loop below measures the *plan's* window, not the clock.
    return ShardedBackend(
        shards=2,
        executor="remote",
        min_population=1,
        retries=2,
        retry_backoff_s=0.0,
        cluster=cluster.spec(probe_interval_s=0.0),
        faults=plan,
    )


# ``cluster.connect`` only fires on fresh dials (a couple per evaluation),
# so its window must open immediately; the frame sites see a hit per frame
# and can afford to skip the handshake before firing.
BOUNDED_WINDOWS = [
    (CLUSTER_CONNECT, {"after": 1, "count": 1}, 1),
    (CLUSTER_SEND, {"after": 2, "count": 2}, 2),
    (CLUSTER_RECV, {"after": 2, "count": 2}, 2),
]


@pytest.mark.parametrize("site, window, fires", BOUNDED_WINDOWS)
@pytest.mark.parametrize("action", ["raise", "kill"])
def test_a_bounded_wire_fault_is_absorbed_bit_identically(
    local_cluster, golden, site, window, fires, action
):
    """A bounded window is absorbed by redispatch: same bytes, no error."""
    plan = FaultPlan([FaultRule(site, action=action, **window)])
    backend = remote_backend(local_cluster, plan)
    try:
        values = backend.measure_values(get_measure("time"), OFFERS)
        assert values == golden[0]
        assert plan.stats()["fired"].get(site) == fires
    finally:
        backend.close()


@pytest.mark.parametrize("site", CLUSTER_SITES)
def test_an_unbounded_wire_fault_is_a_typed_error_not_corruption(
    local_cluster, golden, site
):
    """Every host unreachable: a typed BackendError after the bounded retry
    budget, absorbed without an executor rebuild."""
    plan = FaultPlan([FaultRule(site, count=None)])
    backend = remote_backend(local_cluster, plan)
    try:
        with pytest.raises(BackendError, match="failed after"):
            backend.measure_values(get_measure("time"), OFFERS)
        assert backend.partial_recoveries >= 1
    finally:
        backend.close()


@settings(max_examples=15, deadline=None)
@given(
    site=st.sampled_from(CLUSTER_SITES),
    action=st.sampled_from(["raise", "kill"]),
    after=st.integers(min_value=1, max_value=5),
    count=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_any_single_site_plan_yields_identical_results_or_typed_errors(
    local_cluster, golden, site, action, after, count, seed
):
    plan = FaultPlan(
        [FaultRule(site, action=action, after=after, count=count)], seed=seed
    )
    backend = remote_backend(local_cluster, plan)
    try:
        measure = get_measure("time")
        try:
            assert backend.measure_values(measure, OFFERS) == golden[0]
        except BackendError:
            pass  # typed, never silent corruption
        # The window is finite, so the backend soon answers exactly like
        # the fault-free run — it never wedges.
        for _ in range(8):
            try:
                assert backend.measure_values(measure, OFFERS) == golden[0]
                break
            except BackendError:
                continue
        else:
            pytest.fail("backend wedged: evaluation never recovered")
    finally:
        backend.close()


def test_killing_a_worker_mid_evaluate_redispatches_bit_identically(golden):
    """SIGKILL one of two workers while evaluating: the surviving host
    absorbs the shards and the report does not change by one bit."""
    with LocalCluster(workers=2) as cluster:
        backend = remote_backend(cluster)
        try:
            with use_backend(backend):
                assert evaluate_set(OFFERS, MEASURES).values == golden[1]  # warm
                killer = threading.Timer(0.005, cluster.kill, args=(0,))
                killer.start()
                mid_kill = evaluate_set(OFFERS, MEASURES).values
                killer.join()
                assert mid_kill == golden[1]
                # Definitely after the kill: pooled connections to worker 0
                # are dead sockets now, so this run must redispatch.
                assert evaluate_set(OFFERS, MEASURES).values == golden[1]
            health = backend.cluster_health()
            assert health[cluster.addresses[0]]["state"] in ("suspect", "down")
            assert health[cluster.addresses[1]]["state"] == "up"
            assert backend._pool.stats()["redispatches"] >= 1
        finally:
            backend.close()


def test_workers_never_inherit_the_drivers_chaos(monkeypatch, golden):
    """REPRO_FAULTS/REPRO_CLUSTER are scrubbed from worker environments:
    injection belongs to the client side of the wire, and a worker that
    dialled further workers would recurse."""
    plan = FaultPlan([FaultRule(CLUSTER_SEND, count=None)])
    monkeypatch.setenv("REPRO_FAULTS", json.dumps(plan.spec()))
    monkeypatch.setenv("REPRO_CLUSTER", "127.0.0.1:1")
    environment = LocalCluster._worker_environment()
    assert "REPRO_FAULTS" not in environment
    assert "REPRO_CLUSTER" not in environment
    assert "PYTHONPATH" in environment

    # End to end: a cluster spawned under the contaminated environment
    # still evaluates — the workers never saw the driver's plan.
    with LocalCluster(workers=1) as cluster:
        backend = ShardedBackend(
            shards=2, executor="remote", min_population=1,
            cluster=cluster.spec(),
        )
        try:
            values = backend.measure_values(get_measure("time"), OFFERS)
            assert values == golden[0]
        finally:
            backend.close()
