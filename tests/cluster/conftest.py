"""Shared fixtures for the cluster suite.

Most tests run against *in-process* :class:`~repro.cluster.WorkerServer`
instances on loopback sockets: every byte still travels the real frame
protocol, but both sides execute under coverage and nothing forks.  The
chaos/subprocess tests that genuinely need a killable worker process build
their own :class:`~repro.cluster.LocalCluster` instead.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.cluster import ClusterSpec, WorkerServer
from repro.core import FlexOffer


def start_worker() -> tuple[WorkerServer, threading.Thread]:
    """One in-process worker serving on an ephemeral loopback port."""
    server = WorkerServer()
    thread = threading.Thread(
        target=lambda: server.serve_forever(announce=False), daemon=True
    )
    thread.start()
    return server, thread


def build_population(size: int, seed: int = 0) -> list[FlexOffer]:
    """A small deterministic mixed population (the service-suite recipe)."""
    rng = random.Random(seed)
    offers = []
    for index in range(size):
        earliest = rng.randrange(0, 8)
        slices = [(1, 1 + rng.randint(0, 3))]
        if rng.random() < 0.5:
            slices.append((0, rng.randint(1, 3)))
        offers.append(
            FlexOffer(
                earliest,
                earliest + rng.randint(0, 3),
                slices,
                name=f"o{index}",
            )
        )
    return offers


@pytest.fixture(scope="package")
def workers():
    """Three long-lived in-process workers shared by non-destructive tests."""
    started = [start_worker() for _ in range(3)]
    yield [server for server, _ in started]
    for server, thread in started:
        server.stop()
        thread.join(timeout=5)


@pytest.fixture(scope="package")
def cluster_spec(workers) -> ClusterSpec:
    """A spec over the shared in-process workers."""
    return ClusterSpec(hosts=tuple(server.address for server in workers))


@pytest.fixture(scope="session")
def population():
    """The population builder, as a fixture so tests share one recipe."""
    return build_population
