"""The worker's frame loop, exercised with a raw protocol client.

The server under test is a real :class:`~repro.cluster.WorkerServer`
accepting on a loopback socket inside this process, so both sides of the
protocol run under coverage; the tests speak frames directly to pin the
wire contract independent of the executor.
"""

from __future__ import annotations

import socket

import pytest

from conftest import start_worker
from repro.cluster import WorkerServer, recv_frame, send_frame
from repro.cluster.framing import PROTOCOL_VERSION, ShardRef, shard_key
from repro.cluster.worker import main, resolve_function
from repro.measures import get_measure


def dial(server, version=PROTOCOL_VERSION):
    """A connected client socket, handshake already replied to."""
    host, _, port = server.address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=10)
    send_frame(sock, {"op": "hello", "version": version})
    return sock, recv_frame(sock)


@pytest.fixture
def worker():
    server, thread = start_worker()
    yield server
    server.stop()
    thread.join(timeout=5)


@pytest.fixture
def client(worker):
    sock, welcome = dial(worker)
    assert welcome["op"] == "welcome"
    yield worker, sock
    sock.close()


class TestResolveFunction:
    def test_resolves_repro_callables(self):
        function = resolve_function("repro.backend.sharded:_shard_values_outcome")
        assert callable(function)

    @pytest.mark.parametrize(
        "name, match",
        [
            ("no-separator", "not 'module:attribute'"),
            ("repro.core:", "not 'module:attribute'"),
            ("os:system", "non-repro module"),
            ("reprox.evil:fn", "non-repro module"),
            ("repro.core:not_a_thing", "does not resolve"),
            ("repro.core:FlexError.__doc__", "does not resolve"),
        ],
    )
    def test_refuses_everything_else(self, name, match):
        # The wire must not be a generic remote-code-execution endpoint.
        with pytest.raises(ValueError, match=match):
            resolve_function(name)


class TestHandshake:
    def test_welcome_carries_version_and_pid(self, worker):
        sock, welcome = dial(worker)
        assert welcome == {
            "op": "welcome",
            "version": PROTOCOL_VERSION,
            "pid": worker.pid,
        }
        sock.close()

    def test_version_skew_fails_loudly_and_closes(self, worker):
        sock, reply = dial(worker, version=999)
        assert reply["op"] == "error"
        assert "unsupported" in reply["reason"]
        assert recv_frame(sock) is None  # the worker hung up
        sock.close()


class TestOperations:
    def test_ping_pong(self, client):
        _, sock = client
        send_frame(sock, {"op": "ping"})
        assert recv_frame(sock) == {"op": "pong"}

    def test_unknown_operation_errors_and_closes(self, client):
        _, sock = client
        send_frame(sock, {"op": "launch-missiles"})
        reply = recv_frame(sock)
        assert reply["op"] == "error"
        assert "unknown operation" in reply["reason"]
        assert recv_frame(sock) is None

    def test_a_torn_client_frame_ends_only_that_connection(self, worker):
        sock, _ = dial(worker)
        sock.sendall(b"\xff\xff\xff\xff\x00\x00\x00\x00")  # implausible header
        assert recv_frame(sock) in (None, {})  # worker drops the stream
        sock.close()
        # The worker still serves fresh connections.
        again, welcome = dial(worker)
        assert welcome["op"] == "welcome"
        again.close()

    def test_stats_reports_the_counters(self, client, population):
        worker, sock = client
        offers = population(6)
        key = shard_key(offers)
        task = {
            "op": "task",
            "id": 1,
            "fn": "repro.backend.sharded:_shard_values_outcome",
            "args": ["reference", get_measure("time"), ShardRef(key)],
            "ship": {key: offers},
        }
        send_frame(sock, task, pickled=True)
        assert recv_frame(sock)["ok"]
        send_frame(sock, {"op": "stats"})
        stats = recv_frame(sock)
        assert stats["op"] == "stats"
        assert stats["tasks"] == 1
        assert stats["shipped_keys"] == 1
        assert stats["cached_keys"] == 1

    def test_shutdown_stops_the_whole_worker(self):
        server, thread = start_worker()
        sock, _ = dial(server)
        send_frame(sock, {"op": "shutdown"})
        assert recv_frame(sock) == {"op": "bye"}
        thread.join(timeout=5)
        assert not thread.is_alive()
        sock.close()


class TestTasks:
    def test_ship_once_reference_ever_after(self, client, population):
        worker, sock = client
        offers = population(8)
        key = shard_key(offers)
        measure = get_measure("time")
        expected = ("ok", [measure.value(offer) for offer in offers])

        shipped = {
            "op": "task",
            "id": 1,
            "fn": "repro.backend.sharded:_shard_values_outcome",
            "args": ["reference", measure, ShardRef(key)],
            "ship": {key: offers},
        }
        send_frame(sock, shipped, pickled=True)
        reply = recv_frame(sock)
        assert reply == {"op": "result", "id": 1, "ok": True, "value": expected}

        by_reference = dict(shipped, id=2, ship={})
        send_frame(sock, by_reference, pickled=True)
        assert recv_frame(sock)["value"] == expected
        assert worker.ref_hits == 1

    def test_unknown_refs_answer_with_the_missing_keys(self, client, population):
        _, sock = client
        offers = population(4)
        key = shard_key(offers)
        send_frame(
            sock,
            {
                "op": "task",
                "id": 7,
                "fn": "repro.backend.sharded:_shard_values_outcome",
                "args": ["reference", get_measure("time"), ShardRef(key)],
                "ship": {},
            },
            pickled=True,
        )
        reply = recv_frame(sock)
        assert reply == {"op": "result", "id": 7, "ok": False, "missing": [key]}

    def test_the_ref_cache_is_per_connection(self, worker, population):
        offers = population(4)
        key = shard_key(offers)
        first, _ = dial(worker)
        send_frame(
            first,
            {"op": "task", "id": 1, "fn": "repro.core:flexoffer_area",
             "args": [ShardRef(key)], "ship": {key: offers}},
            pickled=True,
        )
        recv_frame(first)
        second, _ = dial(worker)
        send_frame(
            second,
            {"op": "task", "id": 1, "fn": "repro.core:flexoffer_area",
             "args": [ShardRef(key)], "ship": {}},
            pickled=True,
        )
        assert recv_frame(second)["missing"] == [key]
        first.close()
        second.close()

    def test_application_exceptions_travel_back_typed(self, client):
        _, sock = client
        send_frame(
            sock,
            {
                "op": "task",
                "id": 3,
                # flexoffer_area on a non-offer raises inside the function.
                "fn": "repro.core:flexoffer_area",
                "args": ["not-a-flex-offer"],
                "ship": {},
            },
            pickled=True,
        )
        reply = recv_frame(sock)
        assert reply["ok"] is False
        assert isinstance(reply["error"], AttributeError)
        assert "flexoffer_area" in reply["traceback"]

    def test_refused_function_names_are_typed_errors_too(self, client):
        _, sock = client
        send_frame(
            sock,
            {"op": "task", "id": 4, "fn": "os:system", "args": [], "ship": {}},
            pickled=True,
        )
        reply = recv_frame(sock)
        assert reply["ok"] is False
        assert isinstance(reply["error"], ValueError)

    def test_unpicklable_results_degrade_to_typed_error_frames(self, client):
        _, sock = client
        send_frame(
            sock,
            {
                "op": "task",
                "id": 5,
                # Returns a live backend instance full of locks and pools.
                "fn": "repro.backend.dispatch:get_backend",
                "args": ["sharded"],
                "ship": {},
            },
            pickled=True,
        )
        reply = recv_frame(sock)
        assert reply["ok"] is False
        assert isinstance(reply["error"], ValueError)
        assert "not picklable" in str(reply["error"])


class TestEntryPoint:
    def test_bad_bind_is_a_value_error(self):
        with pytest.raises(ValueError, match="not 'host:port'"):
            WorkerServer(bind="nonsense")

    def test_main_reports_bind_failures(self, capsys):
        assert main(["--bind", "nonsense"]) == 2
        assert capsys.readouterr().out.startswith("ERROR ")

    def test_main_reports_unbindable_ports(self, capsys, worker):
        # The shared worker already owns this port.
        assert main(["--bind", worker.address]) == 2
        assert capsys.readouterr().out.startswith("ERROR ")

    def test_stop_is_idempotent(self, worker):
        worker.stop()
        worker.stop()
