"""The wire frame: round-trips, every corruption mode, keys and fault sites."""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import zlib

import pytest

from repro.cluster import ShardRef, WireError, recv_frame, send_frame, shard_key
from repro.cluster import framing
from repro.core import FlexOffer
from repro.faults import CLUSTER_RECV, CLUSTER_SEND, FaultInjected, FaultPlan, FaultRule


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


def corrupted(payload: bytes, *, crc: int = None, length: int = None) -> bytes:
    """A raw frame with an optionally-forged header."""
    return framing._HEADER.pack(
        len(payload) if length is None else length,
        zlib.crc32(payload) if crc is None else crc,
    ) + payload


class TestRoundTrip:
    def test_json_control_frame(self, pair):
        left, right = pair
        sent = send_frame(left, {"op": "ping", "n": 3})
        assert sent > 0
        assert recv_frame(right) == {"op": "ping", "n": 3}

    def test_pickled_task_frame_carries_rich_objects(self, pair):
        left, right = pair
        offer = FlexOffer(2, 5, [(1, 3), (0, 2)], name="f1")
        message = {"op": "task", "args": [offer, ShardRef("abc")], "err": ValueError("x")}
        send_frame(left, message, pickled=True)
        received = recv_frame(right)
        assert received["args"][0] == offer
        assert received["args"][1].key == "abc"
        assert isinstance(received["err"], ValueError)

    def test_many_frames_share_one_stream(self, pair):
        left, right = pair
        for index in range(20):
            send_frame(left, {"i": index}, pickled=index % 2 == 0)
        for index in range(20):
            assert recv_frame(right) == {"i": index}

    def test_clean_eof_at_a_frame_boundary_is_none(self, pair):
        left, right = pair
        send_frame(left, {"op": "bye"})
        left.close()
        assert recv_frame(right) == {"op": "bye"}
        assert recv_frame(right) is None

    def test_large_frame_crosses_recv_chunks(self, pair):
        left, right = pair
        blob = "x" * (1 << 21)  # > the 1 MiB recv chunk

        def feed():
            send_frame(left, {"blob": blob})

        writer = threading.Thread(target=feed)
        writer.start()
        assert recv_frame(right) == {"blob": blob}
        writer.join()


class TestCorruption:
    def test_truncation_mid_payload_is_a_wire_error(self, pair):
        left, right = pair
        frame = corrupted(b"J" + b'{"op":"ping"}')
        left.sendall(frame[:-3])
        left.close()
        with pytest.raises(WireError, match="mid-frame"):
            recv_frame(right)

    def test_truncation_mid_header_is_a_wire_error(self, pair):
        left, right = pair
        left.sendall(b"\x01\x02")
        left.close()
        with pytest.raises(WireError, match="mid-frame"):
            recv_frame(right)

    def test_crc_mismatch_is_a_wire_error(self, pair):
        left, right = pair
        left.sendall(corrupted(b"J" + b'{"op":"ping"}', crc=0xDEADBEEF))
        with pytest.raises(WireError, match="CRC"):
            recv_frame(right)

    def test_zero_length_word_is_implausible(self, pair):
        left, right = pair
        left.sendall(framing._HEADER.pack(0, 0))
        with pytest.raises(WireError, match="implausible"):
            recv_frame(right)

    def test_oversized_length_word_is_implausible(self, pair, monkeypatch):
        left, right = pair
        monkeypatch.setattr(framing, "MAX_FRAME_BYTES", 64)
        left.sendall(corrupted(b"J" + b"{}", length=65))
        with pytest.raises(WireError, match="implausible"):
            recv_frame(right)

    def test_oversized_send_is_refused_before_any_byte_moves(
        self, pair, monkeypatch
    ):
        left, right = pair
        monkeypatch.setattr(framing, "MAX_FRAME_BYTES", 16)
        with pytest.raises(WireError, match="exceeds the cap"):
            send_frame(left, {"blob": "y" * 64})
        left.close()
        assert recv_frame(right) is None  # nothing was sent

    def test_unknown_payload_kind_is_a_wire_error(self, pair):
        left, right = pair
        left.sendall(corrupted(b"Z" + b"{}"))
        with pytest.raises(WireError, match="undecodable"):
            recv_frame(right)

    def test_undecodable_body_is_a_wire_error(self, pair):
        left, right = pair
        left.sendall(corrupted(b"J" + b"{nope"))
        with pytest.raises(WireError, match="undecodable"):
            recv_frame(right)

    def test_non_dict_payload_is_a_wire_error(self, pair):
        left, right = pair
        left.sendall(corrupted(b"P" + pickle.dumps([1, 2, 3])))
        with pytest.raises(WireError, match="not a message dict"):
            recv_frame(right)

    def test_wire_error_is_a_connection_error(self):
        # The contract the executor's redispatch loop rides on.
        assert issubclass(WireError, ConnectionError)


class TestFaultSites:
    def test_send_fault_fires_before_any_byte_hits_the_wire(self, pair):
        left, right = pair
        plan = FaultPlan([FaultRule(CLUSTER_SEND)])
        with pytest.raises(FaultInjected):
            send_frame(left, {"op": "task"}, faults=plan, site=CLUSTER_SEND)
        left.close()
        # The peer saw a clean close, never a torn frame.
        assert recv_frame(right) is None

    def test_recv_fault_fires_before_reading(self, pair):
        left, right = pair
        send_frame(left, {"op": "result"})
        plan = FaultPlan([FaultRule(CLUSTER_RECV)])
        with pytest.raises(FaultInjected):
            recv_frame(right, faults=plan, site=CLUSTER_RECV)
        # The frame is still intact on the stream once the window is spent.
        assert recv_frame(right, faults=plan, site=CLUSTER_RECV) == {
            "op": "result"
        }

    def test_kill_rules_degrade_to_a_raise_on_the_wire(self, pair):
        # A client-side "kill" cannot SIGKILL the remote peer; the wire
        # layer treats it as a connection loss instead of ignoring it.
        left, _right = pair
        plan = FaultPlan([FaultRule(CLUSTER_SEND, action="kill")])
        with pytest.raises(FaultInjected):
            send_frame(left, {"op": "task"}, faults=plan, site=CLUSTER_SEND)

    def test_no_plan_or_site_is_a_no_op(self, pair):
        left, right = pair
        plan = FaultPlan([FaultRule(CLUSTER_SEND)])
        send_frame(left, {"op": "x"}, faults=plan, site=None)
        assert recv_frame(right, faults=None, site=CLUSTER_RECV) == {"op": "x"}


class TestShardKey:
    def test_deterministic_and_content_addressed(self):
        offers = [FlexOffer(0, 2, [(1, 3)], name="a"), FlexOffer(1, 4, [(0, 2)], name="b")]
        clones = [FlexOffer(0, 2, [(1, 3)], name="a"), FlexOffer(1, 4, [(0, 2)], name="b")]
        assert shard_key(offers) == shard_key(clones)
        assert shard_key(offers) != shard_key(list(reversed(offers)))
        assert shard_key(offers) != shard_key(offers[:1])

    def test_names_participate_in_the_key(self):
        # Fingerprints are name-blind, but worker-side supports() overrides
        # may consult names, so renamed chunks must not alias.
        named = [FlexOffer(0, 2, [(1, 3)], name="a")]
        renamed = [FlexOffer(0, 2, [(1, 3)], name="b")]
        anonymous = [FlexOffer(0, 2, [(1, 3)])]
        assert shard_key(named) != shard_key(renamed)
        assert shard_key(named) != shard_key(anonymous)

    def test_shard_ref_pickles_to_its_key_alone(self):
        ref = ShardRef("deadbeef")
        clone = pickle.loads(pickle.dumps(ref))
        assert isinstance(clone, ShardRef)
        assert clone.key == "deadbeef"
