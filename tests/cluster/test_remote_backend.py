"""ShardedBackend over the remote executor: differential equality with the
reference backend, partial-failure recovery, hedging, and the serving path
(session stats, gateway ``/healthz``)."""

from __future__ import annotations

import asyncio

import pytest

from repro.backend import ShardedBackend, get_backend
from repro.cluster import ClusterSpec
from repro.faults import CLUSTER_SEND, FaultPlan, FaultRule
from repro.measures import evaluate_set, get_measure
from repro.server import Gateway, GatewayConfig
from repro.service import FlexSession, SessionConfig

from test_executor import dead_host


@pytest.fixture
def backend(cluster_spec):
    instance = ShardedBackend(
        shards=3, executor="remote", min_population=1, cluster=cluster_spec
    )
    yield instance
    instance.close()


class TestDifferential:
    def test_measure_values_are_bit_identical(self, backend, population):
        offers = population(300)
        for key in ("time", "energy", "product", "vector", "series"):
            measure = get_measure(key)
            expected = get_backend("reference").measure_values(measure, offers)
            assert backend.measure_values(measure, offers) == expected

    def test_evaluate_set_reports_are_bit_identical(self, backend, population):
        offers = population(200)
        from repro.backend import use_backend

        with use_backend("reference"):
            expected = evaluate_set(offers)
        with use_backend(backend):
            actual = evaluate_set(offers)
        assert actual.values == expected.values
        assert actual.skipped == expected.skipped

    def test_error_parity_with_the_reference_backend(self, backend):
        # relative_area cannot evaluate offers pinned to zero energy; the
        # remote path must surface the same exception class.
        from repro.core import FlexOffer, MeasureError

        offers = [FlexOffer(0, 1, [(0, 0)], 0, 0, name="pinned")]
        measure = get_measure("relative_area")
        with pytest.raises(MeasureError) as reference_error:
            get_backend("reference").measure_values(measure, offers)
        with pytest.raises(MeasureError) as remote_error:
            backend.measure_values(measure, offers)
        assert type(remote_error.value) is type(reference_error.value)

    def test_repeat_evaluations_reuse_interned_chunks(self, backend, population):
        offers = population(400)
        measure = get_measure("time")
        first = backend.measure_values(measure, offers)
        assert backend.measure_values(measure, offers) == first
        pool = backend._pool
        stats = pool.stats()
        assert stats["ref_hits"] >= 1
        assert stats["shipped_offers"] < stats["dispatched"] * len(offers)

    def test_cluster_health_reports_every_host(self, backend, population):
        backend.measure_values(get_measure("time"), population(60))
        health = backend.cluster_health()
        assert set(health) == set(backend.cluster.hosts)
        assert all(row["state"] == "up" for row in health.values())
        assert sum(row["dispatched"] for row in health.values()) >= 3


class TestResilience:
    def test_host_unavailable_recovers_without_a_pool_rebuild(
        self, workers, population
    ):
        spec = ClusterSpec(
            hosts=(dead_host(),), connect_timeout_s=0.5, probe_interval_s=30.0
        )
        backend = ShardedBackend(
            shards=2, executor="remote", min_population=1, retries=1,
            cluster=spec, retry_backoff_s=0.0,
        )
        try:
            from repro.core.errors import BackendError

            pool = backend._executor()
            with pytest.raises(BackendError, match="failed after 2 attempt"):
                backend.measure_values(get_measure("time"), population(40))
            assert backend.partial_recoveries >= 1
            assert backend.resilience_stats()["partial_recoveries"] >= 1
            # The executor was retried in place, never torn down.
            assert backend._pool is pool
        finally:
            backend.close()

    def test_hedging_covers_a_slow_remote_shard(self, cluster_spec, population):
        # One delayed send: the straggler sleeps, the hedge wins, and the
        # result is still bit-identical.
        plan = FaultPlan(
            [FaultRule(CLUSTER_SEND, action="delay", delay_s=0.6, count=1)]
        )
        backend = ShardedBackend(
            shards=2, executor="remote", min_population=1,
            cluster=cluster_spec, hedge_ms=40.0, faults=plan,
        )
        try:
            offers = population(80)
            measure = get_measure("time")
            expected = get_backend("reference").measure_values(measure, offers)
            assert backend.measure_values(measure, offers) == expected
            assert backend.hedges >= 1
            assert backend.hedge_wins >= 1
        finally:
            backend.close()


class TestServingPath:
    def test_session_stats_expose_the_cluster_table(self, cluster_spec, population):
        config = SessionConfig(
            backend="sharded", shards=2, shard_min_population=1,
            cluster=cluster_spec,
        )
        assert config.shard_executor == "remote"
        with FlexSession(config) as session:
            session.ingest(population(120))
            session.evaluate()
            stats = session.stats()
        assert set(stats["cluster"]) == set(cluster_spec.hosts)
        assert all(row["state"] == "up" for row in stats["cluster"].values())

    def test_local_sessions_report_no_cluster_block(self, population):
        with FlexSession(SessionConfig(backend="reference")) as session:
            session.ingest(population(10))
            session.evaluate()
            assert "cluster" not in session.stats()

    def test_gateway_healthz_aggregates_per_host_states(
        self, cluster_spec, population
    ):
        config = SessionConfig(
            backend="sharded", shards=2, shard_min_population=1,
            cluster=cluster_spec,
        )
        gateway = Gateway(GatewayConfig(session_defaults=config))
        try:

            async def drive():
                session = gateway.registry.create("tenant-1")
                session.ingest(population(60))
                session.evaluate()
                return gateway.stats()

            stats = asyncio.run(drive())
            assert stats["components"]["cluster"] == "ok"
            assert stats["cluster"]["status"] == "ok"
            assert stats["cluster"]["clustered_sessions"] == 1
            assert set(stats["cluster"]["hosts"]) == set(cluster_spec.hosts)
        finally:
            gateway.close()

    def test_gateway_without_clustered_sessions_reports_disabled(self):
        gateway = Gateway(GatewayConfig())
        try:
            stats = gateway.stats()
            assert stats["components"]["cluster"] == "disabled"
            assert stats["cluster"]["clustered_sessions"] == 0
            # "disabled" must not fail /healthz (mirrors persistence).
        finally:
            gateway.close()

    def test_worst_host_state_wins_in_the_merge(self, workers, population):
        spec = ClusterSpec(
            hosts=(workers[0].address, dead_host()),
            connect_timeout_s=0.5, probe_interval_s=30.0,
        )
        config = SessionConfig(
            backend="sharded", shards=2, shard_min_population=1, cluster=spec
        )
        gateway = Gateway(GatewayConfig(session_defaults=config))
        try:

            async def drive():
                session = gateway.registry.create("tenant-1")
                session.ingest(population(60))
                session.evaluate()  # succeeds via the live host
                return gateway.stats()

            stats = asyncio.run(drive())
            assert stats["cluster"]["status"] == "degraded"
            assert stats["components"]["cluster"] == "degraded"
            down = stats["cluster"]["hosts"][spec.hosts[1]]
            assert down["state"] == "down"
        finally:
            gateway.close()
