"""ClusterSpec validation/round-trip and its coupling into SessionConfig
and ShardedBackend (explicit arguments fail fast, env knobs degrade)."""

from __future__ import annotations

import json

import pytest

from repro.backend import ShardedBackend
from repro.core.errors import BackendError
from repro.cluster import ClusterSpec
from repro.cluster.cluster import ClusterError, ENV_CLUSTER
from repro.service import ServiceError, SessionConfig


class TestClusterSpec:
    def test_defaults_and_host_normalisation(self):
        spec = ClusterSpec(hosts=("127.0.0.1:7001", " 127.0.0.1:7002 "))
        assert spec.hosts == ("127.0.0.1:7001", "127.0.0.1:7002")
        assert spec.connections_per_host == 2
        assert spec.connect_timeout_s == 5.0
        assert spec.probe_interval_s == 1.0

    @pytest.mark.parametrize(
        "hosts",
        [(), ("localhost",), ("host:",), (":7001",), ("host:0",), ("host:99999",), ("host:abc",)],
        ids=["empty", "no-port", "blank-port", "no-host", "port-0", "port-high", "port-text"],
    )
    def test_invalid_hosts_fail_fast(self, hosts):
        with pytest.raises(ClusterError):
            ClusterSpec(hosts=hosts)

    def test_a_bare_string_is_rejected_with_a_pointer_to_from_spec(self):
        with pytest.raises(ClusterError, match="from_spec"):
            ClusterSpec(hosts="127.0.0.1:7001,127.0.0.1:7002")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("connections_per_host", 0),
            ("connect_timeout_s", 0.0),
            ("connect_timeout_s", -1.0),
            ("probe_interval_s", -0.1),
        ],
    )
    def test_invalid_knobs_fail_fast(self, field, value):
        with pytest.raises(ClusterError):
            ClusterSpec(hosts=("127.0.0.1:7001",), **{field: value})

    def test_spec_round_trip_keeps_non_default_knobs(self):
        spec = ClusterSpec(
            hosts=("a:1", "b:2"),
            connections_per_host=4,
            connect_timeout_s=0.5,
            probe_interval_s=0.0,
        )
        payload = spec.spec()
        assert payload["hosts"] == ["a:1", "b:2"]
        assert ClusterSpec.from_spec(payload) == spec
        # The document is valid JSON end to end.
        assert ClusterSpec.from_spec(json.dumps(payload)) == spec

    def test_spec_omits_default_knobs(self):
        assert ClusterSpec(hosts=("a:1",)).spec() == {"hosts": ["a:1"]}

    def test_from_spec_accepts_every_shorthand(self):
        expected = ClusterSpec(hosts=("h1:7001", "h2:7002"))
        assert ClusterSpec.from_spec(expected) is expected
        assert ClusterSpec.from_spec("h1:7001,h2:7002") == expected
        assert ClusterSpec.from_spec("h1:7001, h2:7002,") == expected
        assert ClusterSpec.from_spec(["h1:7001", "h2:7002"]) == expected
        assert ClusterSpec.from_spec('["h1:7001", "h2:7002"]') == expected
        assert ClusterSpec.from_spec({"hosts": ["h1:7001", "h2:7002"]}) == expected

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("", "empty"),
            ("   ", "empty"),
            ("{not json", "malformed"),
            (17, "not a cluster spec"),
            ({"hosts": ["a:1"], "zap": 1}, "unknown cluster-spec fields"),
            ({"connections_per_host": 2}, "missing 'hosts'"),
        ],
    )
    def test_from_spec_rejects_malformed_payloads(self, payload, match):
        with pytest.raises(ClusterError, match=match):
            ClusterSpec.from_spec(payload)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_CLUSTER, raising=False)
        assert ClusterSpec.from_env() is None
        monkeypatch.setenv(ENV_CLUSTER, "   ")
        assert ClusterSpec.from_env() is None
        monkeypatch.setenv(ENV_CLUSTER, "127.0.0.1:7001,127.0.0.1:7002")
        assert ClusterSpec.from_env() == ClusterSpec(
            hosts=("127.0.0.1:7001", "127.0.0.1:7002")
        )
        monkeypatch.setenv(ENV_CLUSTER, json.dumps({"hosts": ["h:1"], "connections_per_host": 3}))
        assert ClusterSpec.from_env().connections_per_host == 3

    def test_from_env_degrades_on_malformed_values(self, monkeypatch):
        monkeypatch.setenv(ENV_CLUSTER, "not-a-cluster")
        with pytest.warns(RuntimeWarning, match=ENV_CLUSTER):
            assert ClusterSpec.from_env() is None


class TestSessionConfigCoupling:
    def test_cluster_alone_implies_the_remote_executor(self):
        config = SessionConfig(backend="sharded", cluster="127.0.0.1:7001")
        assert config.shard_executor == "remote"
        assert config.cluster == ClusterSpec(hosts=("127.0.0.1:7001",))

    def test_explicit_local_executor_with_a_cluster_contradicts(self):
        with pytest.raises(ServiceError, match="requires shard_executor='remote'"):
            SessionConfig(
                backend="sharded",
                shard_executor="thread",
                cluster="127.0.0.1:7001",
            )

    def test_explicit_remote_executor_without_a_cluster_fails_fast(
        self, monkeypatch
    ):
        monkeypatch.delenv(ENV_CLUSTER, raising=False)
        with pytest.raises(ServiceError, match="REPRO_CLUSTER"):
            SessionConfig(backend="sharded", shard_executor="remote")

    def test_remote_executor_reads_the_cluster_from_the_environment(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENV_CLUSTER, "127.0.0.1:7001")
        config = SessionConfig(backend="sharded", shard_executor="remote")
        assert config.cluster == ClusterSpec(hosts=("127.0.0.1:7001",))

    def test_env_driven_remote_without_a_cluster_degrades_to_thread(
        self, monkeypatch
    ):
        monkeypatch.delenv(ENV_CLUSTER, raising=False)
        monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "remote")
        with pytest.warns(RuntimeWarning):
            config = SessionConfig(backend="sharded")
        assert config.shard_executor == "thread"
        assert config.cluster is None

    def test_invalid_cluster_payload_is_a_service_error(self):
        with pytest.raises(ServiceError, match="invalid cluster"):
            SessionConfig(backend="sharded", cluster="not a cluster")

    def test_as_dict_round_trips_the_cluster(self):
        config = SessionConfig(
            backend="sharded",
            shards=2,
            cluster=ClusterSpec(hosts=("127.0.0.1:7001",), connections_per_host=3),
        )
        payload = config.as_dict()
        assert payload["cluster"] == {
            "hosts": ["127.0.0.1:7001"],
            "connections_per_host": 3,
        }
        rebuilt = SessionConfig.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.cluster == config.cluster
        assert rebuilt.shard_executor == "remote"


class TestShardedBackendCoupling:
    def test_explicit_remote_without_a_cluster_fails_fast(self, monkeypatch):
        monkeypatch.delenv(ENV_CLUSTER, raising=False)
        with pytest.raises(BackendError, match="needs a cluster"):
            ShardedBackend(executor="remote")

    def test_env_remote_without_a_cluster_degrades_to_thread(self, monkeypatch):
        monkeypatch.delenv(ENV_CLUSTER, raising=False)
        monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "remote")
        with pytest.warns(RuntimeWarning):
            backend = ShardedBackend()
        try:
            assert backend.executor_kind == "thread"
        finally:
            backend.close()

    def test_cluster_with_a_local_executor_contradicts(self):
        with pytest.raises(BackendError, match="executor='remote'"):
            ShardedBackend(executor="thread", cluster="127.0.0.1:7001")

    def test_invalid_cluster_spec_is_a_backend_error(self):
        with pytest.raises(BackendError, match="invalid cluster spec"):
            ShardedBackend(executor="remote", cluster={"hosts": []})

    def test_remote_backend_reads_the_cluster_from_the_environment(
        self, monkeypatch
    ):
        monkeypatch.setenv(ENV_CLUSTER, "127.0.0.1:7001")
        backend = ShardedBackend(shards=2, executor="remote")
        try:
            assert backend.cluster == ClusterSpec(hosts=("127.0.0.1:7001",))
        finally:
            backend.close()

    def test_cluster_health_is_none_for_local_executors(self):
        backend = ShardedBackend(shards=2)
        try:
            assert backend.cluster_health() is None
        finally:
            backend.close()
