"""RemoteShardExecutor: the futures contract, placement, health, reships."""

from __future__ import annotations

import socket
import threading

import pytest

from conftest import start_worker
from repro.cluster import ClusterSpec, HostUnavailable, RemoteShardExecutor
from repro.cluster.executor import _Connection, _Host, _RemoteRaise
from repro.cluster.framing import WireError, recv_frame, send_frame, shard_key
from repro.core import FlexOffer, flexoffer_area_size
from repro.measures import get_measure


def dead_host() -> str:
    """A loopback address nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = "127.0.0.1:%d" % probe.getsockname()[1]
    probe.close()
    return address


@pytest.fixture
def executor(cluster_spec):
    pool = RemoteShardExecutor(cluster_spec)
    yield pool
    pool.shutdown()


class TestFuturesContract:
    def test_submit_runs_remotely_and_returns_a_future(self, executor, population):
        offers = population(12)
        future = executor.submit(
            __import__("repro.backend.sharded", fromlist=["x"])._shard_values_outcome,
            "reference",
            get_measure("time"),
            offers,
        )
        kind, values = future.result(timeout=30)
        assert kind == "ok"
        assert values == [get_measure("time").value(offer) for offer in offers]

    def test_keyword_arguments_are_rejected(self, executor):
        with pytest.raises(TypeError, match="positional"):
            executor.submit(flexoffer_area_size, offer=None)

    def test_submit_after_shutdown_is_a_runtime_error(self, cluster_spec):
        pool = RemoteShardExecutor(cluster_spec)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="after shutdown"):
            pool.submit(flexoffer_area_size, FlexOffer(0, 1, [(1, 2)]))

    def test_application_errors_re_raise_with_their_type(self, executor):
        future = executor.submit(flexoffer_area_size, "not-an-offer")
        with pytest.raises(AttributeError) as info:
            future.result(timeout=30)
        # The remote traceback rides along on the cause for debugging.
        assert isinstance(info.value.__cause__, _RemoteRaise)
        assert "flexoffer_area" in info.value.__cause__.remote_traceback

    def test_default_pool_size_matches_the_cluster(self, cluster_spec):
        pool = RemoteShardExecutor(cluster_spec)
        try:
            expected = len(cluster_spec.hosts) * cluster_spec.connections_per_host
            assert pool._pool._max_workers == expected
        finally:
            pool.shutdown()


class TestPlacementAndInterning:
    def test_dispatches_spread_across_hosts(self, executor, population):
        offers = population(6)
        futures = [
            executor.submit(flexoffer_area_size, offer) for offer in offers * 3
        ]
        for future in futures:
            assert future.result(timeout=30) > 0
        health = executor.health()
        assert sum(row["dispatched"] for row in health.values()) == len(futures)
        assert sum(1 for row in health.values() if row["dispatched"]) >= 2
        assert all(row["state"] == "up" for row in health.values())

    def test_chunks_ship_once_then_travel_by_key(self, executor, population):
        offers = population(40)
        measure = get_measure("time")
        from repro.backend.sharded import _shard_values_outcome

        first = executor.submit(
            _shard_values_outcome, "reference", measure, offers
        ).result(timeout=30)
        for _ in range(4):
            again = executor.submit(
                _shard_values_outcome, "reference", measure, offers
            ).result(timeout=30)
            assert again == first
        stats = executor.stats()
        assert stats["dispatched"] == 5
        assert stats["ref_hits"] >= 1
        # The 40 offers were pickled across the wire at most once per
        # connection that served them, never once per call.
        assert stats["shipped_offers"] < 5 * len(offers)
        assert stats["reships"] == 0

    def test_only_flex_offer_chunks_are_interned(self, executor):
        wire_args, chunks = executor._intern_args(
            ([FlexOffer(0, 1, [(1, 2)])], [1, 2, 3], (), "reference")
        )
        assert len(chunks) == 1
        assert wire_args[1:] == [[1, 2, 3], (), "reference"]


class TestHealth:
    def test_a_dead_host_is_evicted_and_work_still_completes(self, workers):
        spec = ClusterSpec(
            hosts=(dead_host(), workers[0].address),
            connect_timeout_s=2.0,
            probe_interval_s=30.0,
        )
        pool = RemoteShardExecutor(spec)
        try:
            for _ in range(4):
                assert pool.submit(
                    flexoffer_area_size, FlexOffer(0, 2, [(1, 3)])
                ).result(timeout=30)
            health = pool.health()
            dead, live = spec.hosts
            assert health[dead]["state"] == "down"
            assert health[dead]["failures"] >= 1
            assert health[dead]["dispatched"] == 0
            assert health[live]["state"] == "up"
            assert health[live]["dispatched"] == 4
        finally:
            pool.shutdown()

    def test_every_host_down_raises_host_unavailable(self):
        spec = ClusterSpec(hosts=(dead_host(),), connect_timeout_s=0.5)
        pool = RemoteShardExecutor(spec)
        try:
            future = pool.submit(flexoffer_area_size, FlexOffer(0, 1, [(1, 2)]))
            with pytest.raises(HostUnavailable) as info:
                future.result(timeout=30)
            assert spec.hosts[0] in str(info.value)
            assert info.value.host == spec.hosts[0]
        finally:
            pool.shutdown()

    def test_down_hosts_are_probe_gated(self):
        spec = ClusterSpec(
            hosts=(dead_host(),), connect_timeout_s=0.5, probe_interval_s=60.0
        )
        pool = RemoteShardExecutor(spec)
        try:
            with pytest.raises(HostUnavailable):
                pool.submit(flexoffer_area_size, None).result(timeout=30)
            dials = pool.stats()["connects"]
            # Within the probe interval the down host is not even dialled.
            with pytest.raises(HostUnavailable):
                pool.submit(flexoffer_area_size, None).result(timeout=30)
            assert pool.stats()["connects"] == dials == 0
            # Once probe-eligible, the picker offers it again.
            with pool._lock:
                pool._hosts[0].probe_after = 0.0
            host = pool._pick_host(set(), frozenset())
            assert host is pool._hosts[0]
        finally:
            pool.shutdown()

    def test_a_failure_on_a_connected_host_means_suspect_then_down(self):
        host = _Host("127.0.0.1:1")
        pool = RemoteShardExecutor(ClusterSpec(hosts=("127.0.0.1:1",)))
        try:
            pool._mark_failure(host, connected=True)
            assert host.state == "suspect"
            pool._mark_failure(host, connected=True)
            assert host.state == "down"
            pool._mark_success(host)
            assert host.state == "up"
            assert host.probe_after == 0.0
        finally:
            pool.shutdown()

    def test_recover_accepts_only_live_host_unavailable(self, cluster_spec):
        pool = RemoteShardExecutor(cluster_spec)
        try:
            assert pool.recover(HostUnavailable("all dead"))
            assert not pool.recover(RuntimeError("boom"))
        finally:
            pool.shutdown()
        assert not pool.recover(HostUnavailable("all dead"))  # closed

    def test_a_peer_that_talks_garbage_counts_as_a_failure(self, workers):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        address = "127.0.0.1:%d" % listener.getsockname()[1]

        def bad_peer():
            sock, _ = listener.accept()
            recv_frame(sock)  # the hello
            send_frame(sock, {"op": "nope"})
            sock.close()

        thread = threading.Thread(target=bad_peer, daemon=True)
        thread.start()
        spec = ClusterSpec(
            hosts=(address, workers[0].address), probe_interval_s=30.0
        )
        pool = RemoteShardExecutor(spec)
        try:
            # Work completes on the healthy host; the impostor is demoted.
            assert pool.submit(
                flexoffer_area_size, FlexOffer(0, 2, [(1, 3)])
            ).result(timeout=30)
            assert pool.submit(
                flexoffer_area_size, FlexOffer(0, 2, [(1, 3)])
            ).result(timeout=30)
            assert pool.health()[address]["state"] in ("suspect", "down")
        finally:
            pool.shutdown()
            listener.close()
            thread.join(timeout=5)


class ScriptedPeer:
    """One end of a socketpair following a scripted reply sequence."""

    def __init__(self, replies):
        self.client, self.server = socket.socketpair()
        self.received = []
        self.thread = threading.Thread(target=self._serve, args=(replies,), daemon=True)
        self.thread.start()

    def _serve(self, replies) -> None:
        for reply in replies:
            message = recv_frame(self.server)
            if message is None:
                return
            self.received.append(message)
            if reply is not None:
                send_frame(self.server, reply, pickled=True)
        self.server.close()

    def close(self) -> None:
        self.client.close()
        self.thread.join(timeout=5)


class TestDispatchReships:
    """White-box ``_dispatch`` against scripted peers: the reship loop."""

    OFFERS = [FlexOffer(0, 2, [(1, 3)], name="x")]
    KEY = shard_key(OFFERS)

    def run_dispatch(self, executor, replies):
        from repro.cluster.framing import ShardRef

        peer = ScriptedPeer(replies)
        connection = _Connection(peer.client)
        # The executor believes this connection already holds the chunk —
        # the only state from which a worker can report it missing.
        connection.shipped.add(self.KEY)
        host = _Host("scripted:1")
        try:
            value = executor._dispatch(
                connection,
                host,
                "repro.core:flexoffer_area_size",
                [ShardRef(self.KEY)],
                {self.KEY: self.OFFERS},
            )
            return value, peer
        finally:
            peer.close()

    def test_a_stale_worker_cache_triggers_one_reship(self, executor):
        value, peer = self.run_dispatch(
            executor,
            [
                {"op": "result", "id": 1, "ok": False, "missing": [self.KEY]},
                {"op": "result", "id": 1, "ok": True, "value": 6},
            ],
        )
        assert value == 6
        assert peer.received[0]["ship"] == {}  # believed shipped
        assert self.KEY in peer.received[1]["ship"]  # the reship carries bytes
        assert executor.stats()["reships"] == 1

    def test_missing_after_a_reship_is_a_wire_error(self, executor):
        with pytest.raises(WireError, match="after a reship"):
            self.run_dispatch(
                executor,
                [
                    {"op": "result", "id": 1, "ok": False, "missing": [self.KEY]},
                    {"op": "result", "id": 1, "ok": False, "missing": [self.KEY]},
                ],
            )

    def test_unknown_missing_keys_are_a_wire_error(self, executor):
        with pytest.raises(WireError, match="unknown shard keys"):
            self.run_dispatch(
                executor,
                [{"op": "result", "id": 1, "ok": False,
                  "missing": ["not-a-key-we-sent"]}],
            )

    def test_a_mismatched_task_id_is_a_wire_error(self, executor):
        with pytest.raises(WireError, match="out-of-protocol"):
            self.run_dispatch(
                executor,
                [{"op": "result", "id": 99, "ok": True, "value": 1}],
            )

    def test_a_malformed_error_frame_is_a_wire_error(self, executor):
        with pytest.raises(WireError, match="malformed error frame"):
            self.run_dispatch(
                executor,
                [{"op": "result", "id": 1, "ok": False, "error": "not-an-exception"}],
            )

    def test_a_peer_that_hangs_up_mid_task_is_a_wire_error(self, executor):
        with pytest.raises(WireError, match="closed during a task"):
            self.run_dispatch(executor, [None])
