"""Setuptools entry point.

The pyproject.toml carries all metadata; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
