"""Serialisation helpers (JSON and CSV) for flex-offers, schedules and the
service layer's request/response objects."""

from .csv_io import (
    flexoffers_from_csv,
    flexoffers_to_csv,
    measurements_to_csv,
    read_flexoffers_csv,
    request_stats_to_csv,
    write_flexoffers_csv,
)
from .serialization import (
    assignment_from_dict,
    assignment_to_dict,
    event_from_dict,
    event_to_dict,
    flexoffer_from_dict,
    flexoffer_to_dict,
    flexoffers_from_json,
    flexoffers_to_json,
    request_from_dict,
    request_to_dict,
    result_from_dict,
    result_to_dict,
    schedule_from_dict,
    schedule_to_dict,
    timeseries_from_dict,
    timeseries_to_dict,
)

__all__ = [
    "flexoffer_to_dict",
    "flexoffer_from_dict",
    "flexoffers_to_json",
    "flexoffers_from_json",
    "assignment_to_dict",
    "assignment_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "timeseries_to_dict",
    "timeseries_from_dict",
    "event_to_dict",
    "event_from_dict",
    "request_to_dict",
    "request_from_dict",
    "result_to_dict",
    "result_from_dict",
    "flexoffers_to_csv",
    "flexoffers_from_csv",
    "write_flexoffers_csv",
    "read_flexoffers_csv",
    "measurements_to_csv",
    "request_stats_to_csv",
]
