"""CSV import/export of flex-offer populations and measurement tables.

CSV is the exchange format the evaluation tooling consumes (spreadsheets,
plotting scripts).  Flex-offers are stored one per row with the profile
encoded compactly as ``amin:amax`` pairs separated by ``|``.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Optional, Union

from ..core.errors import SerializationError
from ..core.flexoffer import FlexOffer

__all__ = [
    "flexoffers_to_csv",
    "flexoffers_from_csv",
    "write_flexoffers_csv",
    "read_flexoffers_csv",
    "measurements_to_csv",
    "request_stats_to_csv",
]

_FIELDNAMES = (
    "name",
    "earliest_start",
    "latest_start",
    "profile",
    "total_energy_min",
    "total_energy_max",
)


def _encode_profile(flex_offer: FlexOffer) -> str:
    return "|".join(f"{s.amin}:{s.amax}" for s in flex_offer.slices)


def _decode_profile(text: str) -> list[tuple[int, int]]:
    slices = []
    for token in text.split("|"):
        try:
            amin_text, amax_text = token.split(":")
            slices.append((int(amin_text), int(amax_text)))
        except ValueError as error:
            raise SerializationError(f"malformed profile token {token!r}") from error
    return slices


def flexoffers_to_csv(flex_offers: Iterable[FlexOffer]) -> str:
    """Serialise flex-offers into a CSV string (header included)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDNAMES)
    writer.writeheader()
    for flex_offer in flex_offers:
        writer.writerow(
            {
                "name": flex_offer.name or "",
                "earliest_start": flex_offer.earliest_start,
                "latest_start": flex_offer.latest_start,
                "profile": _encode_profile(flex_offer),
                "total_energy_min": flex_offer.cmin,
                "total_energy_max": flex_offer.cmax,
            }
        )
    return buffer.getvalue()


def flexoffers_from_csv(text: str) -> list[FlexOffer]:
    """Parse flex-offers from a CSV string produced by :func:`flexoffers_to_csv`."""
    reader = csv.DictReader(io.StringIO(text))
    flex_offers = []
    for row_number, row in enumerate(reader, start=2):
        try:
            flex_offers.append(
                FlexOffer(
                    int(row["earliest_start"]),
                    int(row["latest_start"]),
                    _decode_profile(row["profile"]),
                    int(row["total_energy_min"]),
                    int(row["total_energy_max"]),
                    row["name"] or None,
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"malformed CSV row {row_number}: {error}") from error
    return flex_offers


def write_flexoffers_csv(path: Union[str, Path], flex_offers: Iterable[FlexOffer]) -> None:
    """Write flex-offers to a CSV file."""
    Path(path).write_text(flexoffers_to_csv(flex_offers), encoding="utf-8")


def read_flexoffers_csv(path: Union[str, Path]) -> list[FlexOffer]:
    """Read flex-offers from a CSV file."""
    return flexoffers_from_csv(Path(path).read_text(encoding="utf-8"))


def measurements_to_csv(
    rows: Sequence[Mapping[str, object]], fieldnames: Optional[Sequence[str]] = None
) -> str:
    """Serialise measurement/benchmark rows (dicts) into a CSV string.

    ``fieldnames`` defaults to the keys of the first row; every row must
    provide a value for every field.
    """
    if not rows:
        return ""
    names = list(fieldnames) if fieldnames is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=names)
    writer.writeheader()
    for row in rows:
        writer.writerow({name: row.get(name, "") for name in names})
    return buffer.getvalue()


#: Columns of the service request-stats export, one row per served request.
_STATS_FIELDNAMES = (
    "kind",
    "backend",
    "duration_s",
    "population",
    "cache_hits",
    "cache_misses",
)


def request_stats_to_csv(results: Iterable[object]) -> str:
    """Serialise service responses' stats blocks into a CSV access log.

    Accepts any mix of :mod:`repro.service` ``*Result`` objects (their
    ``stats`` block is read) or bare
    :class:`~repro.service.RequestStats` instances — one row per request,
    in iteration order.  This is the session-side counterpart of a web
    server's access log: request kind, serving backend, wall-clock and
    cache-hit columns, ready for a spreadsheet.
    """
    rows = []
    for result in results:
        stats = getattr(result, "stats", result)
        try:
            rows.append({name: getattr(stats, name) for name in _STATS_FIELDNAMES})
        except AttributeError as error:
            raise SerializationError(
                f"not a service result or stats block: {result!r}"
            ) from error
    return measurements_to_csv(rows, _STATS_FIELDNAMES)
