"""CSV import/export of flex-offer populations and measurement tables.

CSV is the exchange format the evaluation tooling consumes (spreadsheets,
plotting scripts).  Flex-offers are stored one per row with the profile
encoded compactly as ``amin:amax`` pairs separated by ``|``.
"""

from __future__ import annotations

import csv
import io
import threading
from collections.abc import Iterable, Iterator, Mapping, Sequence
from pathlib import Path
from typing import Optional, TextIO, Union

from ..core.errors import SerializationError
from ..core.flexoffer import FlexOffer

__all__ = [
    "flexoffers_to_csv",
    "flexoffers_from_csv",
    "write_flexoffers_csv",
    "read_flexoffers_csv",
    "measurements_to_csv",
    "request_stats_to_csv",
    "request_stats_rows",
    "RequestStatsLog",
]

_FIELDNAMES = (
    "name",
    "earliest_start",
    "latest_start",
    "profile",
    "total_energy_min",
    "total_energy_max",
)


def _encode_profile(flex_offer: FlexOffer) -> str:
    return "|".join(f"{s.amin}:{s.amax}" for s in flex_offer.slices)


def _decode_profile(text: str) -> list[tuple[int, int]]:
    slices = []
    for token in text.split("|"):
        try:
            amin_text, amax_text = token.split(":")
            slices.append((int(amin_text), int(amax_text)))
        except ValueError as error:
            raise SerializationError(f"malformed profile token {token!r}") from error
    return slices


def flexoffers_to_csv(flex_offers: Iterable[FlexOffer]) -> str:
    """Serialise flex-offers into a CSV string (header included)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDNAMES)
    writer.writeheader()
    for flex_offer in flex_offers:
        writer.writerow(
            {
                "name": flex_offer.name or "",
                "earliest_start": flex_offer.earliest_start,
                "latest_start": flex_offer.latest_start,
                "profile": _encode_profile(flex_offer),
                "total_energy_min": flex_offer.cmin,
                "total_energy_max": flex_offer.cmax,
            }
        )
    return buffer.getvalue()


def flexoffers_from_csv(text: str) -> list[FlexOffer]:
    """Parse flex-offers from a CSV string produced by :func:`flexoffers_to_csv`."""
    reader = csv.DictReader(io.StringIO(text))
    flex_offers = []
    for row_number, row in enumerate(reader, start=2):
        try:
            flex_offers.append(
                FlexOffer(
                    int(row["earliest_start"]),
                    int(row["latest_start"]),
                    _decode_profile(row["profile"]),
                    int(row["total_energy_min"]),
                    int(row["total_energy_max"]),
                    row["name"] or None,
                )
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"malformed CSV row {row_number}: {error}") from error
    return flex_offers


def write_flexoffers_csv(path: Union[str, Path], flex_offers: Iterable[FlexOffer]) -> None:
    """Write flex-offers to a CSV file."""
    Path(path).write_text(flexoffers_to_csv(flex_offers), encoding="utf-8")


def read_flexoffers_csv(path: Union[str, Path]) -> list[FlexOffer]:
    """Read flex-offers from a CSV file."""
    return flexoffers_from_csv(Path(path).read_text(encoding="utf-8"))


def measurements_to_csv(
    rows: Sequence[Mapping[str, object]], fieldnames: Optional[Sequence[str]] = None
) -> str:
    """Serialise measurement/benchmark rows (dicts) into a CSV string.

    ``fieldnames`` defaults to the keys of the first row; every row must
    provide a value for every field.
    """
    if not rows:
        return ""
    names = list(fieldnames) if fieldnames is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=names)
    writer.writeheader()
    for row in rows:
        writer.writerow({name: row.get(name, "") for name in names})
    return buffer.getvalue()


#: Columns of the service request-stats export, one row per served request.
_STATS_FIELDNAMES = (
    "kind",
    "backend",
    "duration_s",
    "population",
    "cache_hits",
    "cache_misses",
)


def _stats_row(result: object) -> str:
    """One complete CSV line (trailing newline included) for one request.

    Formatting the full row before any write is what makes concurrent
    appenders safe: a row always reaches the underlying stream in a
    single ``write()`` call, never as interleavable fragments.
    """
    stats = getattr(result, "stats", result)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    try:
        writer.writerow([getattr(stats, name) for name in _STATS_FIELDNAMES])
    except AttributeError as error:
        raise SerializationError(
            f"not a service result or stats block: {result!r}"
        ) from error
    return buffer.getvalue()


def _stats_header() -> str:
    """The access log's header line (trailing newline included)."""
    buffer = io.StringIO()
    csv.writer(buffer).writerow(_STATS_FIELDNAMES)
    return buffer.getvalue()


def request_stats_rows(
    results: Iterable[object], header: bool = True
) -> Iterator[str]:
    """Lock-free row iterator over service responses' stats blocks.

    Yields one *complete* CSV line per item (the header first when
    ``header=True``), each safe to hand to ``file.write()`` as a single
    call.  This is the concurrency-friendly core of
    :func:`request_stats_to_csv`: an appender that writes whole yielded
    rows can interleave with other appenders without corrupting any row.
    """
    if header:
        yield _stats_header()
    for result in results:
        yield _stats_row(result)


def request_stats_to_csv(
    results: Iterable[object],
    stream: Optional[TextIO] = None,
    header: bool = True,
) -> str:
    """Serialise service responses' stats blocks into a CSV access log.

    Accepts any mix of :mod:`repro.service` ``*Result`` objects (their
    ``stats`` block is read) or bare
    :class:`~repro.service.RequestStats` instances — one row per request,
    in iteration order.  This is the session-side counterpart of a web
    server's access log: request kind, serving backend, wall-clock and
    cache-hit columns, ready for a spreadsheet.

    With ``stream`` given (an open text handle), the same rows are also
    written to it — each row in one ``write()`` call, so concurrent
    appenders sharing the handle cannot interleave partial rows.
    ``header=False`` skips the header line (appending to an existing
    log).  The CSV text is returned either way.
    """
    rows = list(request_stats_rows(results, header=header))
    if stream is not None:
        for row in rows:
            stream.write(row)
    return "".join(rows)


class RequestStatsLog:
    """A concurrency-safe, append-only request-stats access log.

    The gateway's worker threads (and any other producer) append
    :class:`~repro.service.RequestStats` rows as requests complete; each
    row is fully formatted first and written under a lock in a single
    ``write()``+``flush()``, so the log never contains a partial or
    interleaved row no matter how many threads append.

    Parameters
    ----------
    target:
        A path (opened in append mode, owned and closed by the log) or an
        open text handle (borrowed — flushed but never closed).
    header:
        Write the header line before the first row.  Defaults to writing
        it only when appending to the start of a fresh file (for borrowed
        handles: always, unless disabled).

    >>> import io
    >>> from repro.service.results import RequestStats
    >>> sink = io.StringIO()
    >>> log = RequestStatsLog(sink)
    >>> log.append(RequestStats("evaluate", "numpy", 0.25, 4))
    >>> print(sink.getvalue().strip())
    kind,backend,duration_s,population,cache_hits,cache_misses
    evaluate,numpy,0.25,4,0,0
    """

    def __init__(
        self,
        target: Union[str, Path, TextIO],
        header: Optional[bool] = None,
    ) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            if header is None:
                header = not (path.exists() and path.stat().st_size > 0)
            self._stream: TextIO = path.open("a", encoding="utf-8", newline="")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
            if header is None:
                header = True
        self._lock = threading.Lock()
        self._header_pending = bool(header)
        self.rows_written = 0
        self._closed = False

    def append(self, result: object) -> None:
        """Append one result's (or bare stats block's) row, atomically."""
        row = _stats_row(result)  # formatted (and validated) outside the lock
        with self._lock:
            if self._closed:
                raise SerializationError("the access log is closed")
            if self._header_pending:
                self._stream.write(_stats_header())
                self._header_pending = False
            self._stream.write(row)
            self._stream.flush()
            self.rows_written += 1

    def extend(self, results: Iterable[object]) -> None:
        """Append many rows (each one still an atomic write)."""
        for result in results:
            self.append(result)

    def close(self) -> None:
        """Flush, and close the stream if this log opened it.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stream.flush()
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "RequestStatsLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
