"""JSON (de)serialisation of flex-offers, assignments and schedules.

Flex-offers are exchanged between prosumers, Aggregators and BRPs (Scenario 2
of the paper), so the library needs a stable wire format.  The format is
deliberately plain JSON — a dictionary per flex-offer with the paper's field
names — so that other tools can produce and consume it without this library.

PR 5 extends the format to the service layer: stream events, every
:mod:`repro.service` request and every ``*Result`` round-trip through
tagged dictionaries (``{"kind": ..., ...}``), so a remote client can POST
a request body at a :class:`~repro.service.FlexSession` host and log the
typed responses.

Numeric fields are *strict JSON*: non-finite floats are encoded as the
string sentinels ``"inf"`` / ``"-inf"`` / ``"nan"``
(:func:`float_to_wire` / :func:`float_from_wire`), and every dump in this
module passes ``allow_nan=False`` — the payloads double as the write-ahead
log records of :mod:`repro.persist`, so an unparseable document would not
just break a client, it would break recovery.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Sequence
from typing import Any

from ..aggregation.base import AggregatedFlexOffer
from ..core.assignment import Assignment
from ..core.errors import SerializationError
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from ..scheduling.base import Schedule

__all__ = [
    "float_to_wire",
    "float_from_wire",
    "wire_safe",
    "flexoffer_to_dict",
    "flexoffer_from_dict",
    "flexoffers_to_json",
    "flexoffers_from_json",
    "assignment_to_dict",
    "assignment_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "timeseries_to_dict",
    "timeseries_from_dict",
    "event_to_dict",
    "event_from_dict",
    "request_to_dict",
    "request_from_dict",
    "result_to_dict",
    "result_from_dict",
    "error_to_dict",
    "error_from_dict",
]


def float_to_wire(value: Any) -> Any:
    """Encode one numeric field for the wire.

    Finite numbers (and non-floats) pass through untouched — an ``int``
    stays an ``int``, so exactness bookkeeping survives a round trip.
    Non-finite floats become the string sentinels ``"inf"`` / ``"-inf"`` /
    ``"nan"`` (the spelling :class:`float` itself parses), mirroring the
    budget convention the trade request has always used: ``json.dumps``
    with ``allow_nan=True`` would emit ``Infinity``/``NaN``, which is not
    JSON and which strict parsers (and any non-Python gateway client)
    reject.
    """
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    return value


def float_from_wire(value: Any) -> Any:
    """Decode one numeric field: the inverse of :func:`float_to_wire`.

    Sentinel strings parse back into non-finite floats; numbers pass
    through unchanged (an ``int`` stays an ``int``).  Raises
    :class:`SerializationError` on a non-numeric string.
    """
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError as error:
            raise SerializationError(
                f"not a numeric wire value: {value!r}"
            ) from error
    return value


def wire_safe(payload: Any) -> Any:
    """A deep copy of ``payload`` with non-finite floats sentinel-encoded.

    The safety net for free-form JSON documents (gateway health blocks,
    session stats) that embed library-computed floats: every ``float`` at
    any nesting depth goes through :func:`float_to_wire`, so the result
    always survives ``json.dumps(..., allow_nan=False)``.  Typed payloads
    built by the ``*_to_dict`` serialisers already encode their numeric
    fields and do not need this pass.
    """
    if isinstance(payload, float):
        return float_to_wire(payload)
    if isinstance(payload, dict):
        return {key: wire_safe(value) for key, value in payload.items()}
    if isinstance(payload, (list, tuple)):
        return [wire_safe(item) for item in payload]
    return payload


def flexoffer_to_dict(flex_offer: FlexOffer) -> dict[str, Any]:
    """A JSON-ready dictionary for one flex-offer."""
    return {
        "name": flex_offer.name,
        "earliest_start": flex_offer.earliest_start,
        "latest_start": flex_offer.latest_start,
        "slices": [list(energy_slice.as_tuple()) for energy_slice in flex_offer.slices],
        "total_energy_min": flex_offer.cmin,
        "total_energy_max": flex_offer.cmax,
    }


def flexoffer_from_dict(payload: dict[str, Any]) -> FlexOffer:
    """Rebuild a flex-offer from its dictionary form.

    Raises :class:`SerializationError` with the offending field on malformed
    input.
    """
    try:
        return FlexOffer(
            int(payload["earliest_start"]),
            int(payload["latest_start"]),
            [tuple(item) for item in payload["slices"]],
            payload.get("total_energy_min"),
            payload.get("total_energy_max"),
            payload.get("name"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed flex-offer payload: {error}") from error


def flexoffers_to_json(flex_offers: Iterable[FlexOffer], indent: int = 2) -> str:
    """Serialise many flex-offers into a JSON array string."""
    return json.dumps(
        [flexoffer_to_dict(f) for f in flex_offers],
        indent=indent,
        allow_nan=False,
    )


def flexoffers_from_json(text: str) -> list[FlexOffer]:
    """Parse a JSON array of flex-offers."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if not isinstance(payload, list):
        raise SerializationError("expected a JSON array of flex-offers")
    return [flexoffer_from_dict(item) for item in payload]


def timeseries_to_dict(series: TimeSeries) -> dict[str, Any]:
    """A JSON-ready dictionary for a time series."""
    return {
        "start": series.start,
        "values": [float_to_wire(value) for value in series.values],
    }


def timeseries_from_dict(payload: dict[str, Any]) -> TimeSeries:
    """Rebuild a time series from its dictionary form."""
    try:
        return TimeSeries(
            int(payload["start"]),
            tuple(float_from_wire(value) for value in payload["values"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed time-series payload: {error}") from error


def assignment_to_dict(assignment: Assignment) -> dict[str, Any]:
    """A JSON-ready dictionary for one assignment (embeds its flex-offer)."""
    return {
        "flex_offer": flexoffer_to_dict(assignment.flex_offer),
        "start_time": assignment.start_time,
        "values": [float_to_wire(value) for value in assignment.values],
    }


def assignment_from_dict(payload: dict[str, Any]) -> Assignment:
    """Rebuild an assignment (and its flex-offer) from its dictionary form."""
    try:
        flex_offer = flexoffer_from_dict(payload["flex_offer"])
        return Assignment(
            flex_offer,
            int(payload["start_time"]),
            tuple(float_from_wire(value) for value in payload["values"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed assignment payload: {error}") from error


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """A JSON-ready dictionary for a schedule."""
    return {"assignments": [assignment_to_dict(a) for a in schedule.assignments]}


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Rebuild a schedule from its dictionary form."""
    try:
        assignments = tuple(
            assignment_from_dict(item) for item in payload["assignments"]
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed schedule payload: {error}") from error
    return Schedule(assignments)


# --------------------------------------------------------------------- #
# Stream events
# --------------------------------------------------------------------- #


def event_to_dict(event) -> dict[str, Any]:
    """A JSON-ready, kind-tagged dictionary for one stream event."""
    from ..stream.events import OfferArrived, OfferAssigned, OfferExpired, Tick

    if isinstance(event, OfferArrived):
        return {
            "kind": "arrived",
            "offer_id": event.offer_id,
            "flex_offer": flexoffer_to_dict(event.flex_offer),
        }
    if isinstance(event, OfferExpired):
        return {"kind": "expired", "offer_id": event.offer_id}
    if isinstance(event, OfferAssigned):
        return {
            "kind": "assigned",
            "offer_id": event.offer_id,
            "start_time": event.start_time,
            "price": float_to_wire(event.price),
        }
    if isinstance(event, Tick):
        return {"kind": "tick", "time": event.time}
    raise SerializationError(f"not a serialisable stream event: {event!r}")


def event_from_dict(payload: dict[str, Any]):
    """Rebuild a stream event from its kind-tagged dictionary form."""
    from ..stream.events import OfferArrived, OfferAssigned, OfferExpired, Tick

    try:
        kind = payload["kind"]
        if kind == "arrived":
            return OfferArrived(
                payload["offer_id"], flexoffer_from_dict(payload["flex_offer"])
            )
        if kind == "expired":
            return OfferExpired(payload["offer_id"])
        if kind == "assigned":
            return OfferAssigned(
                payload["offer_id"],
                start_time=payload.get("start_time"),
                price=float_from_wire(payload.get("price")),
            )
        if kind == "tick":
            return Tick(int(payload["time"]))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed event payload: {error}") from error
    raise SerializationError(f"unknown event kind {payload.get('kind')!r}")


# --------------------------------------------------------------------- #
# Service requests
# --------------------------------------------------------------------- #


def _lot_to_dict(lot) -> dict[str, Any]:
    """One tradable lot: a plain flex-offer or an aggregate with members."""
    if isinstance(lot, AggregatedFlexOffer):
        return {
            "flex_offer": flexoffer_to_dict(lot.flex_offer),
            "members": [flexoffer_to_dict(member) for member in lot.members],
            "member_offsets": list(lot.member_offsets),
        }
    return flexoffer_to_dict(lot)


def _lot_from_dict(payload: dict[str, Any]):
    if "members" in payload:
        try:
            return AggregatedFlexOffer(
                flexoffer_from_dict(payload["flex_offer"]),
                tuple(flexoffer_from_dict(item) for item in payload["members"]),
                tuple(int(offset) for offset in payload["member_offsets"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"malformed aggregate payload: {error}"
            ) from error
    return flexoffer_from_dict(payload)


def _optional_offers(offers) -> Any:
    return (
        None
        if offers is None
        else [flexoffer_to_dict(flex_offer) for flex_offer in offers]
    )


def request_to_dict(request) -> dict[str, Any]:
    """A JSON-ready, kind-tagged dictionary for any service request.

    ``ScheduleRequest.options`` must hold JSON-compatible values (the
    scheduler constructor knobs all are); an ``objective`` option —
    an in-process object — is rejected.
    """
    from ..service.requests import (
        AggregateRequest,
        EvaluateRequest,
        ScheduleRequest,
        StreamRequest,
        TradeRequest,
    )

    if isinstance(request, EvaluateRequest):
        return {
            "kind": "evaluate",
            "measures": None if request.measures is None else list(request.measures),
            "offers": _optional_offers(request.offers),
            "skip_unsupported": request.skip_unsupported,
        }
    if isinstance(request, AggregateRequest):
        return {
            "kind": "aggregate",
            "offers": _optional_offers(request.offers),
            "prefix": request.prefix,
        }
    if isinstance(request, ScheduleRequest):
        options = dict(request.options)
        if "objective" in options:
            raise SerializationError(
                "an in-process objective option cannot be serialised; "
                "use the request's metric/reference fields"
            )
        return {
            "kind": "schedule",
            "scheduler": request.scheduler,
            "offers": _optional_offers(request.offers),
            "reference": (
                None
                if request.reference is None
                else timeseries_to_dict(request.reference)
            ),
            "metric": request.metric,
            "options": options,
        }
    if isinstance(request, TradeRequest):
        return {
            "kind": "trade",
            "lots": (
                None
                if request.lots is None
                else [_lot_to_dict(lot) for lot in request.lots]
            ),
            "measure": request.measure,
            "energy_price": float_to_wire(request.energy_price),
            "premium_per_unit": float_to_wire(request.premium_per_unit),
            "budget": float_to_wire(request.budget),
        }
    if isinstance(request, StreamRequest):
        return {
            "kind": "stream",
            "events": [event_to_dict(event) for event in request.events],
            "bulk": request.bulk,
        }
    raise SerializationError(f"not a serialisable service request: {request!r}")


def request_from_dict(payload: dict[str, Any]):
    """Rebuild a service request from :func:`request_to_dict` output."""
    from ..service.requests import (
        AggregateRequest,
        EvaluateRequest,
        ScheduleRequest,
        StreamRequest,
        TradeRequest,
    )

    def offers(key: str):
        value = payload.get(key)
        if value is None:
            return None
        return tuple(flexoffer_from_dict(item) for item in value)

    try:
        kind = payload["kind"]
        if kind == "evaluate":
            measures = payload.get("measures")
            return EvaluateRequest(
                measures=None if measures is None else tuple(measures),
                offers=offers("offers"),
                skip_unsupported=payload.get("skip_unsupported", True),
            )
        if kind == "aggregate":
            return AggregateRequest(
                offers=offers("offers"), prefix=payload.get("prefix", "aggregate")
            )
        if kind == "schedule":
            reference = payload.get("reference")
            return ScheduleRequest(
                scheduler=payload.get("scheduler", "greedy"),
                offers=offers("offers"),
                reference=(
                    None if reference is None else timeseries_from_dict(reference)
                ),
                metric=payload.get("metric", "absolute"),
                options=payload.get("options", {}),
            )
        if kind == "trade":
            lots = payload.get("lots")
            budget = payload.get("budget", "inf")
            return TradeRequest(
                lots=(
                    None
                    if lots is None
                    else tuple(_lot_from_dict(item) for item in lots)
                ),
                measure=payload.get("measure", "vector"),
                energy_price=float_from_wire(payload.get("energy_price", 30.0)),
                premium_per_unit=float_from_wire(
                    payload.get("premium_per_unit", 2.0)
                ),
                budget=float(float_from_wire(budget)),
            )
        if kind == "stream":
            return StreamRequest(
                events=tuple(
                    event_from_dict(item) for item in payload.get("events", ())
                ),
                bulk=payload.get("bulk", False),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed request payload: {error}") from error
    raise SerializationError(f"unknown request kind {payload.get('kind')!r}")


# --------------------------------------------------------------------- #
# Service results
# --------------------------------------------------------------------- #


def _stats_to_dict(stats) -> dict[str, Any]:
    return {
        "kind": stats.kind,
        "backend": stats.backend,
        "duration_s": stats.duration_s,
        "population": stats.population,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
    }


def _stats_from_dict(payload: dict[str, Any]):
    from ..service.results import RequestStats

    return RequestStats(
        kind=payload["kind"],
        backend=payload["backend"],
        duration_s=float(payload["duration_s"]),
        population=int(payload["population"]),
        cache_hits=int(payload.get("cache_hits", 0)),
        cache_misses=int(payload.get("cache_misses", 0)),
    )


def _bid_to_dict(bid) -> dict[str, Any]:
    return {
        "flex_offer": flexoffer_to_dict(bid.flex_offer),
        "energy_price": float_to_wire(bid.energy_price),
        "flexibility_premium": float_to_wire(bid.flexibility_premium),
    }


def _bid_from_dict(payload: dict[str, Any]):
    from ..market.trading import Bid

    return Bid(
        flexoffer_from_dict(payload["flex_offer"]),
        energy_price=float(float_from_wire(payload["energy_price"])),
        flexibility_premium=float(
            float_from_wire(payload["flexibility_premium"])
        ),
    )


def result_to_dict(result) -> dict[str, Any]:
    """A JSON-ready, kind-tagged dictionary for any service result.

    The tag mirrors the originating request kind (``result["kind"]`` ==
    ``result.stats.kind``), so a response log interleaving every request
    type stays self-describing.
    """
    from ..service.results import (
        AggregateResult,
        EvaluateResult,
        ScheduleResult,
        StreamResult,
        TradeResult,
    )

    if isinstance(result, EvaluateResult):
        return {
            "kind": "evaluate",
            "report": {
                "size": result.report.size,
                "values": {
                    key: float_to_wire(value)
                    for key, value in result.report.values.items()
                },
                "skipped": list(result.report.skipped),
            },
            "stats": _stats_to_dict(result.stats),
        }
    if isinstance(result, AggregateResult):
        return {
            "kind": "aggregate",
            "groups": [
                [flexoffer_to_dict(flex_offer) for flex_offer in group]
                for group in result.groups
            ],
            "aggregates": [_lot_to_dict(aggregate) for aggregate in result.aggregates],
            "stats": _stats_to_dict(result.stats),
        }
    if isinstance(result, ScheduleResult):
        return {
            "kind": "schedule",
            "schedule": schedule_to_dict(result.schedule),
            "objective_value": float_to_wire(result.objective_value),
            "scheduler": result.scheduler,
            "stats": _stats_to_dict(result.stats),
        }
    if isinstance(result, TradeResult):
        return {
            "kind": "trade",
            "accepted": [_bid_to_dict(bid) for bid in result.accepted],
            "rejected": [_bid_to_dict(bid) for bid in result.rejected],
            "revenue": float_to_wire(result.revenue),
            "stats": _stats_to_dict(result.stats),
        }
    if isinstance(result, StreamResult):
        return {
            "kind": "stream",
            "applied": result.applied,
            "live": result.live,
            "time": result.time,
            "engine_stats": {
                key: float_to_wire(value)
                for key, value in result.engine_stats.items()
            },
            "stats": _stats_to_dict(result.stats),
        }
    raise SerializationError(f"not a serialisable service result: {result!r}")


def result_from_dict(payload: dict[str, Any]):
    """Rebuild a service result from :func:`result_to_dict` output."""
    from ..measures.setwise import FlexibilitySetReport
    from ..service.results import (
        AggregateResult,
        EvaluateResult,
        ScheduleResult,
        StreamResult,
        TradeResult,
    )

    try:
        kind = payload["kind"]
        stats = _stats_from_dict(payload["stats"])
        if kind == "evaluate":
            report = payload["report"]
            return EvaluateResult(
                report=FlexibilitySetReport(
                    int(report["size"]),
                    {
                        key: float_from_wire(value)
                        for key, value in report["values"].items()
                    },
                    tuple(report["skipped"]),
                ),
                stats=stats,
            )
        if kind == "aggregate":
            return AggregateResult(
                groups=tuple(
                    tuple(flexoffer_from_dict(item) for item in group)
                    for group in payload["groups"]
                ),
                aggregates=tuple(
                    _lot_from_dict(item) for item in payload["aggregates"]
                ),
                stats=stats,
            )
        if kind == "schedule":
            return ScheduleResult(
                schedule=schedule_from_dict(payload["schedule"]),
                objective_value=float(float_from_wire(payload["objective_value"])),
                scheduler=payload["scheduler"],
                stats=stats,
            )
        if kind == "trade":
            return TradeResult(
                accepted=tuple(_bid_from_dict(item) for item in payload["accepted"]),
                rejected=tuple(_bid_from_dict(item) for item in payload["rejected"]),
                revenue=float(float_from_wire(payload["revenue"])),
                stats=stats,
            )
        if kind == "stream":
            return StreamResult(
                applied=int(payload["applied"]),
                live=int(payload["live"]),
                time=payload["time"],
                stats=stats,
                engine_stats={
                    key: float_from_wire(value)
                    for key, value in payload.get("engine_stats", {}).items()
                },
            )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed result payload: {error}") from error
    raise SerializationError(f"unknown result kind {payload.get('kind')!r}")


# --------------------------------------------------------------------- #
# Gateway errors
# --------------------------------------------------------------------- #


def error_to_dict(error) -> dict[str, Any]:
    """A JSON-ready, kind-tagged dictionary for one gateway error.

    The body every non-2xx :mod:`repro.server` response carries:
    ``kind`` is always ``"error"``, ``error`` is the stable
    machine-readable code, ``status`` the HTTP status, ``detail`` the
    human-readable message and ``retry_after`` (seconds, only on
    backpressure rejections) the client's retry hint.
    """
    from ..server.limits import GatewayError

    if not isinstance(error, GatewayError):
        raise SerializationError(f"not a serialisable gateway error: {error!r}")
    payload: dict[str, Any] = {
        "kind": "error",
        "error": error.code,
        "status": error.status,
        "detail": error.detail,
    }
    if error.retry_after is not None:
        payload["retry_after"] = error.retry_after
    return payload


def error_from_dict(payload: dict[str, Any]):
    """Rebuild a typed gateway error from :func:`error_to_dict` output.

    The returned exception's class is resolved from the wire ``error``
    code, so ``raise error_from_dict(body)`` on the client side surfaces
    the same typed error the server raised.
    """
    from ..server.limits import error_class_for_code

    if not isinstance(payload, dict) or payload.get("kind") != "error":
        raise SerializationError(f"not an error payload: {payload!r}")
    try:
        error_class = error_class_for_code(payload["error"])
        error = error_class(
            str(payload["detail"]),
            retry_after=payload.get("retry_after"),
        )
    except (KeyError, TypeError, ValueError) as error_:
        raise SerializationError(
            f"malformed error payload: {error_}"
        ) from error_
    return error
