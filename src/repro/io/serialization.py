"""JSON (de)serialisation of flex-offers, assignments and schedules.

Flex-offers are exchanged between prosumers, Aggregators and BRPs (Scenario 2
of the paper), so the library needs a stable wire format.  The format is
deliberately plain JSON — a dictionary per flex-offer with the paper's field
names — so that other tools can produce and consume it without this library.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from typing import Any

from ..core.assignment import Assignment
from ..core.errors import SerializationError
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from ..scheduling.base import Schedule

__all__ = [
    "flexoffer_to_dict",
    "flexoffer_from_dict",
    "flexoffers_to_json",
    "flexoffers_from_json",
    "assignment_to_dict",
    "assignment_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "timeseries_to_dict",
    "timeseries_from_dict",
]


def flexoffer_to_dict(flex_offer: FlexOffer) -> dict[str, Any]:
    """A JSON-ready dictionary for one flex-offer."""
    return {
        "name": flex_offer.name,
        "earliest_start": flex_offer.earliest_start,
        "latest_start": flex_offer.latest_start,
        "slices": [list(energy_slice.as_tuple()) for energy_slice in flex_offer.slices],
        "total_energy_min": flex_offer.cmin,
        "total_energy_max": flex_offer.cmax,
    }


def flexoffer_from_dict(payload: dict[str, Any]) -> FlexOffer:
    """Rebuild a flex-offer from its dictionary form.

    Raises :class:`SerializationError` with the offending field on malformed
    input.
    """
    try:
        return FlexOffer(
            int(payload["earliest_start"]),
            int(payload["latest_start"]),
            [tuple(item) for item in payload["slices"]],
            payload.get("total_energy_min"),
            payload.get("total_energy_max"),
            payload.get("name"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed flex-offer payload: {error}") from error


def flexoffers_to_json(flex_offers: Iterable[FlexOffer], indent: int = 2) -> str:
    """Serialise many flex-offers into a JSON array string."""
    return json.dumps([flexoffer_to_dict(f) for f in flex_offers], indent=indent)


def flexoffers_from_json(text: str) -> list[FlexOffer]:
    """Parse a JSON array of flex-offers."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    if not isinstance(payload, list):
        raise SerializationError("expected a JSON array of flex-offers")
    return [flexoffer_from_dict(item) for item in payload]


def timeseries_to_dict(series: TimeSeries) -> dict[str, Any]:
    """A JSON-ready dictionary for a time series."""
    return {"start": series.start, "values": list(series.values)}


def timeseries_from_dict(payload: dict[str, Any]) -> TimeSeries:
    """Rebuild a time series from its dictionary form."""
    try:
        return TimeSeries(int(payload["start"]), tuple(payload["values"]))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed time-series payload: {error}") from error


def assignment_to_dict(assignment: Assignment) -> dict[str, Any]:
    """A JSON-ready dictionary for one assignment (embeds its flex-offer)."""
    return {
        "flex_offer": flexoffer_to_dict(assignment.flex_offer),
        "start_time": assignment.start_time,
        "values": list(assignment.values),
    }


def assignment_from_dict(payload: dict[str, Any]) -> Assignment:
    """Rebuild an assignment (and its flex-offer) from its dictionary form."""
    try:
        flex_offer = flexoffer_from_dict(payload["flex_offer"])
        return Assignment(flex_offer, int(payload["start_time"]), tuple(payload["values"]))
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"malformed assignment payload: {error}") from error


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """A JSON-ready dictionary for a schedule."""
    return {"assignments": [assignment_to_dict(a) for a in schedule.assignments]}


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Rebuild a schedule from its dictionary form."""
    try:
        assignments = tuple(
            assignment_from_dict(item) for item in payload["assignments"]
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"malformed schedule payload: {error}") from error
    return Schedule(assignments)
