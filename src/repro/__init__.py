"""repro — a reproduction of "Measuring and Comparing Energy Flexibilities".

The library implements the flex-offer model and the eight flexibility
measures proposed by Valsomatzis, Hose, Pedersen and Šikšnys (EDBT/ICDT 2015
Workshops), together with the surrounding ecosystem the paper assumes:
flex-offer aggregation and disaggregation, scheduling, a simple energy-market
simulation, device models that emit realistic flex-offers, workload
generators, and analysis / reporting utilities.

Quickstart
----------
>>> from repro import FlexOffer, product_flexibility, vector_flexibility_norm
>>> ev = FlexOffer(23, 27, [(2, 4), (2, 4), (2, 4)], name="ev-charger")
>>> ev.time_flexibility, ev.energy_flexibility
(4, 6)
>>> product_flexibility(ev)
24

For anything beyond single-offer arithmetic, the recommended entry point
is the session-scoped service API (:mod:`repro.service`):

>>> from repro import FlexSession
>>> with FlexSession(backend="reference") as session:
...     _ = session.ingest([ev])
...     session.evaluate().report.values["product"]
24.0
"""

from .backend import (
    NUMPY_AVAILABLE,
    available_backends,
    get_backend,
    use_backend,
)
from .cluster import ClusterSpec, LocalCluster, RemoteShardExecutor
from .faults import FaultInjected, FaultPlan, FaultRule
from .persist import (
    RecoveryStats,
    SessionPersister,
    SnapshotStore,
    WriteAheadLog,
)
from .core import (
    Assignment,
    EnergySlice,
    FlexError,
    FlexOffer,
    FlexOfferKind,
    InvalidAssignmentError,
    InvalidFlexOfferError,
    InvalidSliceError,
    TimeSeries,
    count_assignments,
    enumerate_assignments,
    flexoffer_area,
    flexoffer_area_size,
    series_area,
)
from .measures import (
    AbsoluteAreaFlexibility,
    AssignmentFlexibility,
    EnergyFlexibility,
    FlexibilityMeasure,
    MeasureCharacteristics,
    MixedPolicy,
    ProductFlexibility,
    RelativeAreaFlexibility,
    SeriesFlexibility,
    TimeFlexibility,
    VectorFlexibility,
    WeightedFlexibility,
    absolute_area_flexibility,
    assignment_flexibility,
    characteristics_table,
    compare_sets,
    energy_flexibility,
    evaluate_set,
    format_characteristics_table,
    get_measure,
    measure_keys,
    product_flexibility,
    relative_area_flexibility,
    series_flexibility,
    time_flexibility,
    vector_flexibility,
    vector_flexibility_norm,
)
from .server import (
    Gateway,
    GatewayClient,
    GatewayConfig,
    GatewayServer,
    SessionRegistry,
    serve,
)
from .service import (
    AggregateRequest,
    AggregateResult,
    EvaluateRequest,
    EvaluateResult,
    FlexSession,
    RequestStats,
    ScheduleRequest,
    ScheduleResult,
    SessionConfig,
    StreamRequest,
    StreamResult,
    TradeRequest,
    TradeResult,
)
from .stream import (
    EngineSnapshot,
    EventLog,
    OfferArrived,
    OfferAssigned,
    OfferExpired,
    StreamingEngine,
    Tick,
    population_events,
)

__version__ = "2.1.0"

__all__ = [
    "__version__",
    # service API (the recommended entry point)
    "FlexSession",
    "SessionConfig",
    "EvaluateRequest",
    "AggregateRequest",
    "ScheduleRequest",
    "TradeRequest",
    "StreamRequest",
    "EvaluateResult",
    "AggregateResult",
    "ScheduleResult",
    "TradeResult",
    "StreamResult",
    "RequestStats",
    # multi-tenant gateway
    "serve",
    "Gateway",
    "GatewayServer",
    "GatewayConfig",
    "GatewayClient",
    "SessionRegistry",
    # compute backends
    "NUMPY_AVAILABLE",
    "available_backends",
    "get_backend",
    "use_backend",
    # durability
    "SessionPersister",
    "RecoveryStats",
    "WriteAheadLog",
    "SnapshotStore",
    # distributed shard execution
    "ClusterSpec",
    "LocalCluster",
    "RemoteShardExecutor",
    # fault injection / chaos testing
    "FaultPlan",
    "FaultRule",
    "FaultInjected",
    # core model
    "TimeSeries",
    "EnergySlice",
    "FlexOffer",
    "FlexOfferKind",
    "Assignment",
    "count_assignments",
    "enumerate_assignments",
    "series_area",
    "flexoffer_area",
    "flexoffer_area_size",
    # errors
    "FlexError",
    "InvalidFlexOfferError",
    "InvalidAssignmentError",
    "InvalidSliceError",
    # measures
    "FlexibilityMeasure",
    "MeasureCharacteristics",
    "TimeFlexibility",
    "EnergyFlexibility",
    "ProductFlexibility",
    "VectorFlexibility",
    "SeriesFlexibility",
    "AssignmentFlexibility",
    "AbsoluteAreaFlexibility",
    "RelativeAreaFlexibility",
    "WeightedFlexibility",
    "MixedPolicy",
    "time_flexibility",
    "energy_flexibility",
    "product_flexibility",
    "vector_flexibility",
    "vector_flexibility_norm",
    "series_flexibility",
    "assignment_flexibility",
    "absolute_area_flexibility",
    "relative_area_flexibility",
    "get_measure",
    "measure_keys",
    "evaluate_set",
    "compare_sets",
    "characteristics_table",
    "format_characteristics_table",
    # streaming engine
    "StreamingEngine",
    "EngineSnapshot",
    "EventLog",
    "OfferArrived",
    "OfferExpired",
    "OfferAssigned",
    "Tick",
    "population_events",
]
