"""Reference profiles: renewable production and spot prices.

The experiments need exogenous signals that the paper's setting takes from
the real world — forecast wind production that schedules should follow and
hourly spot prices that the market settlement uses.  Both are generated
synthetically here from seeded random generators so every experiment is
reproducible offline (see the substitution notes in DESIGN.md).
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from ..core.errors import WorkloadError
from ..core.timeseries import TimeSeries

__all__ = [
    "wind_production_profile",
    "solar_production_profile",
    "baseline_demand_profile",
    "spot_price_profile",
]


def _check_horizon(horizon: int) -> None:
    if horizon < 1:
        raise WorkloadError(f"horizon must be >= 1, got {horizon}")


def wind_production_profile(
    horizon: int,
    peak: int = 20,
    seed: int = 0,
    gustiness: float = 0.35,
    start: int = 0,
) -> TimeSeries:
    """A synthetic wind-production profile (positive = available supply).

    The profile is a slowly drifting base level with random gusts, the shape
    the TotalFlex use case cares about ("wind production will increase at
    that time", Section 1).

    Parameters
    ----------
    horizon:
        Number of time units.
    peak:
        Approximate maximum production per time unit.
    seed:
        Seed of the random generator.
    gustiness:
        Relative amplitude of the random gust component (0 = smooth).
    start:
        Absolute time of the first value.
    """
    _check_horizon(horizon)
    rng = random.Random(seed)
    values = []
    base = peak * 0.5
    for index in range(horizon):
        drift = peak * 0.3 * math.sin(2 * math.pi * index / max(horizon, 1))
        gust = rng.uniform(-gustiness, gustiness) * peak
        value = max(0, int(round(base + drift + gust)))
        values.append(min(value, peak))
    return TimeSeries(start, tuple(values))


def solar_production_profile(
    horizon: int, peak: int = 10, sunrise: int = 6, sunset: int = 20, start: int = 0
) -> TimeSeries:
    """A deterministic bell-shaped solar profile over a day-long horizon."""
    _check_horizon(horizon)
    if sunset <= sunrise:
        raise WorkloadError("sunset must come after sunrise")
    values = []
    for index in range(horizon):
        hour = (start + index) % 24
        if sunrise <= hour <= sunset:
            phase = (hour - sunrise) / (sunset - sunrise)
            values.append(int(round(peak * math.sin(math.pi * phase))))
        else:
            values.append(0)
    return TimeSeries(start, tuple(values))


def baseline_demand_profile(
    horizon: int, base: int = 8, evening_peak: int = 6, start: int = 0
) -> TimeSeries:
    """A household baseline demand profile with a morning and an evening peak."""
    _check_horizon(horizon)
    values = []
    for index in range(horizon):
        hour = (start + index) % 24
        morning = evening_peak * 0.5 * math.exp(-((hour - 8) ** 2) / 8.0)
        evening = evening_peak * math.exp(-((hour - 19) ** 2) / 8.0)
        values.append(int(round(base + morning + evening)))
    return TimeSeries(start, tuple(values))


def spot_price_profile(
    horizon: int,
    base_price: float = 30.0,
    amplitude: float = 15.0,
    seed: int = 0,
    start: int = 0,
) -> list[float]:
    """Synthetic hourly spot prices (currency per energy unit).

    Prices follow the daily demand shape (cheap at night, expensive in the
    evening peak) with mild random noise; the market settlement and the
    flex-offer valuation code consume this list positionally from ``start``.
    """
    _check_horizon(horizon)
    rng = random.Random(seed)
    prices = []
    for index in range(horizon):
        hour = (start + index) % 24
        daily = amplitude * math.exp(-((hour - 19) ** 2) / 18.0)
        night_discount = -amplitude * 0.5 * math.exp(-((hour - 3) ** 2) / 10.0)
        noise = rng.uniform(-0.05, 0.05) * base_price
        prices.append(round(base_price + daily + night_discount + noise, 2))
    return prices
