"""The worked examples of the paper as ready-made fixtures.

Every flex-offer drawn in Figures 1–7 of the paper, plus the auxiliary
flex-offers of Examples 11–13, is reproduced here verbatim so that tests,
benchmarks and the EXPERIMENTS.md index can refer to them by name.  The
expected measure values reported in the paper's examples are collected in
:data:`PAPER_EXPECTATIONS` (with notes where the paper's own numbers are
internally inconsistent — see EXPERIMENTS.md).
"""

from __future__ import annotations

from ..core.flexoffer import FlexOffer

__all__ = [
    "figure1_flexoffer",
    "figure2_flexoffer",
    "figure3_flexoffer",
    "figure5_flexoffer",
    "figure6_flexoffer",
    "figure7_flexoffer",
    "example11_zero_energy_flexoffer",
    "example11_small_flexoffer",
    "example11_large_flexoffer",
    "example13_wide_time_flexoffer",
    "ev_use_case_flexoffer",
    "all_paper_flexoffers",
    "PAPER_EXPECTATIONS",
]


def figure1_flexoffer() -> FlexOffer:
    """Figure 1: ``f = ([1, 6], ⟨[1, 3], [2, 4], [0, 5], [0, 3]⟩)``.

    Used by Examples 1–4 (tf = 5, ef = 12, product = 60).
    """
    return FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)], name="paper-fig1")


def figure2_flexoffer() -> FlexOffer:
    """Figure 2 / Example 5: ``f1 = ([0, 1], ⟨[0, 1]⟩)`` with cmin=0, cmax=1."""
    return FlexOffer(0, 1, [(0, 1)], 0, 1, name="paper-fig2-f1")


def figure3_flexoffer() -> FlexOffer:
    """Figure 3 / Examples 6 and 14: ``f2 = ([0, 2], ⟨[0, 2]⟩)`` (9 assignments)."""
    return FlexOffer(0, 2, [(0, 2)], name="paper-fig3-f2")


def figure5_flexoffer() -> FlexOffer:
    """Figure 5 / Examples 8 and 10: ``f4 = ([0, 4], ⟨[2, 2]⟩)`` with cmin=cmax=2."""
    return FlexOffer(0, 4, [(2, 2)], 2, 2, name="paper-fig5-f4")


def figure6_flexoffer() -> FlexOffer:
    """Figure 6 / Examples 9 and 10: ``f5 = ([0, 4], ⟨[1, 1], [2, 2]⟩)`` with cmin=cmax=3."""
    return FlexOffer(0, 4, [(1, 1), (2, 2)], 3, 3, name="paper-fig6-f5")


def figure7_flexoffer() -> FlexOffer:
    """Figure 7 / Examples 14 and 15: the mixed flex-offer ``f6``.

    The paper writes its profile as ``⟨[−1, 2], [−1, −4], [−3, 1]⟩`` with
    ``cmin = −8`` and ``cmax = 2``; the second slice is printed with its
    bounds swapped (a range must satisfy amin ≤ amax), so the intended slice
    is ``[−4, −1]`` — which is also the only reading consistent with the
    stated cmin/cmax and with the 240-assignment count of Example 14.
    """
    return FlexOffer(0, 2, [(-1, 2), (-4, -1), (-3, 1)], -8, 2, name="paper-fig7-f6")


def example11_zero_energy_flexoffer() -> FlexOffer:
    """Example 11: ``fx = ([2, 8], ⟨[5, 5]⟩)`` — time-flexible, energy-inflexible."""
    return FlexOffer(2, 8, [(5, 5)], name="paper-ex11-zero-ef")


def example11_small_flexoffer() -> FlexOffer:
    """Example 11/12: ``fx = ([1, 3], ⟨[1, 5]⟩)`` — the small flex-offer."""
    return FlexOffer(1, 3, [(1, 5)], name="paper-ex11-small")


def example11_large_flexoffer() -> FlexOffer:
    """Example 11/12: ``fy = ([1, 3], ⟨[101, 105]⟩)`` — 100× larger energy need."""
    return FlexOffer(1, 3, [(101, 105)], name="paper-ex11-large")


def example13_wide_time_flexoffer() -> FlexOffer:
    """Example 13: ``f1' = ([0, 10], ⟨[0, 1]⟩)`` — 10× the time flexibility of f1."""
    return FlexOffer(0, 10, [(0, 1)], 0, 1, name="paper-ex13-f1-prime")


def ev_use_case_flexoffer(energy_unit_per_percent: int = 1) -> FlexOffer:
    """The electric-vehicle use case of Section 1 as a flex-offer.

    The EV is plugged in at 23:00 (time unit 23), needs 3 hours of charging,
    must start by 3:00 the latest (time unit 27 on a continued axis), and the
    owner accepts any state of charge between 60 % and 100 %.  Each slice can
    deliver up to a third of the full charge; the total constraints encode the
    60–100 % satisfaction range.

    ``energy_unit_per_percent`` scales the integer energy units (Section 2
    lets callers choose the granularity by multiplying with a coefficient).
    """
    full_charge = 100 * energy_unit_per_percent
    per_slice_max = full_charge // 3 + (1 if full_charge % 3 else 0)
    minimum_charge = 60 * energy_unit_per_percent
    return FlexOffer(
        23,
        27,
        [(0, per_slice_max)] * 3,
        minimum_charge,
        full_charge,
        name="ev-use-case",
    )


def all_paper_flexoffers() -> dict[str, FlexOffer]:
    """Every paper flex-offer keyed by a stable identifier."""
    return {
        "fig1": figure1_flexoffer(),
        "fig2_f1": figure2_flexoffer(),
        "fig3_f2": figure3_flexoffer(),
        "fig5_f4": figure5_flexoffer(),
        "fig6_f5": figure6_flexoffer(),
        "fig7_f6": figure7_flexoffer(),
        "ex11_zero_ef": example11_zero_energy_flexoffer(),
        "ex11_small": example11_small_flexoffer(),
        "ex11_large": example11_large_flexoffer(),
        "ex13_wide_tf": example13_wide_time_flexoffer(),
    }


#: Expected values reported by the paper, keyed by (flex-offer id, quantity).
#: Quantities whose paper value is internally inconsistent carry a note and
#: the value implied by the paper's own definitions (see EXPERIMENTS.md).
PAPER_EXPECTATIONS: dict[str, dict[str, object]] = {
    "fig1": {
        "time_flexibility": 5,
        "energy_flexibility": 12,
        "product_flexibility": 60,
        # Example 4 prints the vector as ⟨5, 10⟩ (norms 15 and 11.180) even
        # though Example 2 derives ef = 12; by Definition 4 the vector is
        # ⟨tf, ef⟩ = ⟨5, 12⟩ with norms 17 and 13.0.
        "vector_per_definition": (5, 12),
        "vector_printed_in_example4": (5, 10),
        "vector_l1_printed": 15.0,
        "vector_l2_printed": 11.180,
    },
    "fig2_f1": {
        "assignment_flexibility": 4,
        "series_difference": {0: 0, 1: 1},
        "series_l1": 1.0,
        "series_l2": 1.0,
    },
    "fig3_f2": {
        "assignment_flexibility": 9,
        "assignments_if_time_inflexible": 3,
        # Example 14 states 2; the Definition 8 formula with ef = 0 gives
        # (2 + 1) · 1 = 3 (see EXPERIMENTS.md).
        "assignments_if_energy_inflexible_printed": 2,
        "assignments_if_energy_inflexible_per_definition": 3,
    },
    "fig4_assignment": {
        "values": (2, 1, 3),
        "start": 1,
        "area_cells": {(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)},
    },
    "fig5_f4": {
        "union_area": 10,
        "absolute_area_flexibility": 8,
        "relative_area_flexibility": 4.0,
    },
    "fig6_f5": {
        # Example 9 prints "10 − 2 = 8"; with cmin = 3 the union area implied
        # by the figure is 11 and 11 − 3 = 8, so the final value matches.
        "union_area": 11,
        "absolute_area_flexibility": 8,
        "relative_area_flexibility": 16.0 / 6.0,
    },
    "fig7_f6": {
        "time_flexibility": 2,
        "energy_flexibility": 10,
        "assignment_flexibility": 240,
        "assignments_if_time_inflexible": 80,
        "assignments_if_energy_inflexible": 3,
        "union_area": 24,
        "absolute_area_flexibility_example15": 32,
        "relative_area_flexibility_example15": 6.4,
    },
    "ex11": {
        "zero_ef_product": 0,
        "small_product": 8,
        "large_product": 8,
        "vector_l1": 6.0,
        "vector_l2": 4.472,
    },
    "ex13": {
        "series_l1": 1.0,
        "series_l2": 1.0,
    },
}
