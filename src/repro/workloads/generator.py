"""Synthetic flex-offer populations.

The benchmarks and the aggregation / scheduling / market experiments need
populations of flex-offers with controllable composition (how many EVs, heat
pumps, wet appliances, refrigerators, PV installations, wind turbines,
vehicle-to-grid batteries) and controllable randomness.  This module builds
such populations from the device models in :mod:`repro.devices`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..core.errors import WorkloadError
from ..core.flexoffer import FlexOffer
from ..devices import (
    Dishwasher,
    ElectricVehicle,
    HeatPump,
    Refrigerator,
    SolarPanel,
    VehicleToGrid,
    WashingMachine,
    WindTurbine,
)
from ..devices.base import DeviceModel

__all__ = ["PopulationSpec", "generate_population", "default_device_mix"]


def default_device_mix() -> dict[str, DeviceModel]:
    """The device models available to the population generator, by key."""
    return {
        "ev": ElectricVehicle(),
        "heat_pump": HeatPump(),
        "dishwasher": Dishwasher(),
        "washing_machine": WashingMachine(),
        "refrigerator": Refrigerator(),
        "solar": SolarPanel(),
        "wind": WindTurbine(),
        "v2g": VehicleToGrid(),
    }


@dataclass(frozen=True)
class PopulationSpec:
    """Specification of a synthetic prosumer population.

    Attributes
    ----------
    counts:
        ``{device_key: number_of_units}`` using the keys of
        :func:`default_device_mix`.
    seed:
        Seed of the random generator driving all stochastic device
        parameters; two populations with the same spec are identical.
    horizon:
        Optional scheduling horizon (time units); device plug-in times are
        folded into ``[0, horizon)`` when given so all flex-offers fit one
        day-like window.
    """

    counts: dict[str, int] = field(default_factory=lambda: {"ev": 10})
    seed: int = 0
    horizon: int = 0

    def __post_init__(self) -> None:
        available = default_device_mix()
        for key, count in self.counts.items():
            if key not in available:
                raise WorkloadError(
                    f"unknown device key {key!r}; available: {sorted(available)}"
                )
            if count < 0:
                raise WorkloadError(f"count for {key!r} must be non-negative")
        if self.horizon < 0:
            raise WorkloadError("horizon must be non-negative")

    @property
    def total(self) -> int:
        """Total number of flex-offers the spec describes."""
        return sum(self.counts.values())


def _fold_into_horizon(flex_offer: FlexOffer, horizon: int) -> FlexOffer:
    """Shift a flex-offer so its whole time window fits inside ``[0, horizon)``."""
    latest_needed = flex_offer.latest_start + flex_offer.duration
    if latest_needed <= horizon:
        return flex_offer
    shift = latest_needed - horizon
    new_earliest = flex_offer.earliest_start - shift
    if new_earliest < 0:
        # The flex-offer is longer than the horizon; pin it at time zero and
        # drop the surplus time flexibility.
        width = min(flex_offer.time_flexibility, max(0, horizon - flex_offer.duration))
        return FlexOffer(
            0, width, flex_offer.slices,
            flex_offer.total_energy_min, flex_offer.total_energy_max, flex_offer.name,
        )
    return flex_offer.shift(-shift)


def generate_population(spec: PopulationSpec) -> list[FlexOffer]:
    """Generate the flex-offer population described by ``spec``.

    Flex-offers are generated device type by device type (sorted by key, so
    the output is independent of dict insertion order) from a single seeded
    random generator.
    """
    rng = random.Random(spec.seed)
    devices = default_device_mix()
    population: list[FlexOffer] = []
    for key in sorted(spec.counts):
        count = spec.counts[key]
        model = devices[key]
        for _ in range(count):
            flex_offer = model.generate(rng)
            if spec.horizon:
                flex_offer = _fold_into_horizon(flex_offer, spec.horizon)
            population.append(flex_offer)
    return population
