"""Named experiment scenarios.

The paper's two application scenarios (aggregation-for-scheduling and
flex-offer trading) plus the scaling sweeps need standard workloads that
tests, examples and benchmarks all share.  Each scenario bundles a flex-offer
population with the reference profiles it is evaluated against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .generator import PopulationSpec, generate_population
from .profiles import spot_price_profile, wind_production_profile

__all__ = ["Scenario", "neighbourhood_scenario", "balancing_scenario", "scaling_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A reproducible experiment workload."""

    #: Human-readable scenario name.
    name: str
    #: The prosumer flex-offers.
    flex_offers: tuple[FlexOffer, ...]
    #: Forecast renewable production the schedule should follow.
    supply: TimeSeries
    #: Hourly spot prices over the same horizon.
    prices: tuple[float, ...]
    #: Scheduling horizon in time units.
    horizon: int

    @property
    def size(self) -> int:
        """Number of flex-offers in the scenario."""
        return len(self.flex_offers)


def neighbourhood_scenario(
    households: int = 20, seed: int = 7, horizon: int = 32
) -> Scenario:
    """A residential neighbourhood: EVs, wet appliances, heat pumps, fridges.

    This is the Scenario 1 workload — many small consumption flex-offers that
    an Aggregator would group and aggregate before scheduling them against
    wind production.
    """
    spec = PopulationSpec(
        counts={
            "ev": households // 2,
            "dishwasher": households // 2,
            "washing_machine": households // 4,
            "heat_pump": households // 4,
            "refrigerator": households // 4,
        },
        seed=seed,
        horizon=horizon,
    )
    flex_offers = tuple(generate_population(spec))
    supply = wind_production_profile(horizon, peak=4 * max(1, households // 4), seed=seed)
    prices = tuple(spot_price_profile(horizon, seed=seed))
    return Scenario("neighbourhood", flex_offers, supply, prices, horizon)


def balancing_scenario(units: int = 16, seed: int = 11, horizon: int = 32) -> Scenario:
    """A balancing portfolio mixing consumption, production and storage.

    This is the Scenario 2 workload used for balance-aware aggregation and
    market trading: consumption flex-offers plus PV, wind and vehicle-to-grid
    units, so aggregates are typically mixed flex-offers.
    """
    spec = PopulationSpec(
        counts={
            "ev": units // 4,
            "heat_pump": units // 4,
            "solar": units // 4,
            "wind": units // 8,
            "v2g": units // 8,
        },
        seed=seed,
        horizon=horizon,
    )
    flex_offers = tuple(generate_population(spec))
    supply = wind_production_profile(horizon, peak=3 * max(1, units // 4), seed=seed)
    prices = tuple(spot_price_profile(horizon, seed=seed))
    return Scenario("balancing", flex_offers, supply, prices, horizon)


def scaling_scenario(size: int, seed: int = 3, horizon: int = 48) -> Scenario:
    """A homogeneous EV fleet of configurable size for scaling sweeps."""
    spec = PopulationSpec(counts={"ev": size}, seed=seed, horizon=horizon)
    flex_offers = tuple(generate_population(spec))
    supply = wind_production_profile(horizon, peak=max(4, size), seed=seed)
    prices = tuple(spot_price_profile(horizon, seed=seed))
    return Scenario(f"scaling-{size}", flex_offers, supply, prices, horizon)
