"""Workloads: paper-example fixtures, synthetic populations, profiles, scenarios."""

from .generator import PopulationSpec, default_device_mix, generate_population
from .paper_examples import (
    PAPER_EXPECTATIONS,
    all_paper_flexoffers,
    ev_use_case_flexoffer,
    example11_large_flexoffer,
    example11_small_flexoffer,
    example11_zero_energy_flexoffer,
    example13_wide_time_flexoffer,
    figure1_flexoffer,
    figure2_flexoffer,
    figure3_flexoffer,
    figure5_flexoffer,
    figure6_flexoffer,
    figure7_flexoffer,
)
from .profiles import (
    baseline_demand_profile,
    solar_production_profile,
    spot_price_profile,
    wind_production_profile,
)
from .scenarios import (
    Scenario,
    balancing_scenario,
    neighbourhood_scenario,
    scaling_scenario,
)

__all__ = [
    # paper fixtures
    "PAPER_EXPECTATIONS",
    "all_paper_flexoffers",
    "ev_use_case_flexoffer",
    "example11_large_flexoffer",
    "example11_small_flexoffer",
    "example11_zero_energy_flexoffer",
    "example13_wide_time_flexoffer",
    "figure1_flexoffer",
    "figure2_flexoffer",
    "figure3_flexoffer",
    "figure5_flexoffer",
    "figure6_flexoffer",
    "figure7_flexoffer",
    # generators
    "PopulationSpec",
    "default_device_mix",
    "generate_population",
    # profiles
    "wind_production_profile",
    "solar_production_profile",
    "baseline_demand_profile",
    "spot_price_profile",
    # scenarios
    "Scenario",
    "neighbourhood_scenario",
    "balancing_scenario",
    "scaling_scenario",
]
