"""Typed, frozen response objects of the service API.

Every :class:`~repro.service.FlexSession` request returns a ``*Result``
carrying the domain payload plus a :class:`RequestStats` block — wall-clock
duration, the backend that served the request, and the session cache's
hit/miss delta — so a service operator can read provenance and cost off
every response instead of instrumenting the internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..aggregation.base import AggregatedFlexOffer
from ..core.flexoffer import FlexOffer
from ..market.trading import Bid
from ..measures.setwise import FlexibilitySetReport
from ..scheduling.base import Schedule

__all__ = [
    "RequestStats",
    "EvaluateResult",
    "AggregateResult",
    "ScheduleResult",
    "TradeResult",
    "StreamResult",
]


@dataclass(frozen=True)
class RequestStats:
    """Provenance and cost of one served request.

    Attributes
    ----------
    kind:
        Request kind (``evaluate`` / ``aggregate`` / ``schedule`` /
        ``trade`` / ``stream``).
    backend:
        Name of the compute backend that served the request.
    duration_s:
        Wall-clock seconds spent inside the session serving it.
    population:
        Number of flex-offers the request operated on.
    cache_hits, cache_misses:
        The session matrix cache's hit/miss delta during the request — a
        warm live matrix shows up as hits here, a cold explicit population
        as misses.
    """

    kind: str
    backend: str
    duration_s: float
    population: int
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class EvaluateResult:
    """Response of an :class:`~repro.service.EvaluateRequest`."""

    report: FlexibilitySetReport
    stats: RequestStats

    @property
    def values(self) -> dict[str, float]:
        """``{measure_key: set_value}`` shorthand into the report."""
        return self.report.values


@dataclass(frozen=True)
class AggregateResult:
    """Response of an :class:`~repro.service.AggregateRequest`."""

    groups: tuple[tuple[FlexOffer, ...], ...]
    aggregates: tuple[AggregatedFlexOffer, ...]
    stats: RequestStats

    @property
    def compression(self) -> float:
        """Members per aggregate (1.0 when nothing aggregated)."""
        if not self.aggregates:
            return 1.0
        members = sum(aggregate.size for aggregate in self.aggregates)
        return members / len(self.aggregates)


@dataclass(frozen=True)
class ScheduleResult:
    """Response of a :class:`~repro.service.ScheduleRequest`."""

    schedule: Schedule
    objective_value: float
    scheduler: str
    stats: RequestStats


@dataclass(frozen=True)
class TradeResult:
    """Response of a :class:`~repro.service.TradeRequest`."""

    accepted: tuple[Bid, ...]
    rejected: tuple[Bid, ...]
    revenue: float
    stats: RequestStats


@dataclass(frozen=True)
class StreamResult:
    """Response of a :class:`~repro.service.StreamRequest`."""

    applied: int
    live: int
    time: Optional[int]
    stats: RequestStats
    engine_stats: dict[str, float] = field(default_factory=dict)
