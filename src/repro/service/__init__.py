"""``repro.service`` — the session-scoped request/response service API.

The recommended entry point to the library: a
:class:`FlexSession` owns a streaming engine, a compute backend and a
matrix cache — all scoped by one :class:`SessionConfig` instead of
process-global env knobs — and serves typed requests
(:class:`EvaluateRequest`, :class:`AggregateRequest`,
:class:`ScheduleRequest`, :class:`TradeRequest`, :class:`StreamRequest`)
as frozen results carrying timings, backend provenance and cache-hit
stats.

>>> from repro.service import FlexSession, SessionConfig
>>> from repro import FlexOffer
>>> with FlexSession(SessionConfig(backend="reference")) as session:
...     _ = session.ingest([FlexOffer(1, 6, [(1, 3), (2, 4)])])
...     session.evaluate().report.values["time"]
5.0
"""

from .config import ServiceError, SessionConfig
from .requests import (
    AggregateRequest,
    EvaluateRequest,
    Request,
    ScheduleRequest,
    StreamRequest,
    TradeRequest,
)
from .results import (
    AggregateResult,
    EvaluateResult,
    RequestStats,
    ScheduleResult,
    StreamResult,
    TradeResult,
)
from .session import FlexSession

__all__ = [
    "ServiceError",
    "SessionConfig",
    "FlexSession",
    # requests
    "Request",
    "EvaluateRequest",
    "AggregateRequest",
    "ScheduleRequest",
    "TradeRequest",
    "StreamRequest",
    # results
    "RequestStats",
    "EvaluateResult",
    "AggregateResult",
    "ScheduleResult",
    "TradeResult",
    "StreamResult",
]
