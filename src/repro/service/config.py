"""Session configuration: the typed replacement for the env-knob sprawl.

Four PRs of organic growth configured the library through process-global
environment variables (``REPRO_BACKEND``, ``REPRO_SHARDS``,
``REPRO_MATRIX_CACHE``, ``REPRO_MATRIX_COMPACT``, …) read at scattered
points — import time, registry bootstrap, matrix construction — which made
it impossible for two differently-tuned workloads to share a process.
:class:`SessionConfig` collapses all of that into one frozen value object
read **once, at construction**: the environment variables survive only as
defaults for fields left at ``None``, so existing deployment recipes keep
working, while two configs in one process are completely independent.

>>> config = SessionConfig(backend="reference", cache_entries=4)
>>> config.backend
'reference'
>>> config.cache_entries
4
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from dataclasses import dataclass, field, fields
from typing import Optional

from ..aggregation.grouping import GroupingParameters
from ..backend.cache import (
    DEFAULT_CAPACITY,
    DEFAULT_CELL_BUDGET,
    ENV_CACHE_VAR,
    ENV_CELL_VAR,
)
from ..backend.dispatch import ENV_VAR, _env_float, _env_int
from ..backend.sharded import (
    DEFAULT_MIN_POPULATION,
    DEFAULT_RETRIES,
    ENV_EXECUTOR,
    ENV_HEDGE_MS,
    ENV_MIN_POPULATION,
    ENV_RETRIES,
    ENV_SHARDS,
)
from ..core.errors import FlexError
from ..faults.plan import FaultPlan

#: Compaction-ratio knob name.  Mirrored from :mod:`repro.backend.matrix`
#: (which imports NumPy at module level and therefore cannot be imported
#: here unconditionally — the config must build on NumPy-free hosts too).
ENV_COMPACT_VAR = "REPRO_MATRIX_COMPACT"

__all__ = ["ServiceError", "SessionConfig"]


class ServiceError(FlexError):
    """Raised on invalid service configurations or requests."""


def _frozen_set(config: "SessionConfig", name: str, value) -> None:
    object.__setattr__(config, name, value)


@dataclass(frozen=True)
class SessionConfig:
    """Everything a :class:`~repro.service.FlexSession` needs, in one value.

    Every ``None`` field resolves — eagerly, in ``__post_init__`` — from
    the corresponding environment variable and then from the library
    default, so the environment is consulted exactly once per config and
    never again for the session's lifetime.  Two sessions built from two
    configs therefore cannot observe each other's knobs, caches or
    backends.

    Parameters
    ----------
    backend:
        Compute-backend name (``reference`` / ``numpy`` / ``sharded`` or
        any registered custom backend).  Default: ``REPRO_BACKEND``, else
        ``numpy`` when available, else ``reference``.
    shards, shard_executor, shard_min_population:
        Sharded-backend tuning, applied only when ``backend="sharded"``.
        Defaults: ``REPRO_SHARDS`` / ``REPRO_SHARD_EXECUTOR`` /
        ``REPRO_SHARD_MIN`` and then the backend's own defaults.
    shard_retries, shard_hedge_ms:
        The sharded backend's self-healing knobs: per-shard retry budget
        for infrastructure failures and the straggler-hedging latency
        threshold in milliseconds (``0`` disables hedging).  Defaults:
        ``REPRO_SHARD_RETRIES`` / ``REPRO_SHARD_HEDGE_MS`` and then the
        backend's own defaults.
    cluster:
        Worker hosts for distributed shard execution — a
        :class:`~repro.cluster.ClusterSpec` or anything its ``from_spec``
        accepts (``"host:port,host:port"``, a spec dict).  Setting it
        implies ``shard_executor="remote"``; a remote executor without it
        reads ``REPRO_CLUSTER``.  Only meaningful with
        ``backend="sharded"``.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` (or its ``spec()``
        dict/JSON) injected into the session's backend and persister for
        chaos testing.  Default: the ``REPRO_FAULTS`` environment
        variable, else ``None`` — no injection, zero overhead.
    cache_entries, cache_cells:
        The session matrix cache's entry capacity and total packed-slice
        budget.  Defaults: ``REPRO_MATRIX_CACHE`` /
        ``REPRO_MATRIX_CACHE_CELLS`` and then the library defaults.
    compact_threshold:
        Live-matrix tombstone ratio triggering compaction.  Default:
        ``REPRO_MATRIX_COMPACT``, else the matrix default (resolved by the
        matrix layer; ``None`` is preserved here when neither is set).
    measures:
        Measure keys the session engine maintains (``None`` = every
        registered measure, like ``evaluate_set``).
    tracked_measures, window_capacity, auto_expire, grouping:
        Forwarded to the session's :class:`~repro.stream.StreamingEngine`.
    window_kernel:
        Which sliding-window kernel backs the tracker's measure windows:
        ``"scalar"`` (pure Python) or ``"array"`` (the NumPy ring buffer).
        Default: ``REPRO_WINDOW_KERNEL``, else ``None`` — the engine then
        asks the session backend's ``measure_window`` hook, so numpy and
        sharded sessions get the array kernel, reference sessions the
        scalar one.  Kernels are conformance-pinned; the knob changes
        cost, never a statistic.
    seed:
        Seed for the session's stochastic defaults (seeded schedulers that
        were not given an explicit seed draw this one).
    persist_dir:
        When set, the session becomes durable: every applied stream event
        is logged to a write-ahead log under this directory, checkpoints
        snapshot the engine, and a new session built over the same
        directory recovers the previous state (see :mod:`repro.persist`).
        ``None`` (the default) keeps the session purely in-memory.
    persist_fsync:
        Whether WAL commits and snapshot writes ``fsync``.  ``False``
        trades the machine-crash guarantee for speed.
    checkpoint_events:
        WAL records accumulated since the last snapshot that trigger an
        automatic checkpoint after a stream request.
    checkpoint_age_s:
        Optional wall-clock age of the last snapshot that also triggers
        one, for quiet sessions trickling single events.
    """

    backend: Optional[str] = None
    shards: Optional[int] = None
    shard_executor: Optional[str] = None
    shard_min_population: Optional[int] = None
    shard_retries: Optional[int] = None
    shard_hedge_ms: Optional[float] = None
    cluster: Optional[object] = None
    fault_plan: Optional[FaultPlan] = None
    cache_entries: Optional[int] = None
    cache_cells: Optional[int] = None
    compact_threshold: Optional[float] = None
    measures: Optional[tuple[str, ...]] = None
    tracked_measures: Optional[tuple[str, ...]] = None
    window_capacity: int = 0
    window_kernel: Optional[str] = None
    auto_expire: bool = False
    grouping: GroupingParameters = field(default_factory=GroupingParameters)
    seed: int = 0
    persist_dir: Optional[str] = None
    persist_fsync: bool = True
    checkpoint_events: int = 1024
    checkpoint_age_s: Optional[float] = None

    def __post_init__(self) -> None:
        from ..backend.dispatch import available_backends

        self._resolve_backend(available_backends())
        self._resolve_sharding()
        self._resolve_cache()
        if self.compact_threshold is None:
            _frozen_set(
                self, "compact_threshold", _env_float(ENV_COMPACT_VAR, 0.0, 1.0)
            )
        elif not 0.0 <= self.compact_threshold <= 1.0:
            raise ServiceError(
                f"compact_threshold must lie in [0, 1], got {self.compact_threshold}"
            )
        for name in ("measures", "tracked_measures"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                if isinstance(value, str) or not isinstance(value, Iterable):
                    raise ServiceError(
                        f"{name} must be an iterable of measure keys, got {value!r}"
                    )
                _frozen_set(self, name, tuple(value))
        if self.window_capacity < 0:
            raise ServiceError(
                f"window_capacity must be >= 0, got {self.window_capacity}"
            )
        self._resolve_window_kernel()
        if self.persist_dir is not None and not isinstance(self.persist_dir, str):
            _frozen_set(self, "persist_dir", str(self.persist_dir))
        if self.checkpoint_events < 1:
            raise ServiceError(
                f"checkpoint_events must be >= 1, got {self.checkpoint_events}"
            )
        if self.checkpoint_age_s is not None and self.checkpoint_age_s <= 0:
            raise ServiceError(
                f"checkpoint_age_s must be positive, got {self.checkpoint_age_s}"
            )

    # ------------------------------------------------------------------ #
    # Field resolution (environment consulted exactly once, here)
    # ------------------------------------------------------------------ #
    def _resolve_backend(self, registered: tuple[str, ...]) -> None:
        backend = self.backend
        if backend is None:
            backend = os.environ.get(ENV_VAR)
        if backend is None:
            backend = "numpy" if "numpy" in registered else "reference"
        if backend not in registered:
            raise ServiceError(
                f"unknown compute backend {backend!r}; available: "
                f"{sorted(registered)}"
            )
        _frozen_set(self, "backend", backend)

    def _resolve_sharding(self) -> None:
        if self.shards is None:
            _frozen_set(
                self, "shards", _env_int(ENV_SHARDS, minimum=1) or (os.cpu_count() or 1)
            )
        elif self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        explicit_executor = self.shard_executor is not None
        if self.shard_executor is None:
            executor = os.environ.get(ENV_EXECUTOR, "thread")
            if executor not in ("thread", "process", "remote"):
                executor = "thread"
            _frozen_set(self, "shard_executor", executor)
        elif self.shard_executor not in ("thread", "process", "remote"):
            raise ServiceError(
                f"shard_executor must be 'thread', 'process' or 'remote', "
                f"got {self.shard_executor!r}"
            )
        self._resolve_cluster(explicit_executor)
        if self.shard_min_population is None:
            value = _env_int(ENV_MIN_POPULATION, minimum=0)
            _frozen_set(
                self,
                "shard_min_population",
                DEFAULT_MIN_POPULATION if value is None else value,
            )
        elif self.shard_min_population < 0:
            raise ServiceError(
                f"shard_min_population must be >= 0, "
                f"got {self.shard_min_population}"
            )
        if self.shard_retries is None:
            value = _env_int(ENV_RETRIES, minimum=0)
            _frozen_set(
                self, "shard_retries", DEFAULT_RETRIES if value is None else value
            )
        elif self.shard_retries < 0:
            raise ServiceError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if self.shard_hedge_ms is None:
            _frozen_set(
                self,
                "shard_hedge_ms",
                _env_float(ENV_HEDGE_MS, 0.0, 3.6e6) or 0.0,
            )
        elif self.shard_hedge_ms < 0:
            raise ServiceError(
                f"shard_hedge_ms must be >= 0, got {self.shard_hedge_ms}"
            )
        self._resolve_fault_plan()

    def _resolve_cluster(self, explicit_executor: bool) -> None:
        """Normalise the cluster field and couple it to the executor kind.

        ``cluster=...`` alone implies ``shard_executor="remote"`` — the
        spec is useless otherwise — while an explicit *local* executor next
        to a cluster is a contradiction and fails fast.  A remote executor
        without a cluster falls back to ``REPRO_CLUSTER``; if that is unset
        too, an explicit choice raises and an environment-driven one
        degrades to ``thread`` like every other malformed knob.
        """
        from ..cluster import ClusterError, ClusterSpec

        if self.cluster is not None:
            try:
                _frozen_set(self, "cluster", ClusterSpec.from_spec(self.cluster))
            except ClusterError as error:
                raise ServiceError(f"invalid cluster: {error}") from error
            if self.shard_executor != "remote":
                if explicit_executor:
                    raise ServiceError(
                        f"cluster= requires shard_executor='remote', "
                        f"got {self.shard_executor!r}"
                    )
                _frozen_set(self, "shard_executor", "remote")
        elif self.shard_executor == "remote":
            cluster = ClusterSpec.from_env()
            if cluster is not None:
                _frozen_set(self, "cluster", cluster)
            elif explicit_executor:
                raise ServiceError(
                    "shard_executor='remote' needs a cluster "
                    "(pass cluster=... or set REPRO_CLUSTER)"
                )
            else:
                from ..backend.dispatch import _warn_ignored_env
                from ..backend.sharded import ENV_EXECUTOR

                _warn_ignored_env(
                    ENV_EXECUTOR, "remote", "'remote' with REPRO_CLUSTER set"
                )
                _frozen_set(self, "shard_executor", "thread")

    def _resolve_fault_plan(self) -> None:
        plan = self.fault_plan
        if plan is None:
            _frozen_set(self, "fault_plan", FaultPlan.from_env())
            return
        if isinstance(plan, FaultPlan):
            return
        try:
            _frozen_set(self, "fault_plan", FaultPlan.from_spec(plan))
        except ValueError as error:
            raise ServiceError(f"invalid fault_plan: {error}") from error

    def _resolve_window_kernel(self) -> None:
        from ..backend.dispatch import _warn_ignored_env
        from ..stream.engine import ENV_WINDOW_KERNEL

        if self.window_kernel is None:
            value = os.environ.get(ENV_WINDOW_KERNEL)
            if value is not None:
                if value in ("scalar", "array"):
                    _frozen_set(self, "window_kernel", value)
                else:
                    _warn_ignored_env(
                        ENV_WINDOW_KERNEL, value, "'scalar' or 'array'"
                    )
        elif self.window_kernel not in ("scalar", "array"):
            raise ServiceError(
                f"window_kernel must be 'scalar' or 'array', "
                f"got {self.window_kernel!r}"
            )

    def _resolve_cache(self) -> None:
        if self.cache_entries is None:
            value = _env_int(ENV_CACHE_VAR, minimum=0)
            _frozen_set(
                self, "cache_entries", DEFAULT_CAPACITY if value is None else value
            )
        elif self.cache_entries < 0:
            raise ServiceError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.cache_cells is None:
            value = _env_int(ENV_CELL_VAR, minimum=0)
            _frozen_set(
                self, "cache_cells", DEFAULT_CELL_BUDGET if value is None else value
            )
        elif self.cache_cells < 0:
            raise ServiceError(f"cache_cells must be >= 0, got {self.cache_cells}")

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, object]:
        """A JSON-ready dictionary (grouping expanded to its two fields)."""
        payload: dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "grouping":
                value = {
                    "earliest_start_tolerance": self.grouping.earliest_start_tolerance,
                    "time_flexibility_tolerance": self.grouping.time_flexibility_tolerance,
                    "max_group_size": self.grouping.max_group_size,
                }
            elif spec.name == "fault_plan":
                value = value.spec() if isinstance(value, FaultPlan) else None
            elif spec.name == "cluster" and value is not None:
                value = value.spec()
            elif isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "SessionConfig":
        """Rebuild a config from :meth:`as_dict` output."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"unknown SessionConfig fields: {unknown}")
        arguments = dict(payload)
        grouping = arguments.get("grouping")
        if isinstance(grouping, dict):
            arguments["grouping"] = GroupingParameters(**grouping)
        for name in ("measures", "tracked_measures"):
            if isinstance(arguments.get(name), list):
                arguments[name] = tuple(arguments[name])
        return cls(**arguments)
