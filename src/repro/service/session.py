"""The :class:`FlexSession` façade: one session-scoped service entry point.

Before PR 5 every workload wired :class:`~repro.stream.StreamingEngine`,
schedulers, pricers and compute backends together by hand, in a different
order each time, against process-global state (the default backend, the
shared matrix cache, the env knobs).  A :class:`FlexSession` owns all of
that per instance:

* a :class:`~repro.service.SessionConfig` — the env knobs, read once;
* a private :class:`~repro.backend.cache.MatrixCache` with the config's
  retention budgets;
* a private compute backend routed through that cache (for ``numpy`` /
  ``sharded``; the stateless ``reference`` backend is shared);
* one :class:`~repro.stream.StreamingEngine` maintaining the live
  population and its packed matrix in O(Δ) per event.

Requests (:class:`~repro.service.EvaluateRequest`, …) go in; frozen
``*Result`` objects with timings, backend provenance and cache-hit stats
come out.  Every request runs inside a
:func:`~repro.backend.use_backend` activation of the session backend, so
all downstream bulk calls — ``evaluate_set``, the batch assignment
helpers, ``of_generation``, bulk pricing — dispatch to the session's
backend and cache without any global mutation.  Two sessions with
different configs therefore coexist in one process and produce results
bit-identical to each running alone, which the old process-global knobs
made impossible.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Optional, Union

from ..aggregation.alignment import aggregate_all
from ..aggregation.base import AggregatedFlexOffer
from ..aggregation.grouping import group_by_grid
from ..backend.cache import MatrixCache
from ..backend.dispatch import ComputeBackend, get_backend, use_backend
from ..core.flexoffer import FlexOffer
from ..market.trading import FlexibilityPricer, TradingSession
from ..measures.setwise import evaluate_set
from ..scheduling.evolutionary import EvolutionaryScheduler
from ..scheduling.greedy import EarliestStartScheduler, GreedyImbalanceScheduler
from ..scheduling.objective import ImbalanceObjective
from ..scheduling.stochastic import HillClimbingScheduler
from ..stream.engine import StreamingEngine
from ..stream.events import OfferArrived, Tick
from ..stream.replay import population_events
from .config import ServiceError, SessionConfig
from .requests import (
    AggregateRequest,
    EvaluateRequest,
    Request,
    ScheduleRequest,
    StreamRequest,
    TradeRequest,
)
from .results import (
    AggregateResult,
    EvaluateResult,
    RequestStats,
    ScheduleResult,
    StreamResult,
    TradeResult,
)

__all__ = ["FlexSession"]

#: Scheduler names accepted by :class:`ScheduleRequest`:
#: ``name -> (class, takes a seed, takes an objective)``.  The session
#: injects its configured seed and the request's objective only where the
#: constructor accepts them.
_SCHEDULERS = {
    "earliest": (EarliestStartScheduler, False, False),
    "greedy": (GreedyImbalanceScheduler, False, True),
    "hill-climbing": (HillClimbingScheduler, True, True),
    "evolutionary": (EvolutionaryScheduler, True, True),
}


class FlexSession:
    """Session-scoped request/response façade over the whole library.

    Parameters
    ----------
    config:
        The session's :class:`SessionConfig`; ``None`` builds one from the
        environment defaults.  Keyword arguments are accepted as a
        shorthand for ``FlexSession(SessionConfig(**kwargs))``.

    Usage::

        with FlexSession(backend="numpy") as session:
            session.ingest(population)
            report = session.evaluate().report
            schedule = session.schedule(
                ScheduleRequest("hill-climbing", reference=wind)
            ).schedule
    """

    def __init__(self, config: Optional[SessionConfig] = None, **overrides) -> None:
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            raise ServiceError(
                "pass either a SessionConfig or keyword overrides, not both"
            )
        self.config = config
        self.cache = MatrixCache(
            capacity=config.cache_entries, cell_budget=config.cache_cells
        )
        #: Whether close() may tear the backend down: only backends this
        #: session constructed — never a shared registered instance.
        self._owns_backend = False
        self._backend = self._build_backend(config)
        self.engine = StreamingEngine(
            parameters=config.grouping,
            measures=config.measures,
            window_capacity=config.window_capacity,
            auto_expire=config.auto_expire,
            tracked_measures=config.tracked_measures,
            cache=self.cache,
            backend=self._backend,
            compact_threshold=config.compact_threshold,
            window_kernel=config.window_kernel,
        )
        self.requests_served = 0
        self._closed = False
        #: :class:`~repro.persist.RecoveryStats` when this session was
        #: rebuilt from a persisted directory, else ``None``.
        self.recovery = None
        self._persister = None
        if config.persist_dir is not None:
            from ..persist import SessionPersister, save_config

            self._persister = SessionPersister(
                config.persist_dir,
                fsync=config.persist_fsync,
                checkpoint_events=config.checkpoint_events,
                checkpoint_age_s=config.checkpoint_age_s,
                faults=config.fault_plan,
            )
            save_config(config.persist_dir, config.as_dict())
            if self._persister.has_state():
                with use_backend(self._backend):
                    stats, extra = self._persister.recover(self.engine)
                self.recovery = stats
                served = extra.get("requests_served")
                if isinstance(served, int):
                    self.requests_served = served

    # ------------------------------------------------------------------ #
    # Construction / lifecycle
    # ------------------------------------------------------------------ #
    def _build_backend(self, config: SessionConfig) -> ComputeBackend:
        """The session's private backend, routed through the session cache.

        ``numpy`` and ``sharded`` get fresh instances bound to
        :attr:`cache`; any other name (``reference``, custom registrations)
        resolves to the registered instance, which the session treats as
        borrowed — reads only, never :meth:`close`.
        """
        if config.backend == "numpy":
            from ..backend.numpy_backend import NumpyBackend

            self._owns_backend = True
            return NumpyBackend(cache=self.cache)
        if config.backend == "sharded":
            from ..backend.dispatch import available_backends
            from ..backend.sharded import ShardedBackend

            inner: Optional[Union[str, ComputeBackend]] = None
            if "numpy" in available_backends():
                from ..backend.numpy_backend import NumpyBackend

                # Session-cached inner instance for every in-process code
                # path (delegation and thread-pool workers); process-pool
                # workers resolve it by name in their own memory spaces.
                inner = NumpyBackend(cache=self.cache)
            self._owns_backend = True
            return ShardedBackend(
                shards=config.shards,
                executor=config.shard_executor,
                min_population=config.shard_min_population,
                inner=inner,
                cache=self.cache,
                retries=config.shard_retries,
                hedge_ms=config.shard_hedge_ms,
                faults=config.fault_plan,
                cluster=config.cluster,
            )
        return get_backend(config.backend)

    @property
    def backend_name(self) -> str:
        """Name of the session's compute backend (response provenance)."""
        return self._backend.name

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran."""
        return self._closed

    def close(self) -> None:
        """Release session resources (the sharded pool, the cache).

        Idempotent.  The session must not serve further requests after
        closing.
        """
        if self._closed:
            return
        self._closed = True
        if self._persister is not None:
            with use_backend(self._backend):
                self._persister.close(self.engine, self._persist_extra())
        close = getattr(self._backend, "close", None)
        if self._owns_backend and callable(close):
            close()
        self.cache.clear()

    def __enter__(self) -> "FlexSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @contextmanager
    def activate(self):
        """Activate the session backend for arbitrary library calls.

        Everything inside the ``with`` block — ``evaluate_set``, batch
        assignment helpers, schedulers called directly — dispatches through
        the session's backend and cache, exactly like a served request.
        Yields the session.
        """
        self._check_open()
        with use_backend(self._backend):
            yield self

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("the session is closed")

    @contextmanager
    def _serve(self, kind: str, population: int):
        """Shared request plumbing: activation, timing, cache deltas."""
        self._check_open()
        hits, misses = self.cache.hits, self.cache.misses
        started = time.perf_counter()

        def finish(count: Optional[int] = None) -> RequestStats:
            return RequestStats(
                kind=kind,
                backend=self.backend_name,
                duration_s=time.perf_counter() - started,
                population=population if count is None else count,
                cache_hits=self.cache.hits - hits,
                cache_misses=self.cache.misses - misses,
            )

        with use_backend(self._backend):
            yield finish
        self.requests_served += 1

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def submit(
        self, request: Request
    ) -> Union[
        EvaluateResult, AggregateResult, ScheduleResult, TradeResult, StreamResult
    ]:
        """Serve any request (the io-driven entry point)."""
        if isinstance(request, EvaluateRequest):
            return self.evaluate(request)
        if isinstance(request, AggregateRequest):
            return self.aggregate(request)
        if isinstance(request, ScheduleRequest):
            return self.schedule(request)
        if isinstance(request, TradeRequest):
            return self.trade(request)
        if isinstance(request, StreamRequest):
            return self.stream(request)
        raise ServiceError(f"not a service request: {request!r}")

    def evaluate(self, request: Optional[EvaluateRequest] = None) -> EvaluateResult:
        """Set-wise flexibility of the live (or an explicit) population."""
        request = request if request is not None else EvaluateRequest()
        if request.offers is None:
            offers = self.engine.live_offers()
            self.engine.live_matrix()  # publish → the backend hits the cache
        else:
            offers = list(request.offers)
        measures = (
            request.measures
            if request.measures is not None
            else self.engine.measures
        )
        with self._serve("evaluate", len(offers)) as finish:
            report = evaluate_set(offers, measures, request.skip_unsupported)
            return EvaluateResult(report=report, stats=finish())

    def aggregate(self, request: Optional[AggregateRequest] = None) -> AggregateResult:
        """Grid-group and aggregate the live (or an explicit) population."""
        request = request if request is not None else AggregateRequest()
        if request.offers is None:
            with self._serve("aggregate", len(self.engine)) as finish:
                groups = tuple(tuple(group) for group in self.engine.groups())
                aggregates = tuple(self.engine.aggregates(request.prefix))
                return AggregateResult(
                    groups=groups, aggregates=aggregates, stats=finish()
                )
        offers = list(request.offers)
        with self._serve("aggregate", len(offers)) as finish:
            groups = tuple(
                tuple(group)
                for group in group_by_grid(offers, self.config.grouping)
            )
            aggregates = tuple(aggregate_all(groups, prefix=request.prefix))
            return AggregateResult(
                groups=groups, aggregates=aggregates, stats=finish()
            )

    def schedule(self, request: Optional[ScheduleRequest] = None) -> ScheduleResult:
        """Schedule the live (or an explicit) population."""
        request = request if request is not None else ScheduleRequest()
        try:
            scheduler_class, seeded, takes_objective = _SCHEDULERS[request.scheduler]
        except KeyError:
            raise ServiceError(
                f"unknown scheduler {request.scheduler!r}; "
                f"available: {sorted(_SCHEDULERS)}"
            ) from None
        options = dict(request.options)
        objective = ImbalanceObjective(request.metric, request.reference)
        if takes_objective:
            objective = options.setdefault("objective", objective)
        if seeded:
            options.setdefault("seed", self.config.seed)
        # Score with the objective the scheduler actually optimises: a
        # caller-supplied options["objective"] wins inside the scheduler,
        # and an explicit request reference overrides its reference there
        # (the Scheduler.schedule contract) — mirror both here so
        # ``objective_value`` always measures the optimised objective.
        if request.reference is not None:
            objective = ImbalanceObjective(objective.metric, request.reference)
        scheduler = scheduler_class(**options)
        offers = (
            self.engine.live_offers()
            if request.offers is None
            else list(request.offers)
        )
        if request.offers is None:
            self.engine.live_matrix()
        with self._serve("schedule", len(offers)) as finish:
            schedule = scheduler.schedule(offers, request.reference)
            value = objective.of_schedule(schedule) if len(schedule) else 0.0
            return ScheduleResult(
                schedule=schedule,
                objective_value=value,
                scheduler=request.scheduler,
                stats=finish(),
            )

    def trade(self, request: Optional[TradeRequest] = None) -> TradeResult:
        """Price and clear a book of lots (live aggregates by default)."""
        request = request if request is not None else TradeRequest()
        pricer = FlexibilityPricer(
            measure=request.measure,
            energy_price=request.energy_price,
            premium_per_unit=request.premium_per_unit,
        )
        market = TradingSession(pricer, budget=request.budget)
        with self._serve("trade", 0) as finish:
            if request.lots is None:
                lots: list[Union[FlexOffer, AggregatedFlexOffer]] = list(
                    self.engine.aggregates()
                )
            else:
                lots = list(request.lots)
            accepted, rejected = market.clear(lots)
            revenue = float(sum(bid.total_price for bid in accepted))
            return TradeResult(
                accepted=tuple(accepted),
                rejected=tuple(rejected),
                revenue=revenue,
                stats=finish(len(lots)),
            )

    def stream(self, request: Optional[StreamRequest] = None) -> StreamResult:
        """Apply a batch of events to the session engine.

        On a durable session every **applied** event is appended to the
        write-ahead log (log-after-apply: a mid-batch failure logs exactly
        the prefix that mutated the engine), the log commits once per
        request, and a checkpoint follows when the configured size or age
        policy fires.
        """
        request = request if request is not None else StreamRequest()
        with self._serve("stream", len(request.events)) as finish:
            try:
                if request.bulk and request.events and all(
                    isinstance(event, OfferArrived) for event in request.events
                ):
                    # bulk_arrive is bit-identical to applying the
                    # arrivals one by one, so replaying the flat WAL
                    # reproduces the bulk path exactly.
                    self.engine.bulk_arrive(request.events)
                    if self._persister is not None:
                        for event in request.events:
                            self._persister.log_event(event)
                else:
                    for event in request.events:
                        self.engine.apply(event)
                        if self._persister is not None:
                            self._persister.log_event(event)
            finally:
                if self._persister is not None:
                    self._persister.commit()
            result = StreamResult(
                applied=len(request.events),
                live=len(self.engine),
                time=self.engine.time,
                stats=finish(),
                engine_stats=self.engine.stats.as_dict(),
            )
        if self._persister is not None:
            self._persister.maybe_checkpoint(self.engine, self._persist_extra())
        return result

    # ------------------------------------------------------------------ #
    # Conveniences
    # ------------------------------------------------------------------ #
    def ingest(self, flex_offers, bulk: bool = True) -> StreamResult:
        """Stream a batch population in (ids via ``offer_identifier``).

        The successor of the removed module-level ``replay_population``:
        same ids, same final engine state, but the engine, backend and
        cache are the session's own.  ``bulk=True`` batches the per-offer
        measure evaluation through the session backend.
        """
        events = tuple(
            population_events(list(flex_offers), start_index=self.engine.stats.arrived)
        )
        return self.stream(StreamRequest(events=events, bulk=bulk))

    def tick(self, time_value: int) -> StreamResult:
        """Advance the session clock (auto-expiry + window sampling)."""
        return self.stream(StreamRequest(events=(Tick(time_value),)))

    def report(self):
        """Shorthand: the live population's :class:`FlexibilitySetReport`."""
        return self.evaluate().report

    def checkpoint(self) -> dict[str, object]:
        """Snapshot the durable session now; returns the checkpoint stats.

        Raises :class:`ServiceError` on a session without a
        ``persist_dir`` — there is nothing to checkpoint to.
        """
        self._check_open()
        if self._persister is None:
            raise ServiceError("the session has no persist_dir configured")
        with use_backend(self._backend):
            return self._persister.checkpoint(self.engine, self._persist_extra())

    def _persist_extra(self) -> dict[str, object]:
        """Session bookkeeping stored alongside the engine snapshot."""
        return {"requests_served": self.requests_served}

    def snapshot(self, prefix: str = "aggregate"):
        """A batch-equivalent :class:`~repro.stream.EngineSnapshot`."""
        self._check_open()
        with use_backend(self._backend):
            return self.engine.snapshot(prefix)

    def stats(self) -> dict[str, object]:
        """Session-level counters: requests, engine events, cache health."""
        payload: dict[str, object] = {
            "backend": self.backend_name,
            "requests_served": self.requests_served,
            "live": len(self.engine),
            "engine": self.engine.stats.as_dict(),
            "cache": self.cache.stats(),
            "closed": self._closed,
            "window_kernel": self.engine.window_kernel,
        }
        if self.engine.tracker is not None:
            payload["windows"] = self.engine.tracker.summary()
        resilience = getattr(self._backend, "resilience_stats", None)
        if callable(resilience):
            payload["resilience"] = resilience()
        cluster_health = getattr(self._backend, "cluster_health", None)
        if callable(cluster_health):
            health = cluster_health()
            if health is not None:
                payload["cluster"] = health
        if self.config.fault_plan is not None:
            payload["faults"] = self.config.fault_plan.stats()
        if self._persister is not None:
            payload["persistence"] = self._persister.stats()
        if self.recovery is not None:
            payload["recovery"] = self.recovery.as_dict()
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{len(self.engine)} live"
        return (
            f"FlexSession(backend={self.backend_name!r}, {state}, "
            f"{self.requests_served} requests)"
        )
