"""Typed request objects of the service API.

Each request names one unit of work a :class:`~repro.service.FlexSession`
can serve — measure evaluation, aggregation, scheduling, market clearing,
stream ingestion — as a frozen value object, so requests can be logged,
serialised over :mod:`repro.io` and replayed byte-for-byte.  A request
never carries session state: the session supplies the live population, the
backend and the cache; the request only says *what* to do with them.

``offers``/``lots`` left at ``None`` mean "the session's live population"
— the common service shape, where the population streamed in through
:class:`StreamRequest` and every later request reuses the live packed
matrix.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Optional, Union

from ..aggregation.base import AggregatedFlexOffer
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from ..stream.events import StreamEvent
from .config import ServiceError

__all__ = [
    "EvaluateRequest",
    "AggregateRequest",
    "ScheduleRequest",
    "TradeRequest",
    "StreamRequest",
    "Request",
]


def _offers_tuple(value, name: str):
    """Normalise an optional offer iterable to a tuple (or ``None``)."""
    if value is None or isinstance(value, tuple):
        return value
    if isinstance(value, Iterable):
        return tuple(value)
    raise ServiceError(f"{name} must be an iterable of flex-offers, got {value!r}")


@dataclass(frozen=True)
class EvaluateRequest:
    """Evaluate set-wise flexibility measures.

    Parameters
    ----------
    measures:
        Measure keys to evaluate; ``None`` uses the session's configured
        measures.
    offers:
        Explicit population; ``None`` evaluates the session's live
        population (reusing its published packed matrix).
    skip_unsupported:
        Exactly :func:`repro.measures.evaluate_set`'s semantics.
    """

    measures: Optional[tuple[str, ...]] = None
    offers: Optional[tuple[FlexOffer, ...]] = None
    skip_unsupported: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "offers", _offers_tuple(self.offers, "offers"))
        if self.measures is not None and not isinstance(self.measures, tuple):
            object.__setattr__(self, "measures", tuple(self.measures))


@dataclass(frozen=True)
class AggregateRequest:
    """Group and aggregate a population on the session's grouping grid.

    ``offers=None`` aggregates the live population through the engine's
    incrementally maintained aggregates; an explicit population runs the
    batch pipeline under the session backend.
    """

    offers: Optional[tuple[FlexOffer, ...]] = None
    prefix: str = "aggregate"

    def __post_init__(self) -> None:
        object.__setattr__(self, "offers", _offers_tuple(self.offers, "offers"))


@dataclass(frozen=True)
class ScheduleRequest:
    """Schedule a population with one of the library's schedulers.

    Parameters
    ----------
    scheduler:
        ``"earliest"``, ``"greedy"``, ``"hill-climbing"`` or
        ``"evolutionary"``.
    offers:
        Explicit population; ``None`` schedules the live population.
    reference:
        Supply profile to track (overrides the objective's own reference).
    metric:
        Imbalance metric, ``"absolute"`` or ``"squared"``.
    options:
        Extra keyword arguments for the scheduler's constructor
        (``iterations=...``, ``population_size=...``, ...).  Seeded
        schedulers default their ``seed`` to the session's configured seed
        unless one is given here.
    """

    scheduler: str = "greedy"
    offers: Optional[tuple[FlexOffer, ...]] = None
    reference: Optional[TimeSeries] = None
    metric: str = "absolute"
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "offers", _offers_tuple(self.offers, "offers"))
        if self.metric not in ("absolute", "squared"):
            raise ServiceError(f"unknown imbalance metric {self.metric!r}")
        if not isinstance(self.options, MappingProxyType):
            object.__setattr__(
                self, "options", MappingProxyType(dict(self.options))
            )


@dataclass(frozen=True)
class TradeRequest:
    """Price and clear a book of lots in one market session.

    ``lots=None`` offers the session's live aggregates (the Aggregator
    shape: aggregate the book, then sell the lots).  Pricing parameters
    mirror :class:`repro.market.FlexibilityPricer`.
    """

    lots: Optional[tuple[Union[FlexOffer, AggregatedFlexOffer], ...]] = None
    measure: str = "vector"
    energy_price: float = 30.0
    premium_per_unit: float = 2.0
    budget: float = float("inf")

    def __post_init__(self) -> None:
        object.__setattr__(self, "lots", _offers_tuple(self.lots, "lots"))


@dataclass(frozen=True)
class StreamRequest:
    """Apply a batch of stream events to the session's engine.

    With ``bulk=True`` and an all-arrival batch, the arrivals are ingested
    through :meth:`~repro.stream.StreamingEngine.bulk_arrive` (one
    vectorized measure pass); any other event mix is applied in order, one
    event at a time — identical final state either way.
    """

    events: tuple[StreamEvent, ...] = ()
    bulk: bool = False

    def __post_init__(self) -> None:
        events = self.events
        if not isinstance(events, tuple):
            events = tuple(events)
            object.__setattr__(self, "events", events)
        for event in events:
            if not isinstance(event, StreamEvent):
                raise ServiceError(f"not a stream event: {event!r}")


#: Any request the session can serve (the :meth:`FlexSession.submit` union).
Request = Union[
    EvaluateRequest, AggregateRequest, ScheduleRequest, TradeRequest, StreamRequest
]
