"""Composite (weighted) flexibility measures.

Section 4 of the paper observes that no single measure has all the desirable
characteristics and suggests *weighting* as a way of "combining different
flexibility measures and balancing their influences to fulfill specific
characteristics".  :class:`WeightedFlexibility` implements exactly that: a
linear combination of registered measures with optional per-measure
normalisation, so e.g. an Aggregator can blend a size-aware measure
(relative area) with a mixed-capable one (vector) as the discussion section
recommends for the balancing use case.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import ClassVar, Optional, Union

from ..core.errors import MeasureError
from ..core.flexoffer import FlexOffer
from .base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
    get_measure,
)

__all__ = ["WeightedFlexibility", "MeasureWeight"]

#: A single term of a weighted combination: ``(measure, weight)``.
MeasureWeight = tuple[FlexibilityMeasure, float]


def _combine_characteristics(
    components: Sequence[FlexibilityMeasure],
) -> MeasureCharacteristics:
    """Characteristics of a weighted combination.

    A combination *captures* a dimension as soon as one of its components
    does, but it only *supports* a sign class (positive / negative / mixed)
    when every component does — applying the combination to a flex-offer a
    component refuses would fail.
    """
    return MeasureCharacteristics(
        captures_time=any(m.characteristics.captures_time for m in components),
        captures_energy=any(m.characteristics.captures_energy for m in components),
        captures_time_and_energy=any(
            m.characteristics.captures_time_and_energy for m in components
        ),
        captures_size=any(m.characteristics.captures_size for m in components),
        captures_positive=all(m.characteristics.captures_positive for m in components),
        captures_negative=all(m.characteristics.captures_negative for m in components),
        captures_mixed=all(m.characteristics.captures_mixed for m in components),
        single_value=True,
    )


class WeightedFlexibility(FlexibilityMeasure):
    """A weighted linear combination of flexibility measures.

    Parameters
    ----------
    weights:
        Either a mapping from measure key to weight (measures are then
        instantiated from the registry with default arguments) or an iterable
        of ``(measure_instance, weight)`` pairs for full control over measure
        parameters such as norms.
    normalise_weights:
        When ``True`` (default) the weights are rescaled to sum to one so the
        combined value stays on a scale comparable to its components.

    Examples
    --------
    >>> from repro.core import FlexOffer
    >>> blend = WeightedFlexibility({"vector": 0.5, "product": 0.5})
    >>> blend.value(FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)])) > 0
    True
    """

    key: ClassVar[str] = "weighted"
    label: ClassVar[str] = "Weighted"
    #: Placeholder; instances override ``characteristics`` per combination.
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=True,
        captures_time_and_energy=True,
        captures_size=True,
    )

    def __init__(
        self,
        weights: Union[Mapping[str, float], Iterable[MeasureWeight]],
        normalise_weights: bool = True,
    ) -> None:
        terms: list[MeasureWeight] = []
        if isinstance(weights, Mapping):
            for measure_key, weight in weights.items():
                terms.append((get_measure(measure_key), float(weight)))
        else:
            for measure, weight in weights:
                if not isinstance(measure, FlexibilityMeasure):
                    raise MeasureError(
                        f"expected a FlexibilityMeasure instance, got {measure!r}"
                    )
                terms.append((measure, float(weight)))
        if not terms:
            raise MeasureError("a weighted flexibility needs at least one component")
        for measure, weight in terms:
            if weight < 0:
                raise MeasureError(
                    f"weight for measure {measure.key!r} must be non-negative, got {weight}"
                )
        total_weight = sum(weight for _, weight in terms)
        if total_weight <= 0:
            raise MeasureError("the weights of a weighted flexibility must not all be zero")
        if normalise_weights:
            terms = [(measure, weight / total_weight) for measure, weight in terms]
        self.terms: tuple[MeasureWeight, ...] = tuple(terms)
        # Per-instance characteristics reflecting the actual components.
        self.characteristics = _combine_characteristics([m for m, _ in terms])

    def value(self, flex_offer: FlexOffer) -> float:
        return sum(weight * measure.value(flex_offer) for measure, weight in self.terms)

    def batch_values(self, matrix: object) -> list[float]:
        # Accumulate component batches in term order, mirroring the scalar
        # sum's left fold so the floating-point result is identical.
        totals = [0.0] * matrix.size
        for measure, weight in self.terms:
            for index, value in enumerate(measure.batch_values(matrix)):
                totals[index] += weight * value
        return totals

    def validate_set(self, flex_offers) -> None:
        for measure, _ in self.terms:
            measure.validate_set(flex_offers)

    def components(self) -> tuple[MeasureWeight, ...]:
        """The ``(measure, weight)`` terms of the combination."""
        return self.terms

    def breakdown(self, flex_offer: FlexOffer) -> dict[str, float]:
        """Per-component weighted contributions for one flex-offer."""
        return {
            measure.key: weight * measure.value(flex_offer)
            for measure, weight in self.terms
        }

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["components"] = [
            {"measure": measure.key, "weight": weight} for measure, weight in self.terms
        ]
        return description
