"""Energy flexibility measure (Section 3.1 of the paper).

``ef(f) = cmax(f) − cmin(f)``: the width of the total-energy range admitted by
the flex-offer's total constraints.  Example 2 of the paper computes
``ef = 12`` for the Figure 1 flex-offer (whose total constraints default to
the sums of the slice minima and maxima, 3 and 15).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import ClassVar

from ..core.flexoffer import FlexOffer
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure

__all__ = ["EnergyFlexibility", "energy_flexibility", "profile_energy_flexibility"]


@register_measure
class EnergyFlexibility(FlexibilityMeasure):
    """The energy flexibility ``ef(f) = cmax − cmin``.

    Characteristics (Table 1): captures energy only; applicable to positive,
    negative and mixed flex-offers; insensitive to the time dimension and to
    the flex-offer's size (only the *difference* of the total constraints
    matters, not their magnitude).
    """

    key: ClassVar[str] = "energy"
    label: ClassVar[str] = "Energy"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=False,
        captures_energy=True,
        captures_time_and_energy=False,
        captures_size=False,
    )

    def value(self, flex_offer: FlexOffer) -> float:
        return float(flex_offer.energy_flexibility)

    def batch_values(self, matrix: object) -> list[float]:
        return [float(value) for value in matrix.energy_flexibility.tolist()]


def energy_flexibility(flex_offer: FlexOffer) -> int:
    """Convenience function returning ``ef(f)`` as an exact integer."""
    return flex_offer.energy_flexibility


def profile_energy_flexibility(flex_offer: FlexOffer) -> int:
    """Sum of per-slice energy flexibilities ``Σ (amax − amin)``.

    This is the energy term used by the *original* total-flexibility
    definition of Šikšnys et al. [15] that the paper's product flexibility
    refines; it ignores the total constraints.  Exposed for the aggregation
    loss experiments and for comparison with ``ef(f)``.
    """
    return sum(s.width for s in flex_offer.slices)


def total_energy_flexibility(flex_offers: Iterable[FlexOffer]) -> int:
    """Sum of energy flexibilities over a set of flex-offers."""
    return sum(flex_offer.energy_flexibility for flex_offer in flex_offers)
