"""Vector flexibility measure (Definition 4 of the paper).

The vector flexibility of a flex-offer is the two-component vector
``⟨tf(f), ef(f)⟩``; its magnitude under a chosen norm (Manhattan or
Euclidean in the paper) gives a single-value flexibility.

Unlike the product flexibility, the vector measure still reports non-zero
flexibility when one of the two dimensions is inflexible (Section 4), but it
remains blind to the flex-offer's size (Example 12).
"""

from __future__ import annotations

from typing import ClassVar, Union

from ..core.flexoffer import FlexOffer
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure
from .norms import NormOrder, resolve_norm_order, vector_norm

__all__ = ["VectorFlexibility", "vector_flexibility", "vector_flexibility_norm"]


def vector_flexibility(flex_offer: FlexOffer) -> tuple[int, int]:
    """The raw flexibility vector ``⟨tf(f), ef(f)⟩`` (Definition 4)."""
    return flex_offer.time_flexibility, flex_offer.energy_flexibility


def vector_flexibility_norm(
    flex_offer: FlexOffer, norm: Union[str, NormOrder] = 2
) -> float:
    """The length of the flexibility vector under the given norm.

    ``norm`` accepts ``"l1"``/``"manhattan"``, ``"l2"``/``"euclidean"``,
    ``"max"`` or any positive numeric order.
    """
    return vector_norm(vector_flexibility(flex_offer), norm)


@register_measure
class VectorFlexibility(FlexibilityMeasure):
    """Single-value vector flexibility ``‖⟨tf(f), ef(f)⟩‖``.

    Parameters
    ----------
    norm:
        The norm used to collapse the vector into a single value; defaults to
        the Euclidean norm.  The paper evaluates both the Manhattan and the
        Euclidean norm (Example 4).

    Characteristics (Table 1): captures time, energy and their combination,
    is size-blind and applies to all sign classes.
    """

    key: ClassVar[str] = "vector"
    label: ClassVar[str] = "Vector"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=True,
        captures_time_and_energy=True,
        captures_size=False,
    )

    def __init__(self, norm: Union[str, NormOrder] = 2) -> None:
        self.norm_order = resolve_norm_order(norm)

    def value(self, flex_offer: FlexOffer) -> float:
        return vector_norm(vector_flexibility(flex_offer), self.norm_order)

    def batch_values(self, matrix: object) -> list[float]:
        import math

        import numpy as np

        time_flex = matrix.time_flexibility  # non-negative by construction
        energy_flex = matrix.energy_flexibility
        if self.norm_order == math.inf:
            return [
                float(value)
                for value in np.maximum(time_flex, energy_flex).tolist()
            ]
        order = self.norm_order
        powered = time_flex.astype(np.float64) ** order + energy_flex.astype(
            np.float64
        ) ** order
        # The final root on Python floats, mirroring lp_norm's last step.
        return [total ** (1.0 / order) for total in powered.tolist()]

    def components(self, flex_offer: FlexOffer) -> tuple[int, int]:
        """The underlying ``⟨tf, ef⟩`` vector before applying the norm."""
        return vector_flexibility(flex_offer)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["norm_order"] = self.norm_order
        return description
