"""Time flexibility measure (Section 3.1 of the paper).

``tf(f) = tls − tes``: the width of the start-time flexibility interval,
measured in time units.  Example 1 of the paper computes ``tf = 5`` for the
Figure 1 flex-offer.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import ClassVar

from ..core.flexoffer import FlexOffer
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure

__all__ = ["TimeFlexibility", "time_flexibility"]


@register_measure
class TimeFlexibility(FlexibilityMeasure):
    """The time flexibility ``tf(f) = f.tls − f.tes``.

    Characteristics (Table 1): captures time only; applicable to positive,
    negative and mixed flex-offers; insensitive to the energy dimension and
    to the flex-offer's size.
    """

    key: ClassVar[str] = "time"
    label: ClassVar[str] = "Time"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=False,
        captures_time_and_energy=False,
        captures_size=False,
    )

    def value(self, flex_offer: FlexOffer) -> float:
        return float(flex_offer.time_flexibility)

    def batch_values(self, matrix: object) -> list[float]:
        return [float(value) for value in matrix.time_flexibility.tolist()]


def time_flexibility(flex_offer: FlexOffer) -> int:
    """Convenience function returning ``tf(f)`` as an exact integer."""
    return flex_offer.time_flexibility


def total_time_flexibility(flex_offers: Iterable[FlexOffer]) -> int:
    """Sum of time flexibilities over a set of flex-offers."""
    return sum(flex_offer.time_flexibility for flex_offer in flex_offers)
