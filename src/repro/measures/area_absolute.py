"""Absolute area-based flexibility measure (Definitions 9–10 of the paper).

The measure is built on the two-dimensional (time × energy) grid: the area of
a flex-offer is the union of the areas of all its valid assignments, and the
absolute area-based flexibility subtracts the inflexible portion of that area
— the total minimum energy constraint for consumption flex-offers:

    ``absolute_area_flexibility(f) = |⋃_{a ∈ L(f)} area(a)| − cmin(f)``

Section 4 of the paper restricts the measure by sign class:

* **consumption** flex-offers subtract ``cmin`` (Definition 10, Examples 8–9);
* **production** flex-offers should subtract ``|cmax|`` instead, because for
  negative amounts ``cmax`` is the bound closest to zero and thus the
  inflexible part;
* **mixed** flex-offers are declared "not feasible" for this measure —
  although the paper's Example 15 still evaluates the Definition 10 formula
  on the mixed flex-offer of Figure 7, obtaining ``24 − (−8) = 32``.  The
  implementation therefore refuses mixed flex-offers by default and offers
  the Example 15 convention behind an explicit policy switch.
"""

from __future__ import annotations

from collections.abc import Sequence
from enum import Enum
from typing import ClassVar, Union

from ..core.area import batch_flexoffer_area_sizes, flexoffer_area_size
from ..core.errors import UnsupportedFlexOfferError
from ..core.flexoffer import FlexOffer, FlexOfferKind
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure

__all__ = [
    "MixedPolicy",
    "AbsoluteAreaFlexibility",
    "absolute_area_flexibility",
    "inflexible_area_baseline",
]


class MixedPolicy(Enum):
    """How the area-based measures treat *mixed* flex-offers."""

    #: Raise :class:`UnsupportedFlexOfferError` (the paper's recommendation).
    FORBID = "forbid"
    #: Follow the paper's Example 15 and subtract ``cmin`` even when mixed.
    PAPER_EXAMPLE = "paper-example"
    #: Subtract nothing; report the raw union-of-areas size.
    RAW_AREA = "raw-area"


def inflexible_area_baseline(
    flex_offer: FlexOffer, mixed_policy: MixedPolicy = MixedPolicy.FORBID
) -> int:
    """The inflexible portion subtracted from the union-of-areas size.

    Consumption flex-offers must deliver at least ``cmin`` cells of energy,
    production flex-offers at least ``|cmax|``; that committed amount is not
    flexibility, so Definition 10 removes it.
    """
    kind = flex_offer.kind
    if kind is FlexOfferKind.CONSUMPTION:
        return flex_offer.cmin
    if kind is FlexOfferKind.PRODUCTION:
        return abs(flex_offer.cmax)
    if mixed_policy is MixedPolicy.PAPER_EXAMPLE:
        return flex_offer.cmin
    if mixed_policy is MixedPolicy.RAW_AREA:
        return 0
    raise _mixed_unsupported_error("absolute area-based")


def absolute_area_flexibility(
    flex_offer: FlexOffer,
    mixed_policy: Union[MixedPolicy, str] = MixedPolicy.FORBID,
) -> int:
    """Absolute area-based flexibility per Definition 10 (exact integer).

    Examples
    --------
    The paper's Example 8 (Figure 5 flex-offer):

    >>> absolute_area_flexibility(FlexOffer(0, 4, [(2, 2)]))
    8
    """
    policy = MixedPolicy(mixed_policy)
    area = flexoffer_area_size(flex_offer)
    return area - inflexible_area_baseline(flex_offer, policy)


def _mixed_unsupported_error(
    measure_name: str, offenders: Sequence[str] = ()
) -> UnsupportedFlexOfferError:
    """The (single) 'not defined for mixed flex-offers' error of Section 4."""
    detail = (
        f"; offending members: {', '.join(offenders)}" if offenders else ""
    )
    return UnsupportedFlexOfferError(
        f"the {measure_name} flexibility measure is not defined for mixed "
        f"flex-offers (Section 4 of the paper){detail} — pass "
        "mixed_policy=MixedPolicy.PAPER_EXAMPLE to apply the Example 15 "
        "convention"
    )


def _validate_set_signs(
    flex_offers: Sequence[FlexOffer], mixed_policy: MixedPolicy, measure_name: str
) -> None:
    """Reject a set containing mixed flex-offers before any evaluation.

    Evaluating a set lazily raises only once the first mixed member is
    *reached*, by which point part of the set (and, for iterator callers,
    part of the input stream) has already been consumed — so the area-based
    measures validate the whole set up front via this helper.
    """
    if mixed_policy is not MixedPolicy.FORBID:
        return
    offenders = [
        flex_offer.name or f"#{index}"
        for index, flex_offer in enumerate(flex_offers)
        if flex_offer.is_mixed
    ]
    if offenders:
        raise _mixed_unsupported_error(measure_name, offenders)


def _batch_absolute_values(
    matrix: object,
    mixed_policy: MixedPolicy,
    measure_name: str = "absolute area-based",
) -> list[int]:
    """Vectorized Definition 10 values (exact integers) for a population.

    Shared by the absolute and relative area measures' ``batch_values``
    hooks; raises exactly like the scalar path when the population contains
    mixed flex-offers under the forbidding policy.
    """
    import numpy as np

    if matrix.size == 0:
        return []
    mixed = matrix.is_mixed
    if mixed_policy is MixedPolicy.FORBID and bool(mixed.any()):
        offenders = [
            flex_offer.name or f"#{index}"
            for index, flex_offer in enumerate(matrix.offers)
            if mixed[index]
        ]
        raise _mixed_unsupported_error(measure_name, offenders)
    mixed_baseline = (
        matrix.cmin if mixed_policy is not MixedPolicy.RAW_AREA else np.zeros_like(matrix.cmin)
    )
    baseline = np.where(
        matrix.is_consumption,
        matrix.cmin,
        np.where(matrix.is_production, np.abs(matrix.cmax), mixed_baseline),
    )
    # Python-int subtraction on purpose: the scalar fallback inside
    # ``area_sizes`` may return areas beyond int64 (big integers), which the
    # reference path handles exactly — packing them back into an array would
    # raise OverflowError instead of matching it.
    areas = batch_flexoffer_area_sizes(matrix)
    return [area - base for area, base in zip(areas, baseline.tolist())]


@register_measure
class AbsoluteAreaFlexibility(FlexibilityMeasure):
    """Single-value absolute area-based flexibility.

    Parameters
    ----------
    mixed_policy:
        Treatment of mixed flex-offers; defaults to refusing them
        (:class:`MixedPolicy.FORBID`), matching Section 4 of the paper.

    Characteristics (Table 1): captures time, energy and their combination,
    and — uniquely among the proposed measures together with the relative
    variant — the *size* of the flex-offer; it does not capture mixed
    flex-offers.  Sets of flex-offers are compared by summing the individual
    values (Section 4).
    """

    key: ClassVar[str] = "absolute_area"
    label: ClassVar[str] = "Abs. Area"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=True,
        captures_time_and_energy=True,
        captures_size=True,
        captures_mixed=False,
    )

    def __init__(self, mixed_policy: Union[MixedPolicy, str] = MixedPolicy.FORBID) -> None:
        self.mixed_policy = MixedPolicy(mixed_policy)

    def value(self, flex_offer: FlexOffer) -> float:
        return float(absolute_area_flexibility(flex_offer, self.mixed_policy))

    def batch_values(self, matrix: object) -> list[float]:
        return [
            float(value)
            for value in _batch_absolute_values(matrix, self.mixed_policy)
        ]

    def validate_set(self, flex_offers: Sequence[FlexOffer]) -> None:
        _validate_set_signs(flex_offers, self.mixed_policy, "absolute area-based")

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["mixed_policy"] = self.mixed_policy.value
        return description
