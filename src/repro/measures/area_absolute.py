"""Absolute area-based flexibility measure (Definitions 9–10 of the paper).

The measure is built on the two-dimensional (time × energy) grid: the area of
a flex-offer is the union of the areas of all its valid assignments, and the
absolute area-based flexibility subtracts the inflexible portion of that area
— the total minimum energy constraint for consumption flex-offers:

    ``absolute_area_flexibility(f) = |⋃_{a ∈ L(f)} area(a)| − cmin(f)``

Section 4 of the paper restricts the measure by sign class:

* **consumption** flex-offers subtract ``cmin`` (Definition 10, Examples 8–9);
* **production** flex-offers should subtract ``|cmax|`` instead, because for
  negative amounts ``cmax`` is the bound closest to zero and thus the
  inflexible part;
* **mixed** flex-offers are declared "not feasible" for this measure —
  although the paper's Example 15 still evaluates the Definition 10 formula
  on the mixed flex-offer of Figure 7, obtaining ``24 − (−8) = 32``.  The
  implementation therefore refuses mixed flex-offers by default and offers
  the Example 15 convention behind an explicit policy switch.
"""

from __future__ import annotations

from enum import Enum
from typing import ClassVar, Union

from ..core.area import flexoffer_area_size
from ..core.errors import UnsupportedFlexOfferError
from ..core.flexoffer import FlexOffer, FlexOfferKind
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure

__all__ = [
    "MixedPolicy",
    "AbsoluteAreaFlexibility",
    "absolute_area_flexibility",
    "inflexible_area_baseline",
]


class MixedPolicy(Enum):
    """How the area-based measures treat *mixed* flex-offers."""

    #: Raise :class:`UnsupportedFlexOfferError` (the paper's recommendation).
    FORBID = "forbid"
    #: Follow the paper's Example 15 and subtract ``cmin`` even when mixed.
    PAPER_EXAMPLE = "paper-example"
    #: Subtract nothing; report the raw union-of-areas size.
    RAW_AREA = "raw-area"


def inflexible_area_baseline(
    flex_offer: FlexOffer, mixed_policy: MixedPolicy = MixedPolicy.FORBID
) -> int:
    """The inflexible portion subtracted from the union-of-areas size.

    Consumption flex-offers must deliver at least ``cmin`` cells of energy,
    production flex-offers at least ``|cmax|``; that committed amount is not
    flexibility, so Definition 10 removes it.
    """
    kind = flex_offer.kind
    if kind is FlexOfferKind.CONSUMPTION:
        return flex_offer.cmin
    if kind is FlexOfferKind.PRODUCTION:
        return abs(flex_offer.cmax)
    if mixed_policy is MixedPolicy.PAPER_EXAMPLE:
        return flex_offer.cmin
    if mixed_policy is MixedPolicy.RAW_AREA:
        return 0
    raise UnsupportedFlexOfferError(
        "the absolute area-based flexibility measure is not defined for mixed "
        "flex-offers (Section 4 of the paper); pass "
        "mixed_policy=MixedPolicy.PAPER_EXAMPLE to apply the Example 15 convention"
    )


def absolute_area_flexibility(
    flex_offer: FlexOffer,
    mixed_policy: Union[MixedPolicy, str] = MixedPolicy.FORBID,
) -> int:
    """Absolute area-based flexibility per Definition 10 (exact integer).

    Examples
    --------
    The paper's Example 8 (Figure 5 flex-offer):

    >>> absolute_area_flexibility(FlexOffer(0, 4, [(2, 2)]))
    8
    """
    policy = MixedPolicy(mixed_policy)
    area = flexoffer_area_size(flex_offer)
    return area - inflexible_area_baseline(flex_offer, policy)


@register_measure
class AbsoluteAreaFlexibility(FlexibilityMeasure):
    """Single-value absolute area-based flexibility.

    Parameters
    ----------
    mixed_policy:
        Treatment of mixed flex-offers; defaults to refusing them
        (:class:`MixedPolicy.FORBID`), matching Section 4 of the paper.

    Characteristics (Table 1): captures time, energy and their combination,
    and — uniquely among the proposed measures together with the relative
    variant — the *size* of the flex-offer; it does not capture mixed
    flex-offers.  Sets of flex-offers are compared by summing the individual
    values (Section 4).
    """

    key: ClassVar[str] = "absolute_area"
    label: ClassVar[str] = "Abs. Area"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=True,
        captures_time_and_energy=True,
        captures_size=True,
        captures_mixed=False,
    )

    def __init__(self, mixed_policy: Union[MixedPolicy, str] = MixedPolicy.FORBID) -> None:
        self.mixed_policy = MixedPolicy(mixed_policy)

    def value(self, flex_offer: FlexOffer) -> float:
        return float(absolute_area_flexibility(flex_offer, self.mixed_policy))

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["mixed_policy"] = self.mixed_policy.value
        return description
