"""Relative area-based flexibility measure (Definition 11 of the paper).

The absolute area-based flexibility depends on the actual energy amounts of
the flex-offer, which makes it unsuitable for comparing flex-offers of very
different sizes (a household dishwasher versus a district-level aggregate).
The relative measure normalises by the average magnitude of the total energy
constraints:

    ``relative_area_flexibility(f) = 2 · absolute_area_flexibility(f) / (|cmin| + |cmax|)``

and is undefined when ``|cmin| + |cmax| = 0``.  The paper's Example 10
computes 4 for the Figure 5 flex-offer and 16/6 for the Figure 6 flex-offer.

For sets of flex-offers, Section 4 notes that summing relative flexibilities
is not meaningful; the *average* relative flexibility should be used instead,
which is what :meth:`RelativeAreaFlexibility.set_value` does.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import ClassVar, Union

from ..core.errors import MeasureError
from ..core.flexoffer import FlexOffer
from .area_absolute import (
    MixedPolicy,
    _batch_absolute_values,
    _validate_set_signs,
    absolute_area_flexibility,
)
from .base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
    SetAggregation,
    register_measure,
)

__all__ = ["RelativeAreaFlexibility", "relative_area_flexibility"]


def relative_area_flexibility(
    flex_offer: FlexOffer,
    mixed_policy: Union[MixedPolicy, str] = MixedPolicy.FORBID,
) -> float:
    """Relative area-based flexibility per Definition 11.

    Raises
    ------
    MeasureError
        If ``|cmin| + |cmax| == 0`` (the normaliser of Definition 11 must be
        non-zero) — this happens only for flex-offers whose total energy is
        constrained to exactly zero.

    Examples
    --------
    >>> relative_area_flexibility(FlexOffer(0, 4, [(2, 2)]))
    4.0
    """
    denominator = abs(flex_offer.cmin) + abs(flex_offer.cmax)
    if denominator == 0:
        raise MeasureError(
            "relative area-based flexibility is undefined when |cmin| + |cmax| = 0 "
            f"(flex-offer {flex_offer})"
        )
    absolute = absolute_area_flexibility(flex_offer, mixed_policy)
    return 2.0 * absolute / denominator


@register_measure
class RelativeAreaFlexibility(FlexibilityMeasure):
    """Single-value relative (size-normalised) area-based flexibility.

    Parameters
    ----------
    mixed_policy:
        Treatment of mixed flex-offers, forwarded to the absolute measure;
        defaults to refusing them.

    Characteristics (Table 1): identical to the absolute area-based measure
    (captures time, energy, their combination and size; no mixed
    flex-offers), but flex-offer *sets* are aggregated by averaging rather
    than summation (Section 4).
    """

    key: ClassVar[str] = "relative_area"
    label: ClassVar[str] = "Rel. Area"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=True,
        captures_time_and_energy=True,
        captures_size=True,
        captures_mixed=False,
    )
    set_aggregation: ClassVar[SetAggregation] = SetAggregation.MEAN

    def __init__(self, mixed_policy: Union[MixedPolicy, str] = MixedPolicy.FORBID) -> None:
        self.mixed_policy = MixedPolicy(mixed_policy)

    def value(self, flex_offer: FlexOffer) -> float:
        return relative_area_flexibility(flex_offer, self.mixed_policy)

    def batch_values(self, matrix: object) -> list[float]:
        if matrix.size == 0:
            return []
        denominators = (abs(matrix.cmin) + abs(matrix.cmax)).tolist()
        forbid = self.mixed_policy is MixedPolicy.FORBID
        for offer, denominator, is_mixed in zip(
            matrix.offers, denominators, matrix.is_mixed.tolist()
        ):
            if denominator == 0 or (forbid and is_mixed):
                # Delegate to the scalar function so the *first* offending
                # offer (in population order) raises exactly the reference
                # path's exception class and message.
                relative_area_flexibility(offer, self.mixed_policy)
                raise AssertionError("scalar path accepted a rejected offer")
        absolute = _batch_absolute_values(
            matrix, self.mixed_policy, "relative area-based"
        )
        # Same float expression as the scalar path: 2.0 * int / int.
        return [
            2.0 * value / denominator
            for value, denominator in zip(absolute, denominators)
        ]

    def validate_set(self, flex_offers: Sequence[FlexOffer]) -> None:
        _validate_set_signs(flex_offers, self.mixed_policy, "relative area-based")

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["mixed_policy"] = self.mixed_policy.value
        return description
