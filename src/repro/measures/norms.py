"""Vector norms used by the flexibility measures.

The paper applies the Manhattan (L1) and Euclidean (L2) norms to two kinds of
objects: the 2-component vector flexibility (Definition 4, Example 4) and the
difference time series of the time-series flexibility (Definition 7,
Example 5).  This module provides a small, explicit norm registry so measure
constructors can accept either a name (``"l1"``, ``"manhattan"``, ``"l2"``,
``"euclidean"``, ``"max"``/``"linf"``) or a numeric order.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Union

__all__ = [
    "NormOrder",
    "manhattan",
    "euclidean",
    "maximum",
    "lp_norm",
    "resolve_norm_order",
    "vector_norm",
    "NORM_ALIASES",
]

NormOrder = Union[int, float]

#: Mapping of accepted textual norm names to numeric orders.
NORM_ALIASES: dict[str, NormOrder] = {
    "l1": 1,
    "manhattan": 1,
    "taxicab": 1,
    "l2": 2,
    "euclidean": 2,
    "linf": math.inf,
    "max": math.inf,
    "chebyshev": math.inf,
}


def resolve_norm_order(norm: Union[str, NormOrder]) -> NormOrder:
    """Normalise a norm specification into a numeric order.

    Raises ``ValueError`` on an unknown name or non-positive order.
    """
    if isinstance(norm, str):
        key = norm.strip().lower()
        if key not in NORM_ALIASES:
            raise ValueError(
                f"unknown norm {norm!r}; expected one of {sorted(NORM_ALIASES)}"
            )
        return NORM_ALIASES[key]
    if isinstance(norm, bool) or not isinstance(norm, (int, float)):
        raise ValueError(f"norm must be a name or a numeric order, got {norm!r}")
    if norm <= 0:
        raise ValueError(f"norm order must be positive, got {norm}")
    return norm


def lp_norm(values: Iterable[float], order: NormOrder) -> float:
    """The L``order`` norm of a sequence of numbers."""
    items = [abs(float(value)) for value in values]
    if order == math.inf:
        return max(items, default=0.0)
    if order <= 0:
        raise ValueError(f"norm order must be positive, got {order}")
    return sum(item ** order for item in items) ** (1.0 / order)


def manhattan(values: Iterable[float]) -> float:
    """L1 norm: sum of absolute values."""
    return lp_norm(values, 1)


def euclidean(values: Iterable[float]) -> float:
    """L2 norm: square root of the sum of squares."""
    return lp_norm(values, 2)


def maximum(values: Iterable[float]) -> float:
    """L∞ norm: largest absolute value."""
    return lp_norm(values, math.inf)


def vector_norm(values: Sequence[float], norm: Union[str, NormOrder] = 2) -> float:
    """Norm of a vector given either a textual name or a numeric order."""
    return lp_norm(values, resolve_norm_order(norm))
