"""The eight flexibility measures of the paper, plus composites and set-wise tools.

Importing this package registers every measure in the registry of
:mod:`repro.measures.base`, so ``get_measure("product")`` and the Table 1
machinery work after a plain ``import repro.measures``.
"""

from .area_absolute import (
    AbsoluteAreaFlexibility,
    MixedPolicy,
    absolute_area_flexibility,
    inflexible_area_baseline,
)
from .area_relative import RelativeAreaFlexibility, relative_area_flexibility
from .assignments import (
    AssignmentFlexibility,
    assignment_flexibility,
    log_assignment_flexibility,
    set_assignment_flexibility,
)
from .base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
    SetAggregation,
    get_measure,
    measure_keys,
    register_measure,
    registered_measures,
)
from .characteristics import (
    PAPER_MEASURE_ORDER,
    PAPER_TABLE_1,
    characteristics_matrix,
    characteristics_table,
    format_characteristics_table,
    matches_paper_table,
)
from .composite import WeightedFlexibility
from .energy_measure import (
    EnergyFlexibility,
    energy_flexibility,
    profile_energy_flexibility,
)
from .norms import (
    NORM_ALIASES,
    euclidean,
    lp_norm,
    manhattan,
    maximum,
    resolve_norm_order,
    vector_norm,
)
from .product import ProductFlexibility, legacy_product_flexibility, product_flexibility
from .series import SeriesFlexibility, series_difference, series_flexibility
from .setwise import (
    FlexibilitySetReport,
    applicable_measures,
    compare_sets,
    evaluate_set,
    rank_flexoffers,
    resolve_measures,
)
from .time_measure import TimeFlexibility, time_flexibility
from .vector import VectorFlexibility, vector_flexibility, vector_flexibility_norm

__all__ = [
    # framework
    "FlexibilityMeasure",
    "MeasureCharacteristics",
    "SetAggregation",
    "register_measure",
    "registered_measures",
    "measure_keys",
    "get_measure",
    # individual measures
    "TimeFlexibility",
    "time_flexibility",
    "EnergyFlexibility",
    "energy_flexibility",
    "profile_energy_flexibility",
    "ProductFlexibility",
    "product_flexibility",
    "legacy_product_flexibility",
    "VectorFlexibility",
    "vector_flexibility",
    "vector_flexibility_norm",
    "SeriesFlexibility",
    "series_difference",
    "series_flexibility",
    "AssignmentFlexibility",
    "assignment_flexibility",
    "log_assignment_flexibility",
    "set_assignment_flexibility",
    "AbsoluteAreaFlexibility",
    "MixedPolicy",
    "absolute_area_flexibility",
    "inflexible_area_baseline",
    "RelativeAreaFlexibility",
    "relative_area_flexibility",
    # composites
    "WeightedFlexibility",
    # norms
    "NORM_ALIASES",
    "lp_norm",
    "manhattan",
    "euclidean",
    "maximum",
    "vector_norm",
    "resolve_norm_order",
    # characteristics / Table 1
    "PAPER_MEASURE_ORDER",
    "PAPER_TABLE_1",
    "characteristics_matrix",
    "characteristics_table",
    "format_characteristics_table",
    "matches_paper_table",
    # set-wise tools
    "FlexibilitySetReport",
    "applicable_measures",
    "resolve_measures",
    "evaluate_set",
    "compare_sets",
    "rank_flexoffers",
]
