"""Assignment flexibility measure (Definition 8 of the paper).

The flexibility of a flex-offer is the *number of its possible assignments*:

    ``assignment_flexibility(f) = (tls − tes + 1) · Π_i (s(i).amax − s(i).amin + 1)``

Section 4 of the paper discusses the measure's behaviour: the count grows
linearly in the time flexibility but exponentially (one factor per slice) in
the energy flexibility, so the measure strongly favours energy flexibility;
it ignores the total energy constraints and the absolute size of the energy
amounts.  For sets of flex-offers the paper counts the number of possible
assignments of the whole set, i.e. the *product* of the individual counts —
which this implementation follows (a sum would not count joint assignments).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import ClassVar

from ..core.enumeration import count_assignments, count_assignments_constrained
from ..core.flexoffer import FlexOffer
from .base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
    SetAggregation,
    register_measure,
)

__all__ = [
    "AssignmentFlexibility",
    "assignment_flexibility",
    "log_assignment_flexibility",
    "set_assignment_flexibility",
]


def assignment_flexibility(flex_offer: FlexOffer) -> int:
    """Number of possible assignments per Definition 8 (exact integer)."""
    return count_assignments(flex_offer)


def log_assignment_flexibility(flex_offer: FlexOffer) -> float:
    """Natural logarithm of the assignment count.

    The raw count explodes combinatorially with the number of flexible
    slices; the logarithm is the numerically safe variant used by the
    aggregation-loss and scaling experiments when comparing large
    flex-offers.
    """
    start_choices = flex_offer.latest_start - flex_offer.earliest_start + 1
    log_count = math.log(start_choices)
    for energy_slice in flex_offer.slices:
        log_count += math.log(energy_slice.count)
    return log_count


def set_assignment_flexibility(flex_offers: Iterable[FlexOffer]) -> int:
    """Number of joint assignments of a set of flex-offers (product of counts).

    The paper (Section 4) extends the measure to sets "by counting the number
    of possible assignments for the whole set"; since the members are
    scheduled independently, that is the product of the individual counts.
    An empty set has exactly one (empty) assignment.
    """
    total = 1
    for flex_offer in flex_offers:
        total *= count_assignments(flex_offer)
    return total


@register_measure
class AssignmentFlexibility(FlexibilityMeasure):
    """Single-value assignment-count flexibility.

    Parameters
    ----------
    respect_total_constraints:
        Definition 8 deliberately ignores the total energy constraints; pass
        ``True`` to count only assignments that also satisfy
        ``cmin <= Σ v(i) <= cmax`` (the exact size of ``L(f)``), which the
        library exposes for the extended experiments.
    logarithmic:
        Report the natural logarithm of the count instead of the raw count —
        useful when comparing flex-offers with many flexible slices where the
        raw count overflows any fixed-width representation.

    Characteristics (Table 1): captures time, energy and their combination,
    is size-blind, applies to all sign classes.
    """

    key: ClassVar[str] = "assignments"
    label: ClassVar[str] = "Assignments"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=True,
        captures_energy=True,
        captures_time_and_energy=True,
        captures_size=False,
    )
    set_aggregation: ClassVar[SetAggregation] = SetAggregation.SUM

    def __init__(
        self,
        respect_total_constraints: bool = False,
        logarithmic: bool = False,
    ) -> None:
        self.respect_total_constraints = respect_total_constraints
        self.logarithmic = logarithmic

    def value(self, flex_offer: FlexOffer) -> float:
        if self.respect_total_constraints:
            count = count_assignments_constrained(flex_offer)
            return float(math.log(count)) if self.logarithmic else float(count)
        if self.logarithmic:
            return log_assignment_flexibility(flex_offer)
        return float(count_assignments(flex_offer))

    def batch_values(self, matrix: object) -> list[float]:
        import numpy as np

        if self.respect_total_constraints or self.logarithmic:
            # The constrained count is a per-offer dynamic program and the
            # logarithmic variant a guarded log-sum; both stay scalar.
            return super().batch_values(matrix)
        if matrix.size == 0:
            return []
        counts = matrix.amax - matrix.amin + 1
        start_choices = matrix.time_flexibility + 1
        # Definition 8 counts explode combinatorially; beyond 2^52 the int64
        # product (and its float64 image) would stop being exact, so those
        # populations fall back to the scalar path's Python big integers.
        log2_total = matrix._reduce(
            np.add, np.log2(counts.astype(np.float64))
        ) + np.log2(start_choices.astype(np.float64))
        if float(log2_total.max()) > 52.0:
            return super().batch_values(matrix)
        products = matrix._reduce(np.multiply, counts) * start_choices
        return [float(count) for count in products.tolist()]

    def combine_values(self, values: Sequence[float]) -> float:
        """Joint assignment count of the set (product; log-sum when logarithmic)."""
        if not values:
            return 1.0 if not self.logarithmic else 0.0
        if self.logarithmic:
            return float(sum(values))
        product = 1.0
        for value in values:
            product *= value
        return product

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["respect_total_constraints"] = self.respect_total_constraints
        description["logarithmic"] = self.logarithmic
        return description
