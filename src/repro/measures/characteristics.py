"""The characteristics matrix of the flexibility measures (Table 1).

Table 1 of the paper summarises every proposed measure against eight
qualitative characteristics (captures time, captures energy, captures their
combination, captures size, applicability to positive / negative / mixed
flex-offers, single value).  Here the matrix is *derived* from the
``characteristics`` metadata declared on every registered measure class, so
the benchmark that reproduces Table 1 checks the metadata that the rest of
the library actually consults (for example :meth:`FlexibilityMeasure.supports`
and the composite-measure compatibility checks).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional

from .base import (
    FlexibilityMeasure,
    MeasureCharacteristics,
    get_measure,
    registered_measures,
)

__all__ = [
    "PAPER_MEASURE_ORDER",
    "PAPER_TABLE_1",
    "characteristics_matrix",
    "characteristics_table",
    "format_characteristics_table",
    "matches_paper_table",
]

#: The measure keys in the column order of the paper's Table 1.
PAPER_MEASURE_ORDER: tuple[str, ...] = (
    "time",
    "energy",
    "product",
    "vector",
    "series",
    "assignments",
    "absolute_area",
    "relative_area",
)

#: The paper's Table 1, transcribed verbatim: ``{row_label: {measure_key: bool}}``.
PAPER_TABLE_1: dict[str, dict[str, bool]] = {
    "Captures time": {
        "time": True, "energy": False, "product": False, "vector": True,
        "series": False, "assignments": True, "absolute_area": True,
        "relative_area": True,
    },
    "Captures energy": {
        "time": False, "energy": True, "product": False, "vector": True,
        "series": True, "assignments": True, "absolute_area": True,
        "relative_area": True,
    },
    "Captures time & energy": {
        "time": False, "energy": False, "product": True, "vector": True,
        "series": False, "assignments": True, "absolute_area": True,
        "relative_area": True,
    },
    "Captures size": {
        "time": False, "energy": False, "product": False, "vector": False,
        "series": False, "assignments": False, "absolute_area": True,
        "relative_area": True,
    },
    "Captures positive flex-offers": {
        key: True for key in PAPER_MEASURE_ORDER
    },
    "Captures negative flex-offers": {
        key: True for key in PAPER_MEASURE_ORDER
    },
    "Captures Mixed flex-offers": {
        "time": True, "energy": True, "product": True, "vector": True,
        "series": True, "assignments": True, "absolute_area": False,
        "relative_area": False,
    },
    "Single Value": {
        key: True for key in PAPER_MEASURE_ORDER
    },
}


def _ordered_measures(keys: Optional[Sequence[str]] = None) -> list[type[FlexibilityMeasure]]:
    registry = registered_measures()
    ordered_keys = list(keys) if keys is not None else [
        key for key in PAPER_MEASURE_ORDER if key in registry
    ]
    return [registry[key] for key in ordered_keys]


def characteristics_matrix(
    keys: Optional[Sequence[str]] = None,
) -> dict[str, dict[str, bool]]:
    """The characteristics matrix derived from the measure metadata.

    Returns ``{row_label: {measure_key: bool}}`` with rows in Table 1 order
    and columns restricted to ``keys`` (default: the paper's eight measures).
    """
    measures = _ordered_measures(keys)
    matrix: dict[str, dict[str, bool]] = {}
    for field_name, row_label in MeasureCharacteristics.ROW_LABELS:
        matrix[row_label] = {
            cls.key: getattr(cls.characteristics, field_name) for cls in measures
        }
    return matrix


def characteristics_table(
    keys: Optional[Sequence[str]] = None,
) -> list[list[str]]:
    """Table 1 as a list of rows of strings (header row first)."""
    measures = _ordered_measures(keys)
    header = ["Characteristics"] + [cls.label for cls in measures]
    rows = [header]
    matrix = characteristics_matrix([cls.key for cls in measures])
    for _, row_label in MeasureCharacteristics.ROW_LABELS:
        row = [row_label]
        for cls in measures:
            row.append("Yes" if matrix[row_label][cls.key] else "No")
        rows.append(row)
    return rows


def format_characteristics_table(keys: Optional[Sequence[str]] = None) -> str:
    """Table 1 rendered as a fixed-width text table (for reports and benches)."""
    rows = characteristics_table(keys)
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def matches_paper_table(keys: Optional[Sequence[str]] = None) -> dict[str, bool]:
    """Compare the derived matrix against the transcribed paper Table 1.

    Returns ``{row_label: True/False}`` where ``True`` means the whole row
    matches the paper.  The benchmark :mod:`benchmarks.bench_table1_characteristics`
    asserts every row matches.
    """
    derived = characteristics_matrix(keys)
    agreement: dict[str, bool] = {}
    for row_label, expected_row in PAPER_TABLE_1.items():
        derived_row = derived.get(row_label, {})
        agreement[row_label] = all(
            derived_row.get(key) == expected for key, expected in expected_row.items()
            if key in derived_row
        ) and set(expected_row) == set(derived_row)
    return agreement
