"""Set-wise flexibility evaluation.

Section 4 of the paper extends every measure from a single flex-offer to a
*set* of flex-offers: most measures sum the individual values, the relative
area-based measure averages them, and the assignment measure counts joint
assignments (the product of the individual counts).  This module adds the
orchestration layer on top of the per-measure ``set_value`` hooks: evaluating
one set under many measures at once, comparing two sets (e.g. before and
after aggregation), and ranking flex-offers inside a set.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional, Union

from ..core.errors import MeasureError
from ..core.flexoffer import FlexOffer
from .base import FlexibilityMeasure, get_measure, registered_measures

__all__ = [
    "FlexibilitySetReport",
    "MeasureSpec",
    "applicable_measures",
    "resolve_measures",
    "evaluate_set",
    "compare_sets",
    "rank_flexoffers",
]

MeasureSpec = Union[str, FlexibilityMeasure]


def resolve_measures(measures: Optional[Iterable[MeasureSpec]]) -> list[FlexibilityMeasure]:
    """Resolve measure keys and/or instances into measure instances.

    ``None`` resolves to one default-configured instance of every registered
    measure.
    """
    if measures is None:
        return [cls() for cls in registered_measures().values() if cls.key != "weighted"]
    resolved: list[FlexibilityMeasure] = []
    for spec in measures:
        if isinstance(spec, FlexibilityMeasure):
            resolved.append(spec)
        elif isinstance(spec, str):
            resolved.append(get_measure(spec))
        else:
            raise MeasureError(f"cannot resolve measure specification {spec!r}")
    return resolved


def applicable_measures(
    flex_offers: Sequence[FlexOffer],
    measures: Optional[Iterable[MeasureSpec]] = None,
) -> list[FlexibilityMeasure]:
    """The subset of measures that support every flex-offer in the set.

    Mirrors the paper's Section 4 guidance: e.g. the area-based measures are
    dropped as soon as the set contains a mixed flex-offer.
    """
    resolved = resolve_measures(measures)
    return [
        measure
        for measure in resolved
        if all(measure.supports(flex_offer) for flex_offer in flex_offers)
    ]


@dataclass(frozen=True)
class FlexibilitySetReport:
    """Flexibility of one set of flex-offers under several measures."""

    #: Number of flex-offers evaluated.
    size: int
    #: ``{measure_key: set_value}`` for every measure that supports the set.
    values: dict[str, float]
    #: Measure keys that were skipped because they do not support the set.
    skipped: tuple[str, ...]

    def value(self, measure_key: str) -> float:
        """The set value for one measure; raises ``KeyError`` when skipped."""
        return self.values[measure_key]


def evaluate_set(
    flex_offers: Sequence[FlexOffer],
    measures: Optional[Iterable[MeasureSpec]] = None,
    skip_unsupported: bool = True,
) -> FlexibilitySetReport:
    """Evaluate a set of flex-offers under several measures at once.

    Parameters
    ----------
    measures:
        Measure keys or instances; defaults to every registered measure.
    skip_unsupported:
        When ``True`` (default) measures that do not support the set's sign
        classes are recorded in ``skipped`` instead of raising.
    """
    from ..backend.dispatch import get_backend

    flex_offers = list(flex_offers)
    resolved = resolve_measures(measures)
    values, skipped = get_backend().evaluate_population(
        resolved, flex_offers, skip_unsupported
    )
    return FlexibilitySetReport(len(flex_offers), values, tuple(skipped))


def compare_sets(
    before: Sequence[FlexOffer],
    after: Sequence[FlexOffer],
    measures: Optional[Iterable[MeasureSpec]] = None,
) -> dict[str, dict[str, float]]:
    """Compare two sets of flex-offers measure by measure.

    Returns ``{measure_key: {"before": x, "after": y, "loss": x - y,
    "retained": y / x}}`` for every measure supported by both sets.  The
    ``retained`` ratio is reported as 1.0 whenever the *before* value is zero.
    This is the primitive the aggregation-loss experiments (Scenario 1 of the
    paper) are built on.
    """
    before_report = evaluate_set(before, measures)
    after_report = evaluate_set(after, measures)
    comparison: dict[str, dict[str, float]] = {}
    for key, before_value in before_report.values.items():
        if key not in after_report.values:
            continue
        after_value = after_report.values[key]
        retained = 1.0 if before_value == 0 else after_value / before_value
        comparison[key] = {
            "before": before_value,
            "after": after_value,
            "loss": before_value - after_value,
            "retained": retained,
        }
    return comparison


def rank_flexoffers(
    flex_offers: Sequence[FlexOffer],
    measure: MeasureSpec,
    descending: bool = True,
) -> list[tuple[FlexOffer, float]]:
    """Rank flex-offers by their flexibility under one measure.

    Flex-offers the measure does not support are excluded from the ranking.
    """
    resolved = resolve_measures([measure])[0]
    scored = [
        (flex_offer, resolved.value(flex_offer))
        for flex_offer in flex_offers
        if resolved.supports(flex_offer)
    ]
    return sorted(scored, key=lambda pair: pair[1], reverse=descending)
