"""Time-series flexibility measure (Definitions 5–7 of the paper).

The measure compares the two most dissimilar assignments of a flex-offer —
the *minimum assignment* (per-slice minima, earliest start, Definition 5) and
the *maximum assignment* (per-slice maxima, latest start, Definition 6) — by
taking their difference as a time series and collapsing it with a norm
(Manhattan or Euclidean).

Section 4 and Example 13 of the paper point out the measure's blind spot:
standard Lp norms ignore the temporal structure of the difference series, so
the result only reflects the energy dimension — two flex-offers that differ
only in time flexibility obtain identical values.
"""

from __future__ import annotations

from typing import ClassVar, Union

from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure
from .norms import NormOrder, lp_norm, resolve_norm_order

__all__ = [
    "SeriesFlexibility",
    "series_difference",
    "series_flexibility",
]


def series_difference(flex_offer: FlexOffer) -> TimeSeries:
    """The difference ``f_a^max − f_a^min`` as a zero-filled time series.

    The two canonical assignments generally start at different times; the
    difference is taken over the union of their spans with missing positions
    treated as zero, exactly as in the paper's Example 5.
    """
    return flex_offer.maximum_assignment() - flex_offer.minimum_assignment()


def series_flexibility(
    flex_offer: FlexOffer, norm: Union[str, NormOrder] = 2
) -> float:
    """Time-series flexibility: ``‖ f_a^max − f_a^min ‖`` under the given norm."""
    difference = series_difference(flex_offer)
    return lp_norm(difference.values, resolve_norm_order(norm))


@register_measure
class SeriesFlexibility(FlexibilityMeasure):
    """Single-value time-series flexibility.

    Parameters
    ----------
    norm:
        Norm used to collapse the difference series; defaults to the
        Euclidean norm.  The paper uses Manhattan and Euclidean norms
        (Example 5).

    Characteristics (Table 1): although the construction involves both time
    and energy, the Lp norms discard the temporal structure, so the measure
    effectively captures only energy flexibility.  It applies to all sign
    classes and extends to sets by summation.
    """

    key: ClassVar[str] = "series"
    label: ClassVar[str] = "Time-series"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=False,
        captures_energy=True,
        captures_time_and_energy=False,
        captures_size=False,
    )

    def __init__(self, norm: Union[str, NormOrder] = 2) -> None:
        self.norm_order = resolve_norm_order(norm)

    def value(self, flex_offer: FlexOffer) -> float:
        return series_flexibility(flex_offer, self.norm_order)

    def batch_values(self, matrix: object) -> list[float]:
        import math

        import numpy as np

        from ..backend.matrix import DENSE_CELL_LIMIT

        if matrix.size == 0:
            return []
        shift = matrix.time_flexibility  # tls − tes: offset of f_a^max vs f_a^min
        width = int((shift + matrix.durations).max())
        if matrix.size * width > DENSE_CELL_LIMIT:
            # A pathological offer (huge time flexibility) would blow up the
            # padded difference matrix; evaluate those populations scalar.
            return super().batch_values(matrix)
        # Padded difference series relative to each offer's earliest start:
        # the maximum assignment scattered at +shift minus the minimum
        # assignment at 0, zero-filled elsewhere (Example 5's convention).
        rows = matrix.owner
        maximum = np.zeros((matrix.size, width), dtype=np.int64)
        minimum = np.zeros((matrix.size, width), dtype=np.int64)
        maximum[rows, matrix.within + shift[rows]] = matrix.amax
        minimum[rows, matrix.within] = matrix.amin
        difference = np.abs(maximum - minimum)
        if self.norm_order == math.inf:
            return [float(value) for value in difference.max(axis=1).tolist()]
        powered = difference.astype(np.float64) ** self.norm_order
        totals = powered.sum(axis=1)
        # The final root on Python floats, mirroring lp_norm's last step.
        return [total ** (1.0 / self.norm_order) for total in totals.tolist()]

    def difference(self, flex_offer: FlexOffer) -> TimeSeries:
        """The underlying difference series before the norm is applied."""
        return series_difference(flex_offer)

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["norm_order"] = self.norm_order
        return description
