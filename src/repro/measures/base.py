"""Measure framework: base class, characteristics metadata and registry.

Every flexibility measure of the paper is implemented as a small class
deriving from :class:`FlexibilityMeasure`.  A measure knows

* how to compute a single numeric value for one flex-offer (``value``),
* how to combine values over a *set* of flex-offers (``set_value``) —
  Section 4 of the paper states that all measures extend to sets, by
  summation for most measures and by averaging for the relative area-based
  measure,
* its qualitative characteristics (``characteristics``) — the rows of the
  paper's Table 1 — so that the characteristics matrix can be generated
  programmatically and composite measures can check compatibility.

Measures register themselves in a module-level registry keyed by their
``key`` so the analysis, benchmark and reporting code can iterate over "all
measures the paper proposes" without hard-coding the list in many places.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, fields
from enum import Enum
from typing import ClassVar

from ..core.errors import MeasureError
from ..core.flexoffer import FlexOffer

__all__ = [
    "MeasureCharacteristics",
    "FlexibilityMeasure",
    "SetAggregation",
    "register_measure",
    "registered_measures",
    "get_measure",
    "measure_keys",
]


@dataclass(frozen=True)
class MeasureCharacteristics:
    """The qualitative characteristics of a measure (Table 1 of the paper).

    Each boolean corresponds to one row of Table 1; the column for a measure
    is obtained from its ``characteristics`` attribute.
    """

    captures_time: bool
    captures_energy: bool
    captures_time_and_energy: bool
    captures_size: bool
    captures_positive: bool = True
    captures_negative: bool = True
    captures_mixed: bool = True
    single_value: bool = True

    #: Row labels exactly as printed in Table 1, in paper order.
    ROW_LABELS: ClassVar[tuple[tuple[str, str], ...]] = (
        ("captures_time", "Captures time"),
        ("captures_energy", "Captures energy"),
        ("captures_time_and_energy", "Captures time & energy"),
        ("captures_size", "Captures size"),
        ("captures_positive", "Captures positive flex-offers"),
        ("captures_negative", "Captures negative flex-offers"),
        ("captures_mixed", "Captures Mixed flex-offers"),
        ("single_value", "Single Value"),
    )

    def as_row(self) -> tuple[bool, ...]:
        """The characteristics in Table 1 row order."""
        return tuple(getattr(self, field_name) for field_name, _ in self.ROW_LABELS)

    def as_dict(self) -> dict[str, bool]:
        """A ``{field_name: value}`` mapping of all characteristics."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class SetAggregation(Enum):
    """How a measure extends from one flex-offer to a set of flex-offers."""

    #: Sum the per-flex-offer values (product, vector, series, ... — Section 4).
    SUM = "sum"
    #: Average the per-flex-offer values (relative area-based measure — Section 4).
    MEAN = "mean"


class FlexibilityMeasure(abc.ABC):
    """Abstract base class of every flexibility measure.

    Subclasses must define the class attributes ``key`` (a short stable
    identifier), ``label`` (the column header used in Table 1),
    ``characteristics`` and implement :meth:`value`.
    """

    #: Stable identifier, e.g. ``"product"``; used by the registry and CLI-ish code.
    key: ClassVar[str] = ""
    #: Human-readable column label as used in the paper's Table 1.
    label: ClassVar[str] = ""
    #: Qualitative characteristics (the measure's Table 1 column).
    characteristics: ClassVar[MeasureCharacteristics]
    #: How the measure extends to sets of flex-offers.
    set_aggregation: ClassVar[SetAggregation] = SetAggregation.SUM

    # ------------------------------------------------------------------ #
    # Core protocol
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def value(self, flex_offer: FlexOffer) -> float:
        """The flexibility of a single flex-offer under this measure."""

    def combine_values(self, values: Sequence[float]) -> float:
        """Combine already-computed per-flex-offer values into a set value.

        The default combines according to ``set_aggregation``; an empty set
        has zero flexibility (and, for averaging measures, zero is also
        returned rather than raising).  Measures with a non-additive set
        semantics (the assignment measure multiplies counts) override this
        hook rather than :meth:`set_value`, so that callers holding cached
        per-offer values — notably the streaming engine — can reproduce
        ``set_value`` exactly without re-evaluating each flex-offer.
        """
        if not values:
            return 0.0
        if self.set_aggregation is SetAggregation.MEAN:
            return float(sum(values) / len(values))
        return float(sum(values))

    def batch_values(self, matrix: object) -> list[float]:
        """Per-offer values over a packed population (vectorization hook).

        ``matrix`` is a :class:`repro.backend.ProfileMatrix`; the NumPy
        compute backend calls this hook so measures can vectorize their
        arithmetic over the packed ``(amin, amax)`` arrays.  The default
        falls back to the scalar :meth:`value` loop, so the registry keeps
        working for any measure that does not opt in.  Overrides must return
        exactly what the scalar loop would (same values, same exception
        family on bad inputs) — the conformance suite enforces this.
        """
        return [self.value(flex_offer) for flex_offer in matrix.offers]

    def validate_set(self, flex_offers: Sequence[FlexOffer]) -> None:
        """Hook: reject a whole set *before* any member is evaluated.

        Called by :meth:`set_value` on the fully materialised set so that
        measures which cannot evaluate certain members (the area-based
        measures on mixed flex-offers) fail up front instead of mid-
        iteration, after part of the work is already done.  The default
        accepts everything.
        """

    def set_value(self, flex_offers: Iterable[FlexOffer]) -> float:
        """The flexibility of a *set* of flex-offers.

        The set is materialised and validated up front (so a caller's
        iterator is never left half-consumed by a mid-iteration failure),
        then evaluated through the active compute backend — per-offer values
        combined with :meth:`combine_values`.
        """
        from ..backend.dispatch import get_backend

        flex_offers = list(flex_offers)
        self.validate_set(flex_offers)
        return get_backend().measure_set_value(self, flex_offers)

    def __call__(self, flex_offer: FlexOffer) -> float:
        return self.value(flex_offer)

    # ------------------------------------------------------------------ #
    # Applicability
    # ------------------------------------------------------------------ #
    def supports(self, flex_offer: FlexOffer) -> bool:
        """Whether the measure is meaningful for the flex-offer's sign class.

        Derived from the measure's characteristics; measures that cannot
        express mixed flex-offers (the area-based ones, Section 4) return
        ``False`` for mixed inputs.
        """
        if flex_offer.is_mixed:
            return self.characteristics.captures_mixed
        if flex_offer.is_production:
            return self.characteristics.captures_negative
        return self.characteristics.captures_positive

    def describe(self) -> dict[str, object]:
        """A serialisable description of the measure (used by reporting)."""
        return {
            "key": self.key,
            "label": self.label,
            "set_aggregation": self.set_aggregation.value,
            "characteristics": self.characteristics.as_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(key={self.key!r})"


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: dict[str, type[FlexibilityMeasure]] = {}


def register_measure(cls: type[FlexibilityMeasure]) -> type[FlexibilityMeasure]:
    """Class decorator registering a measure under its ``key``.

    Registration is idempotent for the same class but refuses to silently
    overwrite a different class with the same key.
    """
    if not issubclass(cls, FlexibilityMeasure):
        raise TypeError(f"{cls!r} is not a FlexibilityMeasure subclass")
    if not cls.key:
        raise ValueError(f"measure class {cls.__name__} must define a non-empty key")
    existing = _REGISTRY.get(cls.key)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"measure key {cls.key!r} already registered by {existing.__name__}"
        )
    _REGISTRY[cls.key] = cls
    return cls


def registered_measures() -> dict[str, type[FlexibilityMeasure]]:
    """A copy of the measure registry, keyed by measure key."""
    return dict(_REGISTRY)


def measure_keys() -> list[str]:
    """All registered measure keys, in registration (paper) order."""
    return list(_REGISTRY)


def get_measure(key: str, **kwargs: object) -> FlexibilityMeasure:
    """Instantiate a registered measure by key.

    Keyword arguments are forwarded to the measure constructor (for example
    ``norm="l1"`` for the vector and time-series measures).
    """
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise MeasureError(
            f"unknown measure {key!r}; registered measures: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)  # type: ignore[call-arg]
