"""Product flexibility measure (Definition 3 of the paper).

``product_flexibility(f) = tf(f) · ef(f)``.

The paper's Example 3 computes ``5 · 12 = 60`` for the Figure 1 flex-offer.
Section 4 discusses the measure's main weakness, illustrated by Example 11:
whenever either dimension has zero flexibility the product collapses to zero
even though the flex-offer is still flexible in the other dimension, and the
measure is blind to the flex-offer's size (absolute energy amounts).
"""

from __future__ import annotations

from typing import ClassVar

from ..core.flexoffer import FlexOffer
from .base import FlexibilityMeasure, MeasureCharacteristics, register_measure

__all__ = ["ProductFlexibility", "product_flexibility", "legacy_product_flexibility"]


@register_measure
class ProductFlexibility(FlexibilityMeasure):
    """The product flexibility ``tf(f) · ef(f)``.

    Characteristics (Table 1): captures the *combination* of time and energy
    (but neither dimension individually — a zero in either dimension hides
    the other), is size-blind, and applies to positive, negative and mixed
    flex-offers.
    """

    key: ClassVar[str] = "product"
    label: ClassVar[str] = "Product"
    characteristics: ClassVar[MeasureCharacteristics] = MeasureCharacteristics(
        captures_time=False,
        captures_energy=False,
        captures_time_and_energy=True,
        captures_size=False,
    )

    def value(self, flex_offer: FlexOffer) -> float:
        return float(flex_offer.time_flexibility * flex_offer.energy_flexibility)

    def batch_values(self, matrix: object) -> list[float]:
        products = matrix.time_flexibility * matrix.energy_flexibility
        return [float(value) for value in products.tolist()]


def product_flexibility(flex_offer: FlexOffer) -> int:
    """Convenience function returning ``tf(f) · ef(f)`` as an exact integer."""
    return flex_offer.time_flexibility * flex_offer.energy_flexibility


def legacy_product_flexibility(flex_offer: FlexOffer) -> int:
    """The original total flexibility of Šikšnys et al. [15].

    Before the paper introduced total energy constraints, the total (joint)
    flexibility of a flex-offer was defined as the product of the time
    flexibility and the *sum of the per-slice energy flexibilities*.  This
    historical variant is exposed because the aggregation experiments compare
    against it.
    """
    slice_flexibility = sum(s.width for s in flex_offer.slices)
    return flex_offer.time_flexibility * slice_flexibility
