"""Exception hierarchy for the flex-offer library.

All exceptions raised by :mod:`repro` derive from :class:`FlexError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations

__all__ = [
    "FlexError",
    "InvalidFlexOfferError",
    "InvalidAssignmentError",
    "InvalidSliceError",
    "InvalidTimeSeriesError",
    "MeasureError",
    "UnsupportedFlexOfferError",
    "BackendError",
    "AggregationError",
    "DisaggregationError",
    "SchedulingError",
    "MarketError",
    "SerializationError",
    "WorkloadError",
]


class FlexError(Exception):
    """Base class for every error raised by the library."""


class InvalidFlexOfferError(FlexError, ValueError):
    """A flex-offer violates the structural constraints of Definition 1.

    Examples include an empty profile, a latest start time that precedes the
    earliest start time, or total energy constraints outside the bounds
    implied by the slice ranges.
    """


class InvalidSliceError(FlexError, ValueError):
    """An energy slice has an empty range (``amin > amax``) or bad types."""


class InvalidAssignmentError(FlexError, ValueError):
    """An assignment violates the constraints of Definition 2.

    Raised when the start time falls outside the start-time flexibility
    interval, a slice value falls outside its energy range, or the total
    energy violates the flex-offer's total constraints.
    """


class InvalidTimeSeriesError(FlexError, ValueError):
    """A time series is malformed (e.g. negative start time, empty values)."""


class MeasureError(FlexError):
    """Base class for failures while evaluating a flexibility measure."""


class UnsupportedFlexOfferError(MeasureError, TypeError):
    """A measure was applied to a flex-offer class it does not support.

    The canonical example is applying the absolute or relative area-based
    flexibility measure to a *mixed* flex-offer (Section 4 of the paper)
    without explicitly opting in to the Example 15 convention.
    """


class BackendError(FlexError, ValueError):
    """A compute backend is unknown, unavailable or misconfigured.

    Raised by :mod:`repro.backend` when a backend name does not resolve —
    e.g. ``REPRO_BACKEND=numpy`` in an environment without NumPy installed.
    """


class AggregationError(FlexError):
    """Aggregation of a set of flex-offers failed."""


class DisaggregationError(FlexError):
    """An aggregated assignment could not be disaggregated to its members."""


class SchedulingError(FlexError):
    """The scheduler could not produce a valid schedule."""


class MarketError(FlexError):
    """A market operation (bid, clearing, settlement) was invalid."""


class SerializationError(FlexError, ValueError):
    """A flex-offer or schedule could not be (de)serialised."""


class WorkloadError(FlexError, ValueError):
    """A workload/scenario specification was invalid."""
