"""Energy slices — the per-time-unit energy ranges of a flex-offer profile.

Definition 1 of the paper models a flex-offer's energy profile as a sequence
of consecutive *slices*; each slice is an energy range ``[amin, amax]`` with a
duration of one time unit.  :class:`EnergySlice` is the exact, hashable value
type for one such range.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from .errors import InvalidSliceError

__all__ = ["EnergySlice", "parse_slices"]


def _check_int(value: object, label: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidSliceError(f"{label} must be an integer, got {value!r}")
    return value


@dataclass(frozen=True, order=True)
class EnergySlice:
    """An inclusive integer energy range ``[amin, amax]`` for one time unit.

    Positive values represent consumption, negative values production
    (Section 2 of the paper).  A slice with ``amin == amax`` is *inflexible*:
    it admits exactly one energy value.

    Examples
    --------
    >>> s = EnergySlice(1, 3)
    >>> s.width
    2
    >>> s.count
    3
    >>> 2 in s
    True
    """

    amin: int
    amax: int

    def __post_init__(self) -> None:
        _check_int(self.amin, "amin")
        _check_int(self.amax, "amax")
        if self.amin > self.amax:
            raise InvalidSliceError(
                f"slice minimum {self.amin} exceeds maximum {self.amax}"
            )

    # ------------------------------------------------------------------ #
    # Range characteristics
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Energy flexibility of the slice: ``amax - amin``."""
        return self.amax - self.amin

    @property
    def count(self) -> int:
        """Number of admissible integer energy values: ``amax - amin + 1``.

        This is the per-slice factor of the assignment flexibility measure
        (Definition 8).
        """
        return self.amax - self.amin + 1

    @property
    def midpoint(self) -> float:
        """Arithmetic mean of the bounds."""
        return (self.amin + self.amax) / 2.0

    @property
    def is_flexible(self) -> bool:
        """``True`` when the slice admits more than one energy value."""
        return self.amax > self.amin

    # ------------------------------------------------------------------ #
    # Sign classification (Section 2: positive / negative / mixed)
    # ------------------------------------------------------------------ #
    @property
    def is_consumption(self) -> bool:
        """``True`` when every admissible value is non-negative."""
        return self.amin >= 0

    @property
    def is_production(self) -> bool:
        """``True`` when every admissible value is non-positive."""
        return self.amax <= 0

    @property
    def is_mixed(self) -> bool:
        """``True`` when the range spans both negative and positive values."""
        return self.amin < 0 < self.amax

    # ------------------------------------------------------------------ #
    # Membership / iteration
    # ------------------------------------------------------------------ #
    def __contains__(self, value: object) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        return self.amin <= value <= self.amax

    def __iter__(self) -> Iterator[int]:
        """Iterate over every admissible integer energy value."""
        return iter(range(self.amin, self.amax + 1))

    def clamp(self, value: float) -> int:
        """Round ``value`` to the nearest admissible integer inside the range."""
        rounded = int(round(value))
        if rounded < self.amin:
            return self.amin
        if rounded > self.amax:
            return self.amax
        return rounded

    # ------------------------------------------------------------------ #
    # Slice algebra used by aggregation
    # ------------------------------------------------------------------ #
    def __add__(self, other: "EnergySlice") -> "EnergySlice":
        """Minkowski sum of two ranges — used by start-alignment aggregation."""
        if not isinstance(other, EnergySlice):
            return NotImplemented
        return EnergySlice(self.amin + other.amin, self.amax + other.amax)

    def scale(self, factor: int) -> "EnergySlice":
        """Multiply both bounds by a positive integer ``factor``."""
        if factor <= 0:
            raise InvalidSliceError(f"scale factor must be positive, got {factor}")
        return EnergySlice(self.amin * factor, self.amax * factor)

    def intersect(self, other: "EnergySlice") -> "EnergySlice | None":
        """Intersection of two ranges, or ``None`` when they are disjoint."""
        low = max(self.amin, other.amin)
        high = min(self.amax, other.amax)
        if low > high:
            return None
        return EnergySlice(low, high)

    def as_tuple(self) -> tuple[int, int]:
        """Return ``(amin, amax)``."""
        return self.amin, self.amax

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.amin}, {self.amax}]"


def parse_slices(raw: Iterable[object]) -> tuple[EnergySlice, ...]:
    """Normalise a heterogeneous slice specification into ``EnergySlice`` objects.

    Accepted element forms:

    * an :class:`EnergySlice` instance (kept as is),
    * a 2-element ``(amin, amax)`` tuple or list,
    * a single integer ``a`` (shorthand for the inflexible range ``[a, a]``).

    This mirrors the compact notation the paper uses in its examples, e.g.
    ``⟨[1, 3], [2, 4], [0, 5], [0, 3]⟩`` for Figure 1.
    """
    slices: list[EnergySlice] = []
    for index, item in enumerate(raw):
        if isinstance(item, EnergySlice):
            slices.append(item)
        elif isinstance(item, bool):
            raise InvalidSliceError(f"slice #{index} must not be a bool")
        elif isinstance(item, int):
            slices.append(EnergySlice(item, item))
        elif isinstance(item, (tuple, list)) and len(item) == 2:
            amin, amax = item
            slices.append(EnergySlice(_check_int(amin, "amin"), _check_int(amax, "amax")))
        else:
            raise InvalidSliceError(
                f"slice #{index} must be an EnergySlice, (amin, amax) pair or int, "
                f"got {item!r}"
            )
    return tuple(slices)
