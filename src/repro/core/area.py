"""Grid-cell area geometry for flex-offers (Definitions 9–10 of the paper).

The area-based flexibility measures work on a two-dimensional grid
``G = N0 × Z`` whose x axis is discretised time and whose y axis is
discretised energy.  A grid *cell* is identified by its lower-left corner
``(t, e)``; the cell ``(0, 0)`` therefore spans the unit square with corners
``(0, 0)``, ``(0, 1)``, ``(1, 0)``, ``(1, 1)``.

*Area of an assignment* (Definition 9): the set of cells lying between the
assignment's energy values and the x axis.  For a positive value ``v`` at
time ``t`` these are the cells ``(t, 0), ..., (t, v − 1)``; for a negative
value the cells ``(t, −1), ..., (t, v)``; a zero value contributes no cells.

*Area of a flex-offer*: the union of the areas of all valid assignments.
Enumerating ``L(f)`` is exponential, so :func:`flexoffer_area_size` computes
the union per time column from the *effective* per-slice bounds (reachable
under the total constraints), which is exact because every reachable value
set is a contiguous integer interval.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .assignment import Assignment
from .flexoffer import FlexOffer
from .timeseries import TimeSeries

__all__ = [
    "GridCell",
    "assignment_area",
    "assignment_area_size",
    "series_area",
    "flexoffer_area",
    "flexoffer_area_size",
    "flexoffer_column_extents",
    "batch_flexoffer_area_sizes",
]

#: A grid cell identified by its lower-left corner ``(time, energy)``.
GridCell = tuple[int, int]


def _column_cells(time: int, value: int) -> Iterable[GridCell]:
    """Cells between a single energy value and the x axis (Definition 9)."""
    if value > 0:
        return ((time, energy) for energy in range(0, value))
    if value < 0:
        return ((time, energy) for energy in range(value, 0))
    return ()


def series_area(series: TimeSeries) -> set[GridCell]:
    """Area (set of grid cells) covered by a time series (Definition 9).

    Examples
    --------
    The paper's Example 7 / Figure 4:

    >>> sorted(series_area(TimeSeries(1, (2, 1, 3))))
    [(1, 0), (1, 1), (2, 0), (3, 0), (3, 1), (3, 2)]
    """
    cells: set[GridCell] = set()
    for time, value in series.items():
        cells.update(_column_cells(time, int(value)))
    return cells


def assignment_area(assignment: Assignment) -> set[GridCell]:
    """Area covered by an assignment's energy values (Definition 9)."""
    return series_area(assignment.series)


def assignment_area_size(assignment: Assignment) -> int:
    """Number of cells covered by the assignment (= sum of absolute energies)."""
    return sum(abs(value) for value in assignment.values)


def flexoffer_column_extents(flex_offer: FlexOffer) -> dict[int, tuple[int, int]]:
    """Per-time-column extremes of energy reachable by any valid assignment.

    Returns a mapping ``{time: (lowest, highest)}`` where ``lowest <= 0`` and
    ``highest >= 0``: the most negative and most positive energy value any
    valid assignment can exhibit at that absolute time (0 when no slice can
    cover the column with that sign).  The union of assignment areas in a
    column is exactly the cells between those extremes and the axis, because
    each slice's reachable values form a contiguous interval and intermediate
    values are always attainable.
    """
    effective = flex_offer.effective_slice_bounds()
    extents: dict[int, tuple[int, int]] = {}
    for start in range(flex_offer.earliest_start, flex_offer.latest_start + 1):
        for offset, bounds in enumerate(effective):
            time = start + offset
            low = min(bounds.amin, 0)
            high = max(bounds.amax, 0)
            if time in extents:
                previous_low, previous_high = extents[time]
                extents[time] = (min(previous_low, low), max(previous_high, high))
            else:
                extents[time] = (low, high)
    return extents


def flexoffer_area_size(flex_offer: FlexOffer) -> int:
    """Size of the union of all valid assignments' areas.

    This is the quantity ``|⋃_{a ∈ L(f)} area(a)|`` of Definition 10,
    computed in ``O(time_flexibility · slices)`` without enumerating ``L(f)``.
    """
    return sum(
        high - low for low, high in flexoffer_column_extents(flex_offer).values()
    )


def batch_flexoffer_area_sizes(matrix) -> list[int]:
    """Union-of-areas sizes for a whole packed population at once.

    Vectorized counterpart of :func:`flexoffer_area_size` over a
    :class:`repro.backend.ProfileMatrix`; the kernel itself lives with the
    packed representation (:attr:`ProfileMatrix.area_sizes`, cached there)
    so this dependency-free module stays importable without NumPy.
    """
    return matrix.area_sizes


def flexoffer_area(flex_offer: FlexOffer) -> set[GridCell]:
    """The full union-of-areas cell set of a flex-offer.

    Intended for small flex-offers (plots, tests, worked paper examples); for
    measuring flexibility prefer :func:`flexoffer_area_size`, which never
    materialises the cell set.
    """
    cells: set[GridCell] = set()
    for time, (low, high) in flexoffer_column_extents(flex_offer).items():
        for energy in range(low, 0):
            cells.add((time, energy))
        for energy in range(0, high):
            cells.add((time, energy))
    return cells


def union_area_size(series_collection: Sequence[TimeSeries]) -> int:
    """Size of the union of the areas of several explicit time series.

    Provided for verification in tests: on small flex-offers the union of
    the areas of the explicitly enumerated assignments must equal
    :func:`flexoffer_area_size`.
    """
    cells: set[GridCell] = set()
    for series in series_collection:
        cells.update(series_area(series))
    return len(cells)
