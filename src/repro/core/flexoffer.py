"""The flex-offer model (Definition 1 of the paper).

A flex-offer captures the energy flexibility of a prosumer unit (an electric
vehicle, a heat pump, a dishwasher, a solar panel, ...) along two dimensions:

* **time flexibility** — the unit can start anywhere inside the start-time
  interval ``[tes, tls]``;
* **energy (amount) flexibility** — each one-time-unit *slice* of its energy
  profile admits an inclusive range ``[amin, amax]`` of energy amounts, and
  the total energy over all slices is additionally bounded by the total
  constraints ``cmin`` and ``cmax``.

This module provides :class:`FlexOffer`, the immutable value type at the heart
of the library, together with its sign classification (consumption /
production / mixed, Section 2), canonical minimum/maximum assignments
(Definitions 5–6) and the *effective* per-slice bounds induced by the total
constraints, which the area-based measures and the schedulers rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .errors import InvalidFlexOfferError
from .slices import EnergySlice, parse_slices
from .timeseries import TimeSeries

__all__ = ["FlexOffer", "FlexOfferKind"]


class FlexOfferKind(str, Enum):
    """Sign classification of a flex-offer (Section 2 of the paper)."""

    #: All admissible energy values are non-negative (e.g. a dishwasher).
    CONSUMPTION = "consumption"
    #: All admissible energy values are non-positive (e.g. a solar panel).
    PRODUCTION = "production"
    #: The flex-offer admits both signs (e.g. a vehicle-to-grid battery).
    MIXED = "mixed"


@dataclass(frozen=True)
class FlexOffer:
    """An immutable flex-offer ``f = ([tes, tls], ⟨s(1), ..., s(s)⟩)``.

    Parameters
    ----------
    earliest_start:
        ``tes`` — the earliest admissible start time (natural number).
    latest_start:
        ``tls`` — the latest admissible start time, ``>= earliest_start``.
    slices:
        The energy profile: a sequence of :class:`EnergySlice` (or
        ``(amin, amax)`` pairs / plain integers, normalised via
        :func:`repro.core.slices.parse_slices`).
    total_energy_min, total_energy_max:
        The total energy constraints ``cmin`` and ``cmax``.  When omitted
        they default to the sum of the per-slice minima and maxima
        respectively, exactly as the paper does for Figure 1 (Example 2).
    name:
        Optional identifier used by aggregation, scheduling and market code
        to trace a flex-offer back to its prosumer unit.

    Examples
    --------
    The Figure 1 flex-offer of the paper:

    >>> f = FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)])
    >>> f.time_flexibility
    5
    >>> f.energy_flexibility
    12
    """

    earliest_start: int
    latest_start: int
    slices: tuple[EnergySlice, ...]
    total_energy_min: Optional[int] = None
    total_energy_max: Optional[int] = None
    name: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Validation & normalisation
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        for label, value in (
            ("earliest_start", self.earliest_start),
            ("latest_start", self.latest_start),
        ):
            if isinstance(value, bool) or not isinstance(value, int):
                raise InvalidFlexOfferError(f"{label} must be an int, got {value!r}")
            if value < 0:
                raise InvalidFlexOfferError(
                    f"{label} must be non-negative (time domain is N0), got {value}"
                )
        if self.latest_start < self.earliest_start:
            raise InvalidFlexOfferError(
                f"latest start {self.latest_start} precedes earliest start "
                f"{self.earliest_start}"
            )

        slices = parse_slices(self.slices)
        if not slices:
            raise InvalidFlexOfferError("a flex-offer needs at least one slice")
        object.__setattr__(self, "slices", slices)

        profile_min = sum(s.amin for s in slices)
        profile_max = sum(s.amax for s in slices)
        cmin = self.total_energy_min if self.total_energy_min is not None else profile_min
        cmax = self.total_energy_max if self.total_energy_max is not None else profile_max
        for label, value in (("total_energy_min", cmin), ("total_energy_max", cmax)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise InvalidFlexOfferError(f"{label} must be an int, got {value!r}")
        if cmin > cmax:
            raise InvalidFlexOfferError(
                f"total minimum constraint {cmin} exceeds total maximum {cmax}"
            )
        if cmin < profile_min or cmax > profile_max:
            raise InvalidFlexOfferError(
                "total constraints must be bounded by the slice sums: "
                f"cmin={cmin}, cmax={cmax} not within [{profile_min}, {profile_max}]"
            )
        if cmax < profile_min or cmin > profile_max:
            raise InvalidFlexOfferError(
                "total constraints leave no feasible assignment: "
                f"[{cmin}, {cmax}] does not intersect [{profile_min}, {profile_max}]"
            )
        object.__setattr__(self, "total_energy_min", cmin)
        object.__setattr__(self, "total_energy_max", cmax)
        if self.name is not None and not isinstance(self.name, str):
            raise InvalidFlexOfferError(f"name must be a string, got {self.name!r}")
        # Cache the derived quantities that the measures and the streaming
        # engine query repeatedly.  The instance is frozen, so these can never
        # go stale; caching them here turns the per-slice sums inside the
        # measure hot path into plain attribute reads.
        object.__setattr__(self, "_profile_minimum", profile_min)
        object.__setattr__(self, "_profile_maximum", profile_max)
        object.__setattr__(
            self, "_time_flexibility", self.latest_start - self.earliest_start
        )
        object.__setattr__(self, "_energy_flexibility", cmax - cmin)

    # ------------------------------------------------------------------ #
    # Short aliases matching the paper's notation
    # ------------------------------------------------------------------ #
    @property
    def tes(self) -> int:
        """Earliest start time (paper notation)."""
        return self.earliest_start

    @property
    def tls(self) -> int:
        """Latest start time (paper notation)."""
        return self.latest_start

    @property
    def cmin(self) -> int:
        """Total minimum energy constraint (paper notation)."""
        return self.total_energy_min  # type: ignore[return-value]

    @property
    def cmax(self) -> int:
        """Total maximum energy constraint (paper notation)."""
        return self.total_energy_max  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Profile characteristics
    # ------------------------------------------------------------------ #
    @property
    def duration(self) -> int:
        """Number of slices ``s`` — the operating duration in time units."""
        return len(self.slices)

    @property
    def profile_minimum(self) -> int:
        """Sum of the per-slice minima (lower bound on any total energy)."""
        return self._profile_minimum  # type: ignore[attr-defined]

    @property
    def profile_maximum(self) -> int:
        """Sum of the per-slice maxima (upper bound on any total energy)."""
        return self._profile_maximum  # type: ignore[attr-defined]

    @property
    def earliest_end(self) -> int:
        """First time unit *after* the profile when started as early as possible."""
        return self.earliest_start + self.duration

    @property
    def latest_end(self) -> int:
        """First time unit *after* the profile when started as late as possible."""
        return self.latest_start + self.duration

    def time_horizon(self) -> range:
        """All absolute time units that any assignment of the flex-offer may touch."""
        return range(self.earliest_start, self.latest_start + self.duration)

    # ------------------------------------------------------------------ #
    # Flexibility primitives (Section 3.1)
    # ------------------------------------------------------------------ #
    @property
    def time_flexibility(self) -> int:
        """``tf(f) = tls − tes`` (Section 3.1, Example 1)."""
        return self._time_flexibility  # type: ignore[attr-defined]

    @property
    def energy_flexibility(self) -> int:
        """``ef(f) = cmax − cmin`` (Section 3.1, Example 2)."""
        return self._energy_flexibility  # type: ignore[attr-defined]

    @property
    def has_time_flexibility(self) -> bool:
        """``True`` when more than one start time is admissible."""
        return self.time_flexibility > 0

    @property
    def has_energy_flexibility(self) -> bool:
        """``True`` when more than one total energy amount is admissible."""
        return self.energy_flexibility > 0

    # ------------------------------------------------------------------ #
    # Sign classification (Section 2)
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> FlexOfferKind:
        """Sign classification: consumption, production or mixed.

        Following Section 2 of the paper, a flex-offer whose admissible
        energy values are all non-negative is a *positive* (consumption)
        flex-offer, all non-positive a *negative* (production) flex-offer,
        and anything else *mixed*.
        """
        if all(s.is_consumption for s in self.slices):
            return FlexOfferKind.CONSUMPTION
        if all(s.is_production for s in self.slices):
            return FlexOfferKind.PRODUCTION
        return FlexOfferKind.MIXED

    @property
    def is_consumption(self) -> bool:
        """``True`` for a positive (pure consumption) flex-offer."""
        return self.kind is FlexOfferKind.CONSUMPTION

    @property
    def is_production(self) -> bool:
        """``True`` for a negative (pure production) flex-offer."""
        return self.kind is FlexOfferKind.PRODUCTION

    @property
    def is_mixed(self) -> bool:
        """``True`` for a mixed (consumption and production) flex-offer."""
        return self.kind is FlexOfferKind.MIXED

    # ------------------------------------------------------------------ #
    # Effective per-slice bounds under the total constraints
    # ------------------------------------------------------------------ #
    def effective_slice_bounds(self) -> tuple[EnergySlice, ...]:
        """Per-slice bounds actually reachable by *valid* assignments.

        The total constraints ``cmin``/``cmax`` may make the extreme values of
        a slice unreachable: a slice value ``v`` for slice ``i`` is reachable
        iff the remaining slices can still complete the total into
        ``[cmin, cmax]``.  Because every per-slice range is a contiguous
        interval, the reachable set for each slice is itself a contiguous
        interval, computed here exactly.

        The area-based flexibility measures (Definitions 9–10) and the
        schedulers use these effective bounds so they never consider energy
        amounts that no valid assignment can produce.  The result is computed
        once per instance and cached (the instance is frozen, so the bounds
        can never change); aggregation and the streaming engine may therefore
        call this freely on every membership change.
        """
        cached = self.__dict__.get("_effective_bounds")
        if cached is not None:
            return cached
        others_min = self.profile_minimum
        others_max = self.profile_maximum
        effective: list[EnergySlice] = []
        for s in self.slices:
            rest_min = others_min - s.amin
            rest_max = others_max - s.amax
            low = max(s.amin, self.cmin - rest_max)
            high = min(s.amax, self.cmax - rest_min)
            if low > high:  # pragma: no cover - prevented by __post_init__
                raise InvalidFlexOfferError(
                    "total constraints leave no feasible value for a slice"
                )
            effective.append(EnergySlice(low, high))
        bounds = tuple(effective)
        object.__setattr__(self, "_effective_bounds", bounds)
        return bounds

    # ------------------------------------------------------------------ #
    # Index keys
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> int:
        """A cheap, name-independent structural key for in-process indexes.

        Two flex-offers share a fingerprint iff their start-time interval,
        profile and total constraints coincide (the ``name`` label is
        deliberately ignored — it identifies the prosumer, not the offer's
        shape).  Computed lazily and cached on the frozen instance; the
        streaming grid index, the replay adapters and the backend layer's
        packed-matrix cache use it as a structural identity without hashing
        the whole profile repeatedly.

        The key is a 64-bit BLAKE2b digest of an unambiguous text encoding,
        not a tuple ``hash()``: Python's integer hashing maps ``-1`` and
        ``-2`` to the same value (and is trivially correlated on small
        ints), which made structurally different offers collide — fatal for
        a cache keyed on fingerprints.  Digest collisions remain possible in
        principle but are not constructible in practice.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            import hashlib

            payload = repr(
                (
                    self.earliest_start,
                    self.latest_start,
                    self.total_energy_min,
                    self.total_energy_max,
                    tuple((s.amin, s.amax) for s in self.slices),
                )
            ).encode("ascii")
            digest = hashlib.blake2b(payload, digest_size=8).digest()
            cached = int.from_bytes(digest, "big")
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # ------------------------------------------------------------------ #
    # Canonical assignments (Definitions 5 and 6)
    # ------------------------------------------------------------------ #
    def minimum_profile(self) -> tuple[int, ...]:
        """Per-slice minima as a plain tuple."""
        return tuple(s.amin for s in self.slices)

    def maximum_profile(self) -> tuple[int, ...]:
        """Per-slice maxima as a plain tuple."""
        return tuple(s.amax for s in self.slices)

    def minimum_assignment(self) -> TimeSeries:
        """The minimum assignment ``f_a^min`` (Definition 5).

        The profile uses every slice's minimum value and starts at the
        earliest start time.  Note that, per the paper's definition, the
        minimum assignment ignores the total minimum constraint; it is used
        only as the anchor of the time-series flexibility measure.
        """
        return TimeSeries(self.earliest_start, self.minimum_profile())

    def maximum_assignment(self) -> TimeSeries:
        """The maximum assignment ``f_a^max`` (Definition 6).

        The profile uses every slice's maximum value and starts at the
        latest start time.
        """
        return TimeSeries(self.latest_start, self.maximum_profile())

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def shift(self, delta: int) -> "FlexOffer":
        """Return a copy with the start-time interval shifted by ``delta``."""
        return FlexOffer(
            self.earliest_start + delta,
            self.latest_start + delta,
            self.slices,
            self.total_energy_min,
            self.total_energy_max,
            self.name,
        )

    def with_name(self, name: str) -> "FlexOffer":
        """Return a copy carrying the given identifier."""
        return FlexOffer(
            self.earliest_start,
            self.latest_start,
            self.slices,
            self.total_energy_min,
            self.total_energy_max,
            name,
        )

    def without_time_flexibility(self, start: Optional[int] = None) -> "FlexOffer":
        """Return a copy pinned to a single start time (``tf = 0``).

        ``start`` defaults to the earliest start time and must lie inside
        the original start-time interval.
        """
        pinned = self.earliest_start if start is None else start
        if not self.earliest_start <= pinned <= self.latest_start:
            raise InvalidFlexOfferError(
                f"start {pinned} outside [{self.earliest_start}, {self.latest_start}]"
            )
        return FlexOffer(
            pinned, pinned, self.slices,
            self.total_energy_min, self.total_energy_max, self.name,
        )

    def without_energy_flexibility(self, profile: Optional[Sequence[int]] = None) -> "FlexOffer":
        """Return a copy whose slices are pinned to single values (``ef = 0``).

        ``profile`` defaults to the smallest feasible profile: the per-slice
        minima, topped up (in profile order) until the total reaches ``cmin``
        so the pinned profile always satisfies the total constraints.  When
        ``profile`` is given explicitly it must be admissible for every slice
        and for the total constraints.
        """
        if profile is not None:
            values: tuple[int, ...] = tuple(profile)
        else:
            minimum = list(self.minimum_profile())
            deficit = self.cmin - sum(minimum)
            for index, energy_slice in enumerate(self.slices):
                if deficit <= 0:
                    break
                bump = min(energy_slice.amax - minimum[index], deficit)
                minimum[index] += bump
                deficit -= bump
            values = tuple(minimum)
        if len(values) != self.duration:
            raise InvalidFlexOfferError(
                f"profile length {len(values)} does not match {self.duration} slices"
            )
        for value, s in zip(values, self.slices):
            if value not in s:
                raise InvalidFlexOfferError(f"profile value {value} outside slice {s}")
        total = sum(values)
        if not self.cmin <= total <= self.cmax:
            raise InvalidFlexOfferError(
                f"pinned profile total {total} violates [{self.cmin}, {self.cmax}]"
            )
        return FlexOffer(
            self.earliest_start,
            self.latest_start,
            tuple(EnergySlice(v, v) for v in values),
            total,
            total,
            self.name,
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def slice_at(self, index: int) -> EnergySlice:
        """Return slice ``index`` (0-based)."""
        return self.slices[index]

    def __iter__(self) -> Iterator[EnergySlice]:
        return iter(self.slices)

    def __len__(self) -> int:
        return self.duration

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        profile = ", ".join(str(s) for s in self.slices)
        label = f" {self.name!r}" if self.name else ""
        return (
            f"FlexOffer{label}([{self.earliest_start}, {self.latest_start}], "
            f"⟨{profile}⟩, cmin={self.cmin}, cmax={self.cmax})"
        )

    # ------------------------------------------------------------------ #
    # Alternate constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def inflexible(
        cls, start: int, profile: Iterable[int], name: Optional[str] = None
    ) -> "FlexOffer":
        """A flex-offer with no flexibility at all: fixed start, fixed profile."""
        values = tuple(profile)
        return cls(start, start, tuple(EnergySlice(v, v) for v in values), name=name)

    @classmethod
    def from_paper_notation(
        cls,
        start_interval: tuple[int, int],
        profile: Iterable[object],
        cmin: Optional[int] = None,
        cmax: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "FlexOffer":
        """Build a flex-offer from the paper's tuple notation.

        Example: ``FlexOffer.from_paper_notation((1, 6), [(1, 3), (2, 4), (0, 5), (0, 3)])``
        builds the Figure 1 flex-offer.
        """
        tes, tls = start_interval
        return cls(tes, tls, parse_slices(profile), cmin, cmax, name)
