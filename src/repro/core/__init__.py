"""Core flex-offer model: slices, flex-offers, assignments, areas.

This subpackage implements Section 2 of the paper (Definitions 1 and 2) plus
the assignment/areas machinery (Definitions 5, 6, 8, 9) that the flexibility
measures in :mod:`repro.measures` build upon.
"""

from .area import (
    GridCell,
    assignment_area,
    assignment_area_size,
    batch_flexoffer_area_sizes,
    flexoffer_area,
    flexoffer_area_size,
    flexoffer_column_extents,
    series_area,
    union_area_size,
)
from .assignment import (
    Assignment,
    assignment_violations,
    batch_assignment_feasibility,
    batch_extreme_assignments,
    batch_feasible_profiles,
    validate_assignment,
)
from .enumeration import (
    count_assignments,
    count_assignments_constrained,
    count_profiles_constrained,
    enumerate_assignments,
    enumerate_profiles,
    enumerate_start_times,
)
from .errors import (
    AggregationError,
    BackendError,
    DisaggregationError,
    FlexError,
    InvalidAssignmentError,
    InvalidFlexOfferError,
    InvalidSliceError,
    InvalidTimeSeriesError,
    MarketError,
    MeasureError,
    SchedulingError,
    SerializationError,
    UnsupportedFlexOfferError,
    WorkloadError,
)
from .flexoffer import FlexOffer, FlexOfferKind
from .slices import EnergySlice, parse_slices
from .timeseries import TimeSeries

__all__ = [
    # time series
    "TimeSeries",
    # slices
    "EnergySlice",
    "parse_slices",
    # flex-offers
    "FlexOffer",
    "FlexOfferKind",
    # assignments
    "Assignment",
    "assignment_violations",
    "validate_assignment",
    "batch_feasible_profiles",
    "batch_assignment_feasibility",
    "batch_extreme_assignments",
    # enumeration
    "count_assignments",
    "count_assignments_constrained",
    "count_profiles_constrained",
    "enumerate_assignments",
    "enumerate_profiles",
    "enumerate_start_times",
    # area geometry
    "GridCell",
    "assignment_area",
    "assignment_area_size",
    "series_area",
    "flexoffer_area",
    "flexoffer_area_size",
    "flexoffer_column_extents",
    "batch_flexoffer_area_sizes",
    "union_area_size",
    # errors
    "FlexError",
    "InvalidFlexOfferError",
    "InvalidAssignmentError",
    "InvalidSliceError",
    "InvalidTimeSeriesError",
    "MeasureError",
    "UnsupportedFlexOfferError",
    "BackendError",
    "AggregationError",
    "DisaggregationError",
    "SchedulingError",
    "MarketError",
    "SerializationError",
    "WorkloadError",
]
