"""Flex-offer assignments (Definition 2 of the paper).

An *assignment* instantiates a flex-offer: it fixes the actual start time and
an exact energy amount for every slice, subject to the per-slice ranges, the
total energy constraints, and the start-time flexibility interval.  The set
of all valid assignments of a flex-offer ``f`` is written ``L(f)`` in the
paper; :func:`repro.core.enumeration.enumerate_assignments` iterates it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from .errors import InvalidAssignmentError
from .flexoffer import FlexOffer
from .timeseries import TimeSeries

__all__ = [
    "Assignment",
    "validate_assignment",
    "assignment_violations",
    "batch_feasible_profiles",
    "batch_assignment_feasibility",
    "batch_extreme_assignments",
]


def assignment_violations(
    flex_offer: FlexOffer, start_time: int, values: Sequence[int]
) -> list[str]:
    """Return a human-readable list of Definition 2 violations (empty if valid).

    The three constraint groups checked are exactly those of Definition 2:

    1. the start time must lie inside ``[tes, tls]``;
    2. every slice value must lie inside its slice's energy range;
    3. the total energy must lie inside ``[cmin, cmax]``.
    """
    violations: list[str] = []
    if isinstance(start_time, bool) or not isinstance(start_time, int):
        violations.append(f"start time must be an int, got {start_time!r}")
        return violations
    if not flex_offer.earliest_start <= start_time <= flex_offer.latest_start:
        violations.append(
            f"start time {start_time} outside start-time interval "
            f"[{flex_offer.earliest_start}, {flex_offer.latest_start}]"
        )
    if len(values) != flex_offer.duration:
        violations.append(
            f"expected {flex_offer.duration} slice values, got {len(values)}"
        )
        return violations
    for index, (value, energy_slice) in enumerate(zip(values, flex_offer.slices)):
        if isinstance(value, bool) or not isinstance(value, int):
            violations.append(f"slice {index}: value must be an int, got {value!r}")
        elif value not in energy_slice:
            violations.append(
                f"slice {index}: value {value} outside range {energy_slice}"
            )
    total = sum(values)
    if not flex_offer.cmin <= total <= flex_offer.cmax:
        violations.append(
            f"total energy {total} outside total constraints "
            f"[{flex_offer.cmin}, {flex_offer.cmax}]"
        )
    return violations


def validate_assignment(
    flex_offer: FlexOffer, start_time: int, values: Sequence[int]
) -> None:
    """Raise :class:`InvalidAssignmentError` if the assignment is not valid."""
    violations = assignment_violations(flex_offer, start_time, values)
    if violations:
        raise InvalidAssignmentError(
            f"invalid assignment of {flex_offer}: " + "; ".join(violations)
        )


@dataclass(frozen=True)
class Assignment:
    """A valid instantiation of a flex-offer.

    Parameters
    ----------
    flex_offer:
        The flex-offer being instantiated.
    start_time:
        The actual start time, inside ``[tes, tls]``.
    values:
        The exact energy amount for every slice of the flex-offer.

    Construction validates all Definition 2 constraints and raises
    :class:`~repro.core.errors.InvalidAssignmentError` on violation.

    Examples
    --------
    >>> f = FlexOffer(1, 6, [(1, 3), (2, 4), (0, 5), (0, 3)])
    >>> a = Assignment(f, 2, (2, 3, 1, 2))
    >>> a.total_energy
    8
    >>> a.series.to_dict()
    {2: 2, 3: 3, 4: 1, 5: 2}
    """

    flex_offer: FlexOffer
    start_time: int
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        normalized = tuple(self.values)
        object.__setattr__(self, "values", normalized)
        validate_assignment(self.flex_offer, self.start_time, normalized)

    # ------------------------------------------------------------------ #
    # Time-series view
    # ------------------------------------------------------------------ #
    @property
    def series(self) -> TimeSeries:
        """The assignment as a :class:`TimeSeries` anchored at the start time."""
        return TimeSeries(self.start_time, self.values)

    @property
    def end_time(self) -> int:
        """Absolute time of the last slice (inclusive)."""
        return self.start_time + len(self.values) - 1

    @property
    def total_energy(self) -> int:
        """Sum of the slice energy amounts."""
        return sum(self.values)

    @property
    def duration(self) -> int:
        """Number of slices."""
        return len(self.values)

    def energy_at(self, time: int) -> int:
        """Energy amount at absolute time ``time`` (0 outside the profile)."""
        return int(self.series[time])

    # ------------------------------------------------------------------ #
    # Derived assignments
    # ------------------------------------------------------------------ #
    def shifted(self, delta: int) -> "Assignment":
        """Return the same profile started ``delta`` time units later.

        Raises :class:`InvalidAssignmentError` if the new start time falls
        outside the flex-offer's start-time flexibility interval.
        """
        return Assignment(self.flex_offer, self.start_time + delta, self.values)

    def with_values(self, values: Sequence[int]) -> "Assignment":
        """Return an assignment at the same start time with different values."""
        return Assignment(self.flex_offer, self.start_time, tuple(values))

    # ------------------------------------------------------------------ #
    # Canonical constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def trusted(
        cls, flex_offer: FlexOffer, start_time: int, values: Sequence[int]
    ) -> "Assignment":
        """Construct without re-running Definition 2 validation.

        For callers that already established validity in bulk — a ``True``
        verdict from :func:`batch_assignment_feasibility` for exactly this
        ``(flex_offer, start_time, values)`` triple — re-validating inside
        ``__init__`` would repeat the per-slice scan per object and undo the
        batch win.  The schedulers use this after screening a whole
        generation of candidates in one backend call.  Passing an unchecked
        triple breaks the class invariant; when in doubt, use the normal
        constructor.
        """
        instance = object.__new__(cls)
        object.__setattr__(instance, "flex_offer", flex_offer)
        object.__setattr__(instance, "start_time", start_time)
        object.__setattr__(instance, "values", tuple(values))
        return instance

    @classmethod
    def earliest_minimum(cls, flex_offer: FlexOffer) -> "Assignment":
        """The earliest-start assignment using the *effective* slice minima.

        This is the valid counterpart of Definition 5: the paper's minimum
        assignment uses raw slice minima, which may violate a strictly
        positive ``cmin``; this constructor tops slices up (in profile order)
        until the total reaches ``cmin`` so the result is always a member of
        ``L(f)``.
        """
        values = _feasible_profile(flex_offer, target="min")
        return cls(flex_offer, flex_offer.earliest_start, values)

    @classmethod
    def latest_maximum(cls, flex_offer: FlexOffer) -> "Assignment":
        """The latest-start assignment using the *effective* slice maxima.

        Valid counterpart of Definition 6 (values are trimmed down, in
        profile order, until the total drops to ``cmax``).
        """
        values = _feasible_profile(flex_offer, target="max")
        return cls(flex_offer, flex_offer.latest_start, values)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f" of {self.flex_offer.name!r}" if self.flex_offer.name else ""
        return (
            f"Assignment{label}(start={self.start_time}, "
            f"values={list(self.values)}, total={self.total_energy})"
        )


def batch_feasible_profiles(
    flex_offers: Sequence[FlexOffer], target: str = "min"
) -> list[tuple[int, ...]]:
    """Extreme feasible profiles for a whole population at once.

    ``target="min"`` returns each offer's minimal-total profile (the values
    of :meth:`Assignment.earliest_minimum`), ``"max"`` the maximal-total
    profile (:meth:`Assignment.latest_maximum`).  Dispatches to the active
    compute backend, so the NumPy backend evaluates the greedy top-up /
    trim-down for every offer in a handful of array operations.
    """
    from ..backend.dispatch import get_backend

    if target not in ("min", "max"):
        raise ValueError(f"unknown target {target!r}")
    return get_backend().feasible_profiles(list(flex_offers), target)


def batch_assignment_feasibility(
    flex_offers: Sequence[FlexOffer],
    starts: Sequence[int],
    values: Sequence[Sequence[int]],
) -> list[bool]:
    """Definition 2 validity of one candidate assignment per flex-offer.

    Equivalent to ``[not assignment_violations(f, s, v) for ...]`` but
    evaluated through the active compute backend — the bulk form schedulers
    and market clearing use to screen candidate schedules.
    """
    from ..backend.dispatch import get_backend

    flex_offers = list(flex_offers)
    if not len(flex_offers) == len(starts) == len(values):
        raise InvalidAssignmentError(
            f"mismatched batch lengths: {len(flex_offers)} flex-offers, "
            f"{len(starts)} start times, {len(values)} profiles"
        )
    return get_backend().assignment_feasibility(flex_offers, starts, values)


def batch_extreme_assignments(
    flex_offers: Sequence[FlexOffer],
) -> list[tuple["Assignment", "Assignment"]]:
    """The (earliest-minimum, latest-maximum) assignment pair per offer.

    The two extreme members of ``L(f)`` for every offer, with the profile
    arithmetic done in bulk by the active backend; only the final
    :class:`Assignment` construction (validation included) stays per-object.
    """
    flex_offers = list(flex_offers)
    minima = batch_feasible_profiles(flex_offers, "min")
    maxima = batch_feasible_profiles(flex_offers, "max")
    return [
        (
            Assignment(flex_offer, flex_offer.earliest_start, low),
            Assignment(flex_offer, flex_offer.latest_start, high),
        )
        for flex_offer, low, high in zip(flex_offers, minima, maxima)
    ]


def _feasible_profile(flex_offer: FlexOffer, target: str) -> tuple[int, ...]:
    """A minimal-total or maximal-total profile satisfying the total constraints."""
    if target == "min":
        values = list(flex_offer.minimum_profile())
        deficit = flex_offer.cmin - sum(values)
        if deficit > 0:
            for index, energy_slice in enumerate(flex_offer.slices):
                if deficit <= 0:
                    break
                headroom = energy_slice.amax - values[index]
                bump = min(headroom, deficit)
                values[index] += bump
                deficit -= bump
    elif target == "max":
        values = list(flex_offer.maximum_profile())
        surplus = sum(values) - flex_offer.cmax
        if surplus > 0:
            for index, energy_slice in enumerate(flex_offer.slices):
                if surplus <= 0:
                    break
                slack = values[index] - energy_slice.amin
                drop = min(slack, surplus)
                values[index] -= drop
                surplus -= drop
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown target {target!r}")
    return tuple(values)
