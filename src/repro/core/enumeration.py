"""Enumeration and counting of flex-offer assignments.

The assignment flexibility measure (Definition 8 of the paper) is defined as
the *number* of possible assignments of a flex-offer,

    ``(tls − tes + 1) · Π_i (s(i).amax − s(i).amin + 1)``,

which deliberately ignores the total energy constraints (Section 4 of the
paper notes this explicitly).  This module provides that closed-form count,
an exact count that *does* honour the total constraints (useful for the
library's extended experiments), and lazy generators over the assignment set
``L(f)`` so tests and small examples can materialise assignments without the
combinatorial blow-up ever being forced on large flex-offers.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from functools import lru_cache
from itertools import product
from typing import Optional

from .assignment import Assignment
from .flexoffer import FlexOffer
from .timeseries import TimeSeries

__all__ = [
    "count_assignments",
    "count_assignments_constrained",
    "count_profiles_constrained",
    "enumerate_assignments",
    "enumerate_profiles",
    "enumerate_start_times",
]


def count_assignments(flex_offer: FlexOffer) -> int:
    """Number of assignments per Definition 8 (ignores ``cmin``/``cmax``).

    Examples
    --------
    >>> count_assignments(FlexOffer(0, 2, [(0, 2)]))
    9
    """
    count = flex_offer.latest_start - flex_offer.earliest_start + 1
    for energy_slice in flex_offer.slices:
        count *= energy_slice.count
    return count


def count_profiles_constrained(flex_offer: FlexOffer) -> int:
    """Number of distinct slice-value profiles honouring the total constraints.

    Computed with a dynamic program over the running total, so the cost is
    ``O(slices · total_range)`` rather than the product of slice counts.
    """
    totals: dict[int, int] = {0: 1}
    for energy_slice in flex_offer.slices:
        updated: dict[int, int] = {}
        for partial_total, ways in totals.items():
            for value in range(energy_slice.amin, energy_slice.amax + 1):
                key = partial_total + value
                updated[key] = updated.get(key, 0) + ways
        totals = updated
    return sum(
        ways
        for total, ways in totals.items()
        if flex_offer.cmin <= total <= flex_offer.cmax
    )


def count_assignments_constrained(flex_offer: FlexOffer) -> int:
    """Exact size of ``L(f)``: start-time choices × total-constraint-feasible profiles."""
    start_choices = flex_offer.latest_start - flex_offer.earliest_start + 1
    return start_choices * count_profiles_constrained(flex_offer)


def enumerate_start_times(flex_offer: FlexOffer) -> range:
    """All admissible start times ``[tes, tls]``."""
    return range(flex_offer.earliest_start, flex_offer.latest_start + 1)


def enumerate_profiles(
    flex_offer: FlexOffer, respect_total_constraints: bool = True
) -> Iterator[tuple[int, ...]]:
    """Lazily yield slice-value profiles of the flex-offer.

    Parameters
    ----------
    respect_total_constraints:
        When ``True`` (default) only profiles whose total energy lies inside
        ``[cmin, cmax]`` are yielded, matching Definition 2.  When ``False``
        the raw cross product of the slice ranges is yielded, matching the
        universe counted by Definition 8.
    """
    ranges = [range(s.amin, s.amax + 1) for s in flex_offer.slices]
    for profile in product(*ranges):
        if respect_total_constraints:
            total = sum(profile)
            if not flex_offer.cmin <= total <= flex_offer.cmax:
                continue
        yield profile


def enumerate_assignments(
    flex_offer: FlexOffer,
    respect_total_constraints: bool = True,
    limit: Optional[int] = None,
) -> Iterator[Assignment]:
    """Lazily yield (valid) assignments of the flex-offer.

    Assignments are produced in lexicographic order of
    ``(start_time, profile)``.  ``limit`` caps the number of yielded
    assignments, guarding callers against accidentally materialising the
    combinatorial assignment set of a large flex-offer.
    """
    produced = 0
    profiles = list(enumerate_profiles(flex_offer, respect_total_constraints))
    for start_time in enumerate_start_times(flex_offer):
        for profile in profiles:
            if limit is not None and produced >= limit:
                return
            yield Assignment(flex_offer, start_time, profile)
            produced += 1


def assignment_series(
    flex_offer: FlexOffer, limit: Optional[int] = None
) -> Iterator[TimeSeries]:
    """Lazily yield the time-series view of every valid assignment."""
    for assignment in enumerate_assignments(flex_offer, limit=limit):
        yield assignment.series


@lru_cache(maxsize=4096)
def _slice_count_product(counts: tuple[int, ...]) -> int:
    result = 1
    for count in counts:
        result *= count
    return result


def count_assignments_fast(flex_offer: FlexOffer) -> int:
    """Cached variant of :func:`count_assignments` used by benchmark sweeps."""
    start_choices = flex_offer.latest_start - flex_offer.earliest_start + 1
    counts = tuple(s.count for s in flex_offer.slices)
    return start_choices * _slice_count_product(counts)
