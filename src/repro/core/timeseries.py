"""Discrete-time integer-valued time series.

The flex-offer model of the paper (Section 2) works on a discrete time axis
with the domain of natural numbers and an energy domain of integers.  Both
flex-offer *assignments* (Definition 2) and the *difference* between two
assignments used by the time-series flexibility measure (Definition 7) are
time series, so this module provides the small, exact (integer friendly)
time-series type the rest of the library builds upon.

A :class:`TimeSeries` is a contiguous sequence of numeric values anchored at
an absolute ``start`` time; each value spans exactly one time unit, matching
the unit-length slices of Definition 1.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Union

from .errors import InvalidTimeSeriesError

__all__ = ["TimeSeries", "Number"]

Number = Union[int, float]


@dataclass(frozen=True)
class TimeSeries:
    """A contiguous, discrete time series anchored at an absolute start time.

    Parameters
    ----------
    start:
        The absolute time index (natural number, ``>= 0``) of the first value.
    values:
        The sequence of values, one per time unit.  Values may be integers
        (the common case for energy amounts) or floats (e.g. average
        profiles produced by analysis code).

    Examples
    --------
    >>> ts = TimeSeries(2, (2, 3, 1, 2))
    >>> ts.end
    5
    >>> ts[3]
    3
    >>> ts.total()
    8
    """

    start: int
    values: tuple[Number, ...] = field(default=())

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or isinstance(self.start, bool):
            raise InvalidTimeSeriesError(
                f"start time must be an int, got {self.start!r}"
            )
        if self.start < 0:
            raise InvalidTimeSeriesError(
                f"start time must be non-negative, got {self.start}"
            )
        normalized = tuple(self.values)
        for value in normalized:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise InvalidTimeSeriesError(
                    f"time series values must be numeric, got {value!r}"
                )
        object.__setattr__(self, "values", normalized)

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Number]:
        return iter(self.values)

    def __getitem__(self, time: int) -> Number:
        """Return the value at *absolute* time ``time``.

        Times outside the series' span return ``0``, which matches the
        convention used by the paper when subtracting two assignments that
        start at different times (Example 5): positions not covered by an
        assignment contribute no energy.
        """
        if not isinstance(time, int) or isinstance(time, bool):
            raise TypeError(f"time index must be an int, got {time!r}")
        offset = time - self.start
        if 0 <= offset < len(self.values):
            return self.values[offset]
        return 0

    # ------------------------------------------------------------------ #
    # Span
    # ------------------------------------------------------------------ #
    @property
    def end(self) -> int:
        """The absolute time of the last value (inclusive).

        For an empty series this equals ``start - 1`` so that
        ``end - start + 1 == len(series)`` always holds.
        """
        return self.start + len(self.values) - 1

    @property
    def duration(self) -> int:
        """Number of time units the series spans."""
        return len(self.values)

    def times(self) -> range:
        """The absolute time indices covered by the series."""
        return range(self.start, self.start + len(self.values))

    def items(self) -> Iterator[tuple[int, Number]]:
        """Iterate over ``(absolute_time, value)`` pairs."""
        for offset, value in enumerate(self.values):
            yield self.start + offset, value

    def to_dict(self) -> dict[int, Number]:
        """Return a ``{absolute_time: value}`` mapping."""
        return dict(self.items())

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total(self) -> Number:
        """Sum of all values (the total energy of an assignment)."""
        return sum(self.values)

    def minimum(self) -> Number:
        """Smallest value of the series; ``0`` for an empty series."""
        return min(self.values) if self.values else 0

    def maximum(self) -> Number:
        """Largest value of the series; ``0`` for an empty series."""
        return max(self.values) if self.values else 0

    def is_zero(self) -> bool:
        """``True`` when every value equals zero (or the series is empty)."""
        return all(value == 0 for value in self.values)

    # ------------------------------------------------------------------ #
    # Alignment and arithmetic
    # ------------------------------------------------------------------ #
    def aligned_with(self, other: "TimeSeries") -> tuple[int, int]:
        """Return the smallest common absolute time span of two series.

        The span is returned as an inclusive ``(start, end)`` pair.  If both
        series are empty the span of ``self`` is returned.
        """
        if not isinstance(other, TimeSeries):
            raise TypeError(f"expected TimeSeries, got {type(other).__name__}")
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        if end < start:
            end = start - 1
        return start, end

    def _combine(self, other: "TimeSeries", sign: int) -> "TimeSeries":
        start, end = self.aligned_with(other)
        values = tuple(
            self[t] + sign * other[t] for t in range(start, end + 1)
        )
        return TimeSeries(start, values)

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        """Pointwise sum over the union of the two spans (zero-filled)."""
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self._combine(other, +1)

    def __sub__(self, other: "TimeSeries") -> "TimeSeries":
        """Pointwise difference over the union of the two spans (zero-filled).

        This is exactly the operation used by Definition 7 of the paper to
        compute the time-series flexibility of a flex-offer.
        """
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self._combine(other, -1)

    def __neg__(self) -> "TimeSeries":
        return TimeSeries(self.start, tuple(-value for value in self.values))

    def scale(self, factor: Number) -> "TimeSeries":
        """Return a copy with every value multiplied by ``factor``."""
        return TimeSeries(self.start, tuple(value * factor for value in self.values))

    def shift(self, delta: int) -> "TimeSeries":
        """Return a copy shifted ``delta`` time units to the right.

        ``delta`` may be negative as long as the resulting start time remains
        non-negative (time has the domain of natural numbers, Section 2).
        """
        return TimeSeries(self.start + delta, self.values)

    def trim(self) -> "TimeSeries":
        """Return a copy with leading and trailing zero values removed.

        An all-zero series collapses to an empty series anchored at the
        original start time.
        """
        values = list(self.values)
        leading = 0
        while leading < len(values) and values[leading] == 0:
            leading += 1
        trailing = len(values)
        while trailing > leading and values[trailing - 1] == 0:
            trailing -= 1
        if leading >= trailing:
            return TimeSeries(self.start, ())
        return TimeSeries(self.start + leading, tuple(values[leading:trailing]))

    # ------------------------------------------------------------------ #
    # Norms
    # ------------------------------------------------------------------ #
    def norm(self, order: Number = 2) -> float:
        """Return the L``order`` norm of the series values.

        Supported orders are any positive real number and ``math.inf`` for
        the maximum norm.  The paper uses the Manhattan (``order=1``) and
        Euclidean (``order=2``) norms when quantifying vector and time-series
        flexibility (Examples 4, 5, 12, 13).
        """
        if order == math.inf:
            return float(max((abs(value) for value in self.values), default=0))
        if order <= 0:
            raise ValueError(f"norm order must be positive, got {order}")
        total = sum(abs(value) ** order for value in self.values)
        return float(total ** (1.0 / order))

    def manhattan_norm(self) -> float:
        """The L1 norm of the series values."""
        return float(sum(abs(value) for value in self.values))

    def euclidean_norm(self) -> float:
        """The L2 norm of the series values."""
        return math.sqrt(sum(value * value for value in self.values))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, start: int, duration: int) -> "TimeSeries":
        """A series of ``duration`` zero values starting at ``start``."""
        if duration < 0:
            raise InvalidTimeSeriesError(
                f"duration must be non-negative, got {duration}"
            )
        return cls(start, (0,) * duration)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Number]) -> "TimeSeries":
        """Build a series from a ``{time: value}`` mapping.

        Gaps between the smallest and largest keys are filled with zeros.
        An empty mapping produces an empty series anchored at time 0.
        """
        if not mapping:
            return cls(0, ())
        start = min(mapping)
        end = max(mapping)
        values = tuple(mapping.get(t, 0) for t in range(start, end + 1))
        return cls(start, values)

    @classmethod
    def sum_of(cls, series: Sequence["TimeSeries"]) -> "TimeSeries":
        """Pointwise sum of several series (zero-filled alignment).

        Used, for instance, to compute the total load of a schedule from the
        individual flex-offer assignments.
        """
        series = list(series)
        if not series:
            return cls(0, ())
        start = min(ts.start for ts in series)
        end = max(ts.end for ts in series)
        if end < start:
            return cls(start, ())
        values = [0] * (end - start + 1)
        for ts in series:
            for t, value in ts.items():
                values[t - start] += value
        return cls(start, tuple(values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(str(value) for value in self.values)
        return f"TimeSeries(t={self.start}..{self.end}: [{body}])"
