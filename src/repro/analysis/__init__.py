"""Analysis utilities: comparison matrices, statistics and text reporting."""

from .comparison import MeasurementMatrix, measure_matrix, ranking_agreement
from .reporting import format_comparison, format_loss_report, format_table
from .statistics import (
    SummaryStatistics,
    measure_summary,
    population_summary,
    summarise,
)

__all__ = [
    "MeasurementMatrix",
    "measure_matrix",
    "ranking_agreement",
    "format_table",
    "format_comparison",
    "format_loss_report",
    "SummaryStatistics",
    "summarise",
    "population_summary",
    "measure_summary",
]
