"""Plain-text reporting used by the examples and benchmark harness.

The paper reports its evaluation as tables (Table 1) and worked examples; the
benchmark harness re-creates those as fixed-width text tables on stdout so a
reader can compare them against the paper side by side without any plotting
dependencies.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Optional

__all__ = ["format_table", "format_comparison", "format_loss_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render a fixed-width text table.

    Floats are rounded to ``float_digits``; ``None`` cells print as ``-``.
    """
    def render(cell: object) -> str:
        if cell is None:
            return "-"
        if isinstance(cell, bool):
            return "Yes" if cell else "No"
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    all_rows = [list(headers)] + rendered
    widths = [
        max(len(row[column]) for row in all_rows) for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line.rstrip())
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_comparison(
    comparison: Mapping[str, Mapping[str, float]], title: Optional[str] = None
) -> str:
    """Render the output of :func:`repro.measures.compare_sets` as a table."""
    headers = ["measure", "before", "after", "loss", "retained"]
    rows = [
        [key, stats["before"], stats["after"], stats["loss"], stats["retained"]]
        for key, stats in comparison.items()
    ]
    return format_table(headers, rows, title)


def format_loss_report(reports: Mapping[str, object], measure_keys: Sequence[str]) -> str:
    """Render per-strategy aggregation-loss reports side by side.

    ``reports`` maps strategy name to
    :class:`repro.aggregation.AggregationLossReport`; the table shows the
    retained fraction per measure plus the compression factor.
    """
    headers = ["strategy", "aggregates", "compression"] + [
        f"retained[{key}]" for key in measure_keys
    ]
    rows = []
    for name, report in reports.items():
        row: list[object] = [name, report.aggregate_count, report.compression]
        for key in measure_keys:
            row.append(
                report.per_measure[key]["retained"] if key in report.per_measure else None
            )
        rows.append(row)
    return format_table(headers, rows, "Aggregation flexibility loss by strategy")
