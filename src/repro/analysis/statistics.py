"""Descriptive statistics over flex-offer populations.

Small numeric helpers shared by the benchmarks and examples: distribution
summaries of time/energy flexibility across a population, and measure-value
summaries that EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.flexoffer import FlexOffer
from ..measures.base import FlexibilityMeasure
from ..measures.setwise import MeasureSpec, resolve_measures

__all__ = ["SummaryStatistics", "summarise", "population_summary", "measure_summary"]


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """The summary as a plain dictionary (for CSV / report rows)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarise(values: Iterable[float]) -> SummaryStatistics:
    """Summary statistics of a numeric sample (empty sample → all zeros)."""
    sample = [float(value) for value in values]
    if not sample:
        return SummaryStatistics(0, 0.0, 0.0, 0.0, 0.0)
    mean = sum(sample) / len(sample)
    variance = sum((value - mean) ** 2 for value in sample) / len(sample)
    return SummaryStatistics(
        len(sample), mean, math.sqrt(variance), min(sample), max(sample)
    )


def population_summary(flex_offers: Sequence[FlexOffer]) -> dict[str, SummaryStatistics]:
    """Time-flexibility, energy-flexibility and duration summaries of a population."""
    return {
        "time_flexibility": summarise(f.time_flexibility for f in flex_offers),
        "energy_flexibility": summarise(f.energy_flexibility for f in flex_offers),
        "duration": summarise(f.duration for f in flex_offers),
        "expected_energy": summarise((f.cmin + f.cmax) / 2 for f in flex_offers),
    }


def measure_summary(
    flex_offers: Sequence[FlexOffer],
    measure: MeasureSpec,
) -> SummaryStatistics:
    """Summary of one measure's values over the flex-offers it supports."""
    resolved: FlexibilityMeasure = resolve_measures([measure])[0]
    values = [
        resolved.value(flex_offer)
        for flex_offer in flex_offers
        if resolved.supports(flex_offer)
    ]
    return summarise(values)
