"""Cross-measure comparison of flex-offers.

The whole point of the paper is to *compare* flexibilities: which of two
flex-offers is more flexible, and does the answer depend on the measure?
This module builds the comparison matrices that the examples, benchmarks and
EXPERIMENTS.md report: every flex-offer evaluated under every applicable
measure, pairwise dominance, and per-measure rankings.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.flexoffer import FlexOffer
from ..measures.base import FlexibilityMeasure
from ..measures.setwise import MeasureSpec, resolve_measures

__all__ = ["MeasurementMatrix", "measure_matrix", "ranking_agreement"]


@dataclass(frozen=True)
class MeasurementMatrix:
    """All flex-offers × all measures, with unsupported cells left as ``None``."""

    #: Row labels (flex-offer names, generated when unnamed).
    flexoffer_names: tuple[str, ...]
    #: Column labels (measure keys).
    measure_keys: tuple[str, ...]
    #: ``values[row][column]`` — ``None`` when the measure rejects the flex-offer.
    values: tuple[tuple[Optional[float], ...], ...]

    def value(self, flexoffer_name: str, measure_key: str) -> Optional[float]:
        """Look up one cell by labels."""
        row = self.flexoffer_names.index(flexoffer_name)
        column = self.measure_keys.index(measure_key)
        return self.values[row][column]

    def column(self, measure_key: str) -> dict[str, Optional[float]]:
        """All flex-offer values under one measure."""
        column = self.measure_keys.index(measure_key)
        return {
            name: self.values[row][column]
            for row, name in enumerate(self.flexoffer_names)
        }

    def ranking(self, measure_key: str) -> list[str]:
        """Flex-offer names ordered by decreasing flexibility under one measure.

        Flex-offers the measure does not support are omitted.
        """
        scored = [
            (name, value)
            for name, value in self.column(measure_key).items()
            if value is not None
        ]
        return [name for name, _ in sorted(scored, key=lambda item: -item[1])]

    def as_rows(self) -> list[dict[str, object]]:
        """The matrix as a list of dictionaries (for CSV export / reporting)."""
        rows = []
        for row, name in enumerate(self.flexoffer_names):
            entry: dict[str, object] = {"flex_offer": name}
            for column, key in enumerate(self.measure_keys):
                entry[key] = self.values[row][column]
            rows.append(entry)
        return rows


def measure_matrix(
    flex_offers: Sequence[FlexOffer],
    measures: Optional[Iterable[MeasureSpec]] = None,
) -> MeasurementMatrix:
    """Evaluate every flex-offer under every measure.

    Unsupported combinations (e.g. area-based measures on mixed flex-offers)
    yield ``None`` instead of raising, so the matrix always has full shape.
    """
    resolved = resolve_measures(measures)
    names = tuple(
        flex_offer.name or f"flex-offer-{index}"
        for index, flex_offer in enumerate(flex_offers)
    )
    rows = []
    for flex_offer in flex_offers:
        row: list[Optional[float]] = []
        for measure in resolved:
            row.append(measure.value(flex_offer) if measure.supports(flex_offer) else None)
        rows.append(tuple(row))
    return MeasurementMatrix(names, tuple(m.key for m in resolved), tuple(rows))


def ranking_agreement(
    matrix: MeasurementMatrix, measure_a: str, measure_b: str
) -> float:
    """Pairwise ranking agreement between two measures (1.0 = identical order).

    Computed as the fraction of flex-offer pairs ordered the same way by both
    measures (Kendall-style concordance over the pairs both measures can
    rank).  Ties count as agreement only when both measures tie.
    """
    column_a = matrix.column(measure_a)
    column_b = matrix.column(measure_b)
    names = [
        name
        for name in matrix.flexoffer_names
        if column_a[name] is not None and column_b[name] is not None
    ]
    if len(names) < 2:
        return 1.0
    agreements = 0
    comparisons = 0
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            first, second = names[i], names[j]
            delta_a = column_a[first] - column_a[second]  # type: ignore[operator]
            delta_b = column_b[first] - column_b[second]  # type: ignore[operator]
            comparisons += 1
            if (delta_a > 0 and delta_b > 0) or (delta_a < 0 and delta_b < 0):
                agreements += 1
            elif delta_a == 0 and delta_b == 0:
                agreements += 1
    return agreements / comparisons
