"""Scheduling primitives: schedules and the scheduler interface.

Scenario 1 of the paper: flex-offers "must be scheduled at some point in time
to be able to satisfy the prosumers' energy needs" — the flex-offer
scheduling problem, which the paper notes is similar to the unit commitment
problem and is highly complex for large flex-offer populations.  A *schedule*
fixes one valid assignment per flex-offer; schedulers differ in how they pick
those assignments to track a reference (e.g. forecast wind production).
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.assignment import Assignment
from ..core.errors import SchedulingError
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries

__all__ = ["Schedule", "Scheduler"]


@dataclass(frozen=True)
class Schedule:
    """One valid assignment per scheduled flex-offer."""

    assignments: tuple[Assignment, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignments", tuple(self.assignments))

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self):
        return iter(self.assignments)

    @property
    def flex_offers(self) -> tuple[FlexOffer, ...]:
        """The scheduled flex-offers, in schedule order."""
        return tuple(assignment.flex_offer for assignment in self.assignments)

    def total_load(self) -> TimeSeries:
        """The aggregate load of the schedule (sum of assignment series)."""
        return TimeSeries.sum_of([assignment.series for assignment in self.assignments])

    def total_energy(self) -> int:
        """Total energy over all assignments."""
        return sum(assignment.total_energy for assignment in self.assignments)

    def assignment_for(self, name: str) -> Assignment:
        """Look up the assignment of a flex-offer by its name."""
        for assignment in self.assignments:
            if assignment.flex_offer.name == name:
                return assignment
        raise SchedulingError(f"no assignment for flex-offer named {name!r}")

    def replacing(self, index: int, assignment: Assignment) -> "Schedule":
        """A copy of the schedule with the assignment at ``index`` replaced."""
        updated = list(self.assignments)
        updated[index] = assignment
        return Schedule(tuple(updated))


class Scheduler(abc.ABC):
    """Interface shared by every scheduler in the library."""

    #: Short identifier used in benchmark tables.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        """Produce one valid assignment per flex-offer.

        Parameters
        ----------
        flex_offers:
            The flex-offers to schedule.
        reference:
            Optional reference profile (e.g. forecast renewable production)
            the schedule should track; schedulers that ignore it (such as the
            earliest-start baseline) accept and discard it.
        """

    def __call__(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        return self.schedule(flex_offers, reference)
