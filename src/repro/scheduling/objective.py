"""Scheduling objectives: imbalance between scheduled load and a reference.

The TotalFlex / MIRABEL setting schedules flexible demand so that it follows
fluctuating renewable production (Section 1 of the paper: "let the energy
demand follow the energy supply").  The canonical objective is therefore the
*imbalance* between the schedule's total load and a reference supply profile,
summed over time — either as absolute deviations (the imbalance energy a BRP
would have to settle) or squared deviations (penalising peaks).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.timeseries import TimeSeries
from .base import Schedule

__all__ = [
    "imbalance_series",
    "absolute_imbalance",
    "squared_imbalance",
    "peak_load",
    "ImbalanceObjective",
]


def imbalance_series(load: TimeSeries, reference: Optional[TimeSeries]) -> TimeSeries:
    """The signed deviation ``load − reference`` over the union of their spans.

    A missing reference is treated as the all-zero profile, in which case the
    imbalance is simply the load itself.
    """
    if reference is None:
        return load
    return load - reference


def absolute_imbalance(load: TimeSeries, reference: Optional[TimeSeries]) -> float:
    """Total absolute imbalance energy (the L1 norm of the deviation)."""
    return imbalance_series(load, reference).manhattan_norm()


def squared_imbalance(load: TimeSeries, reference: Optional[TimeSeries]) -> float:
    """Sum of squared deviations (penalises large instantaneous imbalances)."""
    deviation = imbalance_series(load, reference)
    return float(sum(value * value for value in deviation.values))


def peak_load(load: TimeSeries) -> float:
    """The largest absolute instantaneous load of a schedule."""
    return float(max((abs(value) for value in load.values), default=0))


@dataclass(frozen=True)
class ImbalanceObjective:
    """A configurable scheduling objective.

    Parameters
    ----------
    metric:
        ``"absolute"`` (default) or ``"squared"``.
    reference:
        The supply profile the schedule should follow; ``None`` means the
        objective minimises the load itself (pure valley-filling towards 0).
    """

    metric: str = "absolute"
    reference: Optional[TimeSeries] = None

    def __post_init__(self) -> None:
        if self.metric not in ("absolute", "squared"):
            raise ValueError(f"unknown imbalance metric {self.metric!r}")

    def of_load(self, load: TimeSeries) -> float:
        """Objective value of a total-load series."""
        if self.metric == "absolute":
            return absolute_imbalance(load, self.reference)
        return squared_imbalance(load, self.reference)

    def of_schedule(self, schedule: Schedule) -> float:
        """Objective value of a schedule (lower is better)."""
        return self.of_load(schedule.total_load())

    def of_generation(self, schedules: Sequence[Schedule]) -> list[float]:
        """Objective values of many schedules in one backend bulk call.

        Equivalent to ``[self.of_schedule(s) for s in schedules]`` — the
        backend contract guarantees bit-identical floats, so seeded search
        trajectories (tournament selections, elitism ranks) are unchanged —
        but the per-schedule load accumulation is evaluated through the
        active compute backend's
        :meth:`~repro.backend.ComputeBackend.batch_objectives`, one
        vectorized pass under the NumPy backend.  This is how the
        evolutionary scheduler scores a whole generation and the
        hill-climbing scheduler its restart initials.
        """
        from ..backend.dispatch import get_backend

        payload = [
            [
                (assignment.start_time, assignment.values)
                for assignment in schedule.assignments
            ]
            for schedule in schedules
        ]
        return get_backend().batch_objectives(payload, self.reference, self.metric)

    def improvement_over(self, baseline: Schedule, candidate: Schedule) -> float:
        """Relative improvement of ``candidate`` over ``baseline`` (0..1)."""
        baseline_value = self.of_schedule(baseline)
        if baseline_value == 0:
            return 0.0
        return (baseline_value - self.of_schedule(candidate)) / baseline_value
