"""Evolutionary flex-offer scheduler (after Tušar et al., CEC 2012 [12]).

The paper cites evolutionary scheduling of flexible offers as the reference
approach for balancing electricity supply and demand with flex-offers.  This
module implements a compact generational genetic algorithm:

* an **individual** is a complete schedule — one valid assignment per
  flex-offer;
* **fitness** is the (negated) imbalance objective;
* **crossover** is uniform per flex-offer (each gene — an assignment — is
  inherited from either parent);
* **mutation** re-randomises a flex-offer's assignment or nudges its start
  time by one unit;
* **selection** is tournament selection with elitism.

Gene validity is established through the batch backend APIs: mutated genes
are drawn as raw ``(start, values)`` candidates, every offspring gene of a
generation is screened with a single
:func:`~repro.core.assignment.batch_assignment_feasibility` call (one
vectorized pass under the NumPy / sharded backends), and verified genes take
the trusted :class:`Assignment` fast path.  Fitness is batched the same
way: each generation's imbalance objectives are scored with one
:meth:`~repro.scheduling.objective.ImbalanceObjective.of_generation` call
(the backend's ``batch_objectives`` bulk op) instead of a per-schedule
Python fold.  The random draw sequence — and, because the bulk objective is
bit-identical to the scalar one, every selection decision — is unchanged
from the per-gene construction it replaced, so seeded runs reproduce the
same schedules.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional, Union

from ..core.assignment import Assignment, batch_assignment_feasibility
from ..core.errors import SchedulingError
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .base import Schedule, Scheduler
from .greedy import EarliestStartScheduler
from .objective import ImbalanceObjective
from .stochastic import build_validated_schedule, random_profile

__all__ = ["EvolutionaryScheduler"]

#: An offspring gene before validation: an inherited (already valid)
#: assignment, or a raw ``(flex_offer, start, values)`` mutation candidate.
RawGene = Union[Assignment, tuple[FlexOffer, int, tuple[int, ...]]]


class EvolutionaryScheduler(Scheduler):
    """Generational genetic algorithm over complete schedules.

    Parameters
    ----------
    population_size:
        Number of schedules per generation (>= 4).
    generations:
        Number of generations to evolve.
    mutation_rate:
        Per-gene probability of mutating a flex-offer's assignment.
    tournament_size:
        Number of individuals competing in each selection tournament.
    elitism:
        Number of best individuals copied unchanged into the next generation.
    seed:
        Seed of the internal random generator (runs are reproducible).
    objective:
        Imbalance objective; a reference passed to :meth:`schedule`
        overrides the objective's own reference.
    """

    name = "evolutionary"

    def __init__(
        self,
        population_size: int = 20,
        generations: int = 40,
        mutation_rate: float = 0.2,
        tournament_size: int = 3,
        elitism: int = 2,
        seed: int = 0,
        objective: Optional[ImbalanceObjective] = None,
    ) -> None:
        """Validate and store the GA parameters (see class docstring)."""
        if population_size < 4:
            raise SchedulingError("population_size must be >= 4")
        if generations < 1:
            raise SchedulingError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SchedulingError("mutation_rate must lie in [0, 1]")
        if tournament_size < 2:
            raise SchedulingError("tournament_size must be >= 2")
        if not 0 <= elitism < population_size:
            raise SchedulingError("elitism must lie in [0, population_size)")
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament_size = tournament_size
        self.elitism = elitism
        self.seed = seed
        self.objective = objective or ImbalanceObjective()

    # ------------------------------------------------------------------ #
    # GA operators
    # ------------------------------------------------------------------ #
    def _mutate_gene_raw(self, assignment: Assignment, rng: random.Random) -> RawGene:
        """A mutation candidate as a raw triple (validated later, in bulk)."""
        flex_offer = assignment.flex_offer
        if rng.random() < 0.5 and flex_offer.has_time_flexibility:
            delta = rng.choice((-1, 1))
            new_start = min(
                max(assignment.start_time + delta, flex_offer.earliest_start),
                flex_offer.latest_start,
            )
            return (flex_offer, new_start, assignment.values)
        start, values = random_profile(flex_offer, rng)
        return (flex_offer, start, values)

    def _offspring_genes(
        self, parent_a: Schedule, parent_b: Schedule, rng: random.Random
    ) -> list[RawGene]:
        """Uniform crossover then per-gene mutation, construction deferred.

        Draw order matches the former eager implementation exactly: all
        crossover coin flips first, then the mutation draws gene by gene.
        """
        inherited = [
            gene_a if rng.random() < 0.5 else gene_b
            for gene_a, gene_b in zip(parent_a.assignments, parent_b.assignments)
        ]
        return [
            self._mutate_gene_raw(gene, rng)
            if rng.random() < self.mutation_rate
            else gene
            for gene in inherited
        ]

    def _materialise(self, children: list[list[RawGene]]) -> list[Schedule]:
        """Validate every raw gene of a generation in one batch call.

        Inherited genes are already valid assignments; raw mutation
        candidates are screened together through the active compute backend
        and constructed via the trusted fast path (with the validating
        constructor as the error-reporting fallback for any infeasible one).
        """
        flex_offers: list[FlexOffer] = []
        starts: list[int] = []
        values: list[tuple[int, ...]] = []
        positions: list[tuple[int, int]] = []
        for child_index, genes in enumerate(children):
            for gene_index, gene in enumerate(genes):
                if not isinstance(gene, Assignment):
                    flex_offers.append(gene[0])
                    starts.append(gene[1])
                    values.append(gene[2])
                    positions.append((child_index, gene_index))
        if flex_offers:
            feasible = batch_assignment_feasibility(flex_offers, starts, values)
            for (child_index, gene_index), flex_offer, start, profile, valid in zip(
                positions, flex_offers, starts, values, feasible
            ):
                children[child_index][gene_index] = (
                    Assignment.trusted(flex_offer, start, profile)
                    if valid
                    else Assignment(flex_offer, start, profile)
                )
        return [Schedule(tuple(genes)) for genes in children]

    def _tournament(
        self,
        population: list[Schedule],
        fitness: list[float],
        rng: random.Random,
    ) -> Schedule:
        """The fittest of ``tournament_size`` uniformly sampled individuals."""
        best_index = min(
            rng.sample(range(len(population)), k=min(self.tournament_size, len(population))),
            key=lambda index: fitness[index],
        )
        return population[best_index]

    # ------------------------------------------------------------------ #
    # Scheduler interface
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        """Evolve schedules for ``generations`` rounds; the fittest wins.

        Parameters
        ----------
        flex_offers:
            The flex-offers to schedule.
        reference:
            Reference profile to track; overrides the objective's own
            reference when provided.
        """
        if not flex_offers:
            return Schedule(())
        objective = (
            self.objective
            if reference is None
            else ImbalanceObjective(self.objective.metric, reference)
        )
        rng = random.Random(self.seed)

        population: list[Schedule] = [EarliestStartScheduler().schedule(flex_offers)]
        while len(population) < self.population_size:
            population.append(
                build_validated_schedule(
                    flex_offers, [random_profile(f, rng) for f in flex_offers]
                )
            )
        fitness = objective.of_generation(population)

        for _ in range(self.generations):
            ranked = sorted(range(len(population)), key=lambda index: fitness[index])
            next_population: list[Schedule] = [
                population[index] for index in ranked[: self.elitism]
            ]
            pending: list[list[RawGene]] = []
            while len(next_population) + len(pending) < self.population_size:
                parent_a = self._tournament(population, fitness, rng)
                parent_b = self._tournament(population, fitness, rng)
                pending.append(self._offspring_genes(parent_a, parent_b, rng))
            next_population.extend(self._materialise(pending))
            population = next_population
            fitness = objective.of_generation(population)

        best_index = min(range(len(population)), key=lambda index: fitness[index])
        return population[best_index]
