"""Evolutionary flex-offer scheduler (after Tušar et al., CEC 2012 [12]).

The paper cites evolutionary scheduling of flexible offers as the reference
approach for balancing electricity supply and demand with flex-offers.  This
module implements a compact generational genetic algorithm:

* an **individual** is a complete schedule — one valid assignment per
  flex-offer;
* **fitness** is the (negated) imbalance objective;
* **crossover** is uniform per flex-offer (each gene — an assignment — is
  inherited from either parent);
* **mutation** re-randomises a flex-offer's assignment or nudges its start
  time by one unit;
* **selection** is tournament selection with elitism.

The implementation favours clarity over raw speed; the E-SCHED benchmark uses
modest population sizes so the whole experiment runs in seconds.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

from ..core.assignment import Assignment
from ..core.errors import SchedulingError
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .base import Schedule, Scheduler
from .greedy import EarliestStartScheduler
from .objective import ImbalanceObjective
from .stochastic import random_assignment

__all__ = ["EvolutionaryScheduler"]


class EvolutionaryScheduler(Scheduler):
    """Generational genetic algorithm over complete schedules.

    Parameters
    ----------
    population_size:
        Number of schedules per generation (>= 4).
    generations:
        Number of generations to evolve.
    mutation_rate:
        Per-gene probability of mutating a flex-offer's assignment.
    tournament_size:
        Number of individuals competing in each selection tournament.
    elitism:
        Number of best individuals copied unchanged into the next generation.
    seed:
        Seed of the internal random generator (runs are reproducible).
    objective:
        Imbalance objective; a reference passed to :meth:`schedule`
        overrides the objective's own reference.
    """

    name = "evolutionary"

    def __init__(
        self,
        population_size: int = 20,
        generations: int = 40,
        mutation_rate: float = 0.2,
        tournament_size: int = 3,
        elitism: int = 2,
        seed: int = 0,
        objective: Optional[ImbalanceObjective] = None,
    ) -> None:
        if population_size < 4:
            raise SchedulingError("population_size must be >= 4")
        if generations < 1:
            raise SchedulingError("generations must be >= 1")
        if not 0.0 <= mutation_rate <= 1.0:
            raise SchedulingError("mutation_rate must lie in [0, 1]")
        if tournament_size < 2:
            raise SchedulingError("tournament_size must be >= 2")
        if not 0 <= elitism < population_size:
            raise SchedulingError("elitism must lie in [0, population_size)")
        self.population_size = population_size
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.tournament_size = tournament_size
        self.elitism = elitism
        self.seed = seed
        self.objective = objective or ImbalanceObjective()

    # ------------------------------------------------------------------ #
    # GA operators
    # ------------------------------------------------------------------ #
    def _mutate_gene(self, assignment: Assignment, rng: random.Random) -> Assignment:
        flex_offer = assignment.flex_offer
        if rng.random() < 0.5 and flex_offer.has_time_flexibility:
            delta = rng.choice((-1, 1))
            new_start = min(
                max(assignment.start_time + delta, flex_offer.earliest_start),
                flex_offer.latest_start,
            )
            return Assignment(flex_offer, new_start, assignment.values)
        return random_assignment(flex_offer, rng)

    def _crossover(
        self, parent_a: Schedule, parent_b: Schedule, rng: random.Random
    ) -> Schedule:
        genes = tuple(
            gene_a if rng.random() < 0.5 else gene_b
            for gene_a, gene_b in zip(parent_a.assignments, parent_b.assignments)
        )
        return Schedule(genes)

    def _mutate(self, schedule: Schedule, rng: random.Random) -> Schedule:
        genes = tuple(
            self._mutate_gene(gene, rng) if rng.random() < self.mutation_rate else gene
            for gene in schedule.assignments
        )
        return Schedule(genes)

    def _tournament(
        self,
        population: list[Schedule],
        fitness: list[float],
        rng: random.Random,
    ) -> Schedule:
        best_index = min(
            rng.sample(range(len(population)), k=min(self.tournament_size, len(population))),
            key=lambda index: fitness[index],
        )
        return population[best_index]

    # ------------------------------------------------------------------ #
    # Scheduler interface
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        if not flex_offers:
            return Schedule(())
        objective = (
            self.objective
            if reference is None
            else ImbalanceObjective(self.objective.metric, reference)
        )
        rng = random.Random(self.seed)

        population: list[Schedule] = [EarliestStartScheduler().schedule(flex_offers)]
        while len(population) < self.population_size:
            population.append(
                Schedule(tuple(random_assignment(f, rng) for f in flex_offers))
            )
        fitness = [objective.of_schedule(individual) for individual in population]

        for _ in range(self.generations):
            ranked = sorted(range(len(population)), key=lambda index: fitness[index])
            next_population: list[Schedule] = [
                population[index] for index in ranked[: self.elitism]
            ]
            while len(next_population) < self.population_size:
                parent_a = self._tournament(population, fitness, rng)
                parent_b = self._tournament(population, fitness, rng)
                child = self._mutate(self._crossover(parent_a, parent_b, rng), rng)
                next_population.append(child)
            population = next_population
            fitness = [objective.of_schedule(individual) for individual in population]

        best_index = min(range(len(population)), key=lambda index: fitness[index])
        return population[best_index]
