"""Flex-offer scheduling substrate (Scenario 1 of the paper)."""

from .base import Schedule, Scheduler
from .evolutionary import EvolutionaryScheduler
from .greedy import EarliestStartScheduler, GreedyImbalanceScheduler
from .objective import (
    ImbalanceObjective,
    absolute_imbalance,
    imbalance_series,
    peak_load,
    squared_imbalance,
)
from .stochastic import (
    HillClimbingScheduler,
    build_validated_schedule,
    random_assignment,
    random_profile,
)

__all__ = [
    "Schedule",
    "Scheduler",
    "EarliestStartScheduler",
    "GreedyImbalanceScheduler",
    "HillClimbingScheduler",
    "EvolutionaryScheduler",
    "build_validated_schedule",
    "random_assignment",
    "random_profile",
    "ImbalanceObjective",
    "imbalance_series",
    "absolute_imbalance",
    "squared_imbalance",
    "peak_load",
]
