"""Greedy schedulers.

Two deterministic baselines:

* :class:`EarliestStartScheduler` ignores flexibility entirely — every
  flex-offer starts as early as possible with its minimum feasible profile.
  It models today's "charge as soon as plugged in" behaviour and is the
  baseline against which the value of flexibility is demonstrated.
* :class:`GreedyImbalanceScheduler` processes flex-offers one by one and, for
  each, picks the start time and per-slice energy that minimise the running
  imbalance against a reference profile — a fast constructive heuristic for
  the flex-offer scheduling problem of Scenario 1.

Both schedulers consume the bulk assignment APIs
(:func:`~repro.core.assignment.batch_feasible_profiles`,
:func:`~repro.core.assignment.batch_assignment_feasibility`), which dispatch
through the active compute backend — so large populations transparently gain
the NumPy / sharded speedups without any scheduler-side configuration.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from ..core.assignment import (
    Assignment,
    batch_assignment_feasibility,
    batch_feasible_profiles,
    validate_assignment,
)
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .base import Schedule, Scheduler
from .objective import ImbalanceObjective

__all__ = ["EarliestStartScheduler", "GreedyImbalanceScheduler"]


class EarliestStartScheduler(Scheduler):
    """Schedule every flex-offer at its earliest start with minimal energy.

    The scheduler discards the reference profile; it exists as the
    no-flexibility-used baseline for the E-SCHED experiment.  The minimal
    feasible profiles of the whole population are computed in one
    :func:`batch_feasible_profiles` call (one vectorized pass under the
    NumPy and sharded backends), equivalent to
    :meth:`Assignment.earliest_minimum` per offer.
    """

    name = "earliest-start"

    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        """One earliest-start, minimum-energy assignment per flex-offer.

        Parameters
        ----------
        flex_offers:
            The flex-offers to schedule.
        reference:
            Accepted for interface compatibility and ignored.
        """
        flex_offers = list(flex_offers)
        profiles = batch_feasible_profiles(flex_offers, "min")
        starts = [flex_offer.earliest_start for flex_offer in flex_offers]
        # Screen in bulk too, so construction can take the trusted fast path
        # instead of re-running the per-slice scalar validation per offer
        # (any infeasible profile — impossible by construction — still gets
        # the validating constructor's diagnostic).
        feasible = batch_assignment_feasibility(flex_offers, starts, profiles)
        assignments = [
            Assignment.trusted(flex_offer, start, values)
            if valid
            else Assignment(flex_offer, start, values)
            for flex_offer, start, values, valid in zip(
                flex_offers, starts, profiles, feasible
            )
        ]
        return Schedule(tuple(assignments))


class GreedyImbalanceScheduler(Scheduler):
    """Constructive greedy scheduler tracking a reference profile.

    For every flex-offer (processed in the given order) the scheduler
    enumerates all start times and, per start time, greedily chooses each
    slice's energy so the running load approaches the reference in that
    column; the start time with the lowest resulting objective wins.  The
    candidate profiles of one flex-offer — one per start time — are screened
    with a single :func:`batch_assignment_feasibility` call, and only the
    winning candidate is materialised as an :class:`Assignment`.

    Parameters
    ----------
    objective:
        The imbalance objective; its reference profile is also used for the
        per-column energy choice.  When omitted, an absolute-imbalance
        objective with a zero reference is used.
    """

    name = "greedy-imbalance"

    def __init__(self, objective: Optional[ImbalanceObjective] = None) -> None:
        """See the class docstring for the parameter semantics."""
        self.objective = objective or ImbalanceObjective()

    def _choose_profile(
        self,
        flex_offer: FlexOffer,
        start: int,
        load: dict[int, float],
        reference: Optional[TimeSeries],
    ) -> tuple[int, ...]:
        """Pick per-slice energies that locally track the reference."""
        bounds = flex_offer.effective_slice_bounds()
        values: list[int] = []
        for offset, energy_slice in enumerate(bounds):
            time = start + offset
            target = reference[time] if reference is not None else 0
            current = load.get(time, 0)
            desired = target - current
            values.append(energy_slice.clamp(desired))
        # Repair the total so it satisfies the flex-offer's total constraints.
        total = sum(values)
        if total < flex_offer.cmin:
            deficit = flex_offer.cmin - total
            for index, energy_slice in enumerate(bounds):
                if deficit <= 0:
                    break
                headroom = energy_slice.amax - values[index]
                take = min(headroom, deficit)
                values[index] += take
                deficit -= take
        elif total > flex_offer.cmax:
            surplus = total - flex_offer.cmax
            for index, energy_slice in enumerate(bounds):
                if surplus <= 0:
                    break
                slack = values[index] - energy_slice.amin
                drop = min(slack, surplus)
                values[index] -= drop
                surplus -= drop
        return tuple(values)

    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        """Greedily assign each flex-offer to its imbalance-minimising start.

        Parameters
        ----------
        flex_offers:
            The flex-offers to schedule, processed in the given order.
        reference:
            Reference profile to track; overrides the objective's own
            reference when provided.
        """
        objective = (
            self.objective
            if reference is None
            else ImbalanceObjective(self.objective.metric, reference)
        )
        load: dict[int, float] = {}
        assignments: list[Assignment] = []
        for flex_offer in flex_offers:
            starts = list(
                range(flex_offer.earliest_start, flex_offer.latest_start + 1)
            )
            candidates = [
                self._choose_profile(flex_offer, start, load, objective.reference)
                for start in starts
            ]
            feasible = batch_assignment_feasibility(
                [flex_offer] * len(starts), starts, candidates
            )
            best: Optional[tuple[int, tuple[int, ...]]] = None
            best_value = float("inf")
            for start, values, valid in zip(starts, candidates, feasible):
                if not valid:  # pragma: no cover - repair always succeeds
                    # Diagnose loudly (InvalidAssignmentError naming the
                    # violation, as the eager constructor used to) rather
                    # than silently dropping the candidate.
                    validate_assignment(flex_offer, start, values)
                candidate_load = dict(load)
                for time, value in TimeSeries(start, values).items():
                    candidate_load[time] = candidate_load.get(time, 0) + value
                series = TimeSeries.from_mapping(
                    {t: v for t, v in candidate_load.items()}
                )
                value = objective.of_load(series)
                if value < best_value:
                    best_value = value
                    best = (start, values)
            assert best is not None  # at least one start time always exists
            chosen = Assignment.trusted(flex_offer, best[0], best[1])
            assignments.append(chosen)
            for time, value in chosen.series.items():
                load[time] = load.get(time, 0) + value
        return Schedule(tuple(assignments))
