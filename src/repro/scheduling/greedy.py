"""Greedy schedulers.

Two deterministic baselines:

* :class:`EarliestStartScheduler` ignores flexibility entirely — every
  flex-offer starts as early as possible with its minimum feasible profile.
  It models today's "charge as soon as plugged in" behaviour and is the
  baseline against which the value of flexibility is demonstrated.
* :class:`GreedyImbalanceScheduler` processes flex-offers one by one and, for
  each, picks the start time and per-slice energy that minimise the running
  imbalance against a reference profile — a fast constructive heuristic for
  the flex-offer scheduling problem of Scenario 1.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

from ..core.assignment import Assignment
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .base import Schedule, Scheduler
from .objective import ImbalanceObjective

__all__ = ["EarliestStartScheduler", "GreedyImbalanceScheduler"]


class EarliestStartScheduler(Scheduler):
    """Schedule every flex-offer at its earliest start with minimal energy.

    The scheduler discards the reference profile; it exists as the
    no-flexibility-used baseline for the E-SCHED experiment.
    """

    name = "earliest-start"

    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        assignments = [
            Assignment.earliest_minimum(flex_offer) for flex_offer in flex_offers
        ]
        return Schedule(tuple(assignments))


class GreedyImbalanceScheduler(Scheduler):
    """Constructive greedy scheduler tracking a reference profile.

    For every flex-offer (processed in the given order) the scheduler
    enumerates all start times and, per start time, greedily chooses each
    slice's energy so the running load approaches the reference in that
    column; the start time with the lowest resulting objective wins.

    Parameters
    ----------
    objective:
        The imbalance objective; its reference profile is also used for the
        per-column energy choice.  When omitted, an absolute-imbalance
        objective with a zero reference is used.
    """

    name = "greedy-imbalance"

    def __init__(self, objective: Optional[ImbalanceObjective] = None) -> None:
        self.objective = objective or ImbalanceObjective()

    def _choose_profile(
        self,
        flex_offer: FlexOffer,
        start: int,
        load: dict[int, float],
        reference: Optional[TimeSeries],
    ) -> tuple[int, ...]:
        """Pick per-slice energies that locally track the reference."""
        bounds = flex_offer.effective_slice_bounds()
        values: list[int] = []
        for offset, energy_slice in enumerate(bounds):
            time = start + offset
            target = reference[time] if reference is not None else 0
            current = load.get(time, 0)
            desired = target - current
            values.append(energy_slice.clamp(desired))
        # Repair the total so it satisfies the flex-offer's total constraints.
        total = sum(values)
        if total < flex_offer.cmin:
            deficit = flex_offer.cmin - total
            for index, energy_slice in enumerate(bounds):
                if deficit <= 0:
                    break
                headroom = energy_slice.amax - values[index]
                take = min(headroom, deficit)
                values[index] += take
                deficit -= take
        elif total > flex_offer.cmax:
            surplus = total - flex_offer.cmax
            for index, energy_slice in enumerate(bounds):
                if surplus <= 0:
                    break
                slack = values[index] - energy_slice.amin
                drop = min(slack, surplus)
                values[index] -= drop
                surplus -= drop
        return tuple(values)

    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        objective = (
            self.objective
            if reference is None
            else ImbalanceObjective(self.objective.metric, reference)
        )
        load: dict[int, float] = {}
        assignments: list[Assignment] = []
        for flex_offer in flex_offers:
            best: Optional[Assignment] = None
            best_value = float("inf")
            for start in range(flex_offer.earliest_start, flex_offer.latest_start + 1):
                values = self._choose_profile(
                    flex_offer, start, load, objective.reference
                )
                candidate = Assignment(flex_offer, start, values)
                candidate_load = dict(load)
                for time, value in candidate.series.items():
                    candidate_load[time] = candidate_load.get(time, 0) + value
                series = TimeSeries.from_mapping(
                    {t: v for t, v in candidate_load.items()}
                )
                value = objective.of_load(series)
                if value < best_value:
                    best_value = value
                    best = candidate
            assert best is not None  # at least one start time always exists
            assignments.append(best)
            for time, value in best.series.items():
                load[time] = load.get(time, 0) + value
        return Schedule(tuple(assignments))
