"""Stochastic local-search scheduler (hill climbing with restarts).

A randomised improvement heuristic for the flex-offer scheduling problem:
starting from a random (or greedy) schedule, the scheduler repeatedly mutates
one flex-offer's assignment (new start time and/or new per-slice energies)
and keeps the mutation when the objective improves.  It sits between the
greedy constructive heuristic and the evolutionary scheduler in solution
quality and runtime, and gives the E-SCHED benchmark a mid-strength
reference point.

Random candidate generation is split in two layers so whole schedules can be
validated through the batch backend APIs: :func:`random_profile` draws a raw
``(start, values)`` candidate (always repaired into validity), and
:func:`random_assignment` wraps it in a validating :class:`Assignment`.
Bulk consumers — the random initial schedules here and the evolutionary
scheduler's offspring — collect raw candidates first, screen them with one
:func:`~repro.core.assignment.batch_assignment_feasibility` call, and
construct the assignments through the trusted fast path.  The restart
initial schedules are likewise *scored* in one bulk call
(:meth:`~repro.scheduling.objective.ImbalanceObjective.of_generation`),
which is bit-identical to the per-schedule fold it replaced — and so is
the hill-climbing inner loop itself: candidate mutations are evaluated in
small speculative batches (``speculation``) through the same bulk call
without changing the accept/reject draw order (see
:meth:`HillClimbingScheduler._climb`).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Optional

from ..core.assignment import Assignment, batch_assignment_feasibility
from ..core.flexoffer import FlexOffer
from ..core.timeseries import TimeSeries
from .base import Schedule, Scheduler
from .greedy import EarliestStartScheduler
from .objective import ImbalanceObjective

__all__ = [
    "random_profile",
    "random_assignment",
    "build_validated_schedule",
    "HillClimbingScheduler",
]


def random_profile(
    flex_offer: FlexOffer, rng: random.Random
) -> tuple[int, tuple[int, ...]]:
    """A uniformly random valid ``(start, values)`` candidate.

    Start time and per-slice values are drawn uniformly from the effective
    bounds; the total is then repaired into ``[cmin, cmax]`` if necessary.
    The draw sequence is part of the seeded-reproducibility contract shared
    with :func:`random_assignment`.
    """
    start = rng.randint(flex_offer.earliest_start, flex_offer.latest_start)
    bounds = flex_offer.effective_slice_bounds()
    values = [rng.randint(b.amin, b.amax) for b in bounds]
    total = sum(values)
    if total < flex_offer.cmin:
        deficit = flex_offer.cmin - total
        for index, b in enumerate(bounds):
            if deficit <= 0:
                break
            take = min(b.amax - values[index], deficit)
            values[index] += take
            deficit -= take
    elif total > flex_offer.cmax:
        surplus = total - flex_offer.cmax
        for index, b in enumerate(bounds):
            if surplus <= 0:
                break
            drop = min(values[index] - b.amin, surplus)
            values[index] -= drop
            surplus -= drop
    return start, tuple(values)


def random_assignment(flex_offer: FlexOffer, rng: random.Random) -> Assignment:
    """A uniformly random valid assignment of the flex-offer.

    The validating single-offer form of :func:`random_profile` (identical
    draw sequence, so seeded runs are unchanged whichever entry point a
    caller uses).
    """
    start, values = random_profile(flex_offer, rng)
    return Assignment(flex_offer, start, values)


def build_validated_schedule(
    flex_offers: Sequence[FlexOffer],
    candidates: Sequence[tuple[int, Sequence[int]]],
) -> Schedule:
    """A schedule from raw candidates, validated in one batch backend call.

    Every ``(start, values)`` candidate is screened with
    :func:`batch_assignment_feasibility`; verified candidates take the
    trusted construction fast path, and any infeasible one falls back to the
    validating constructor so it raises the standard
    :class:`~repro.core.errors.InvalidAssignmentError` naming the violation.
    """
    starts = [start for start, _ in candidates]
    values = [profile for _, profile in candidates]
    feasible = batch_assignment_feasibility(flex_offers, starts, values)
    assignments = tuple(
        Assignment.trusted(flex_offer, start, profile)
        if valid
        else Assignment(flex_offer, start, tuple(profile))
        for flex_offer, start, profile, valid in zip(
            flex_offers, starts, values, feasible
        )
    )
    return Schedule(assignments)


class HillClimbingScheduler(Scheduler):
    """First-improvement hill climbing over per-flex-offer mutations.

    Parameters
    ----------
    iterations:
        Number of mutation attempts.
    restarts:
        Number of independent runs; the best final schedule wins.
    seed:
        Seed of the internal random generator (runs are reproducible).
    objective:
        The imbalance objective; the reference passed to :meth:`schedule`
        overrides the objective's own reference when provided.
    warm_start:
        When ``True`` (default) the search starts from the earliest-start
        baseline schedule, otherwise from a random schedule.
    speculation:
        Number of candidate mutations scored per bulk objective call (the
        backend's ``batch_objectives``).  Candidates are drawn in the same
        rng order as the one-at-a-time loop and scored speculatively
        against the current schedule; on an acceptance the not-yet-visited
        candidates of the batch are re-scored against the new incumbent,
        so every accept/reject decision — and therefore the final schedule
        — is bit-identical to ``speculation=1`` (the former scalar inner
        loop).  Rejection-heavy searches, the hill-climbing steady state,
        amortise one vectorized pass over up to ``speculation``
        candidates.
    """

    name = "hill-climbing"

    def __init__(
        self,
        iterations: int = 500,
        restarts: int = 3,
        seed: int = 0,
        objective: Optional[ImbalanceObjective] = None,
        warm_start: bool = True,
        speculation: int = 8,
    ) -> None:
        """Validate and store the search parameters (see class docstring)."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        if speculation < 1:
            raise ValueError("speculation must be >= 1")
        self.iterations = iterations
        self.restarts = restarts
        self.seed = seed
        self.objective = objective or ImbalanceObjective()
        self.warm_start = warm_start
        self.speculation = speculation

    def _initial(self, flex_offers: Sequence[FlexOffer], rng: random.Random) -> Schedule:
        """The restart's starting schedule (baseline or batch-validated random)."""
        if self.warm_start:
            return EarliestStartScheduler().schedule(flex_offers)
        return build_validated_schedule(
            flex_offers, [random_profile(f, rng) for f in flex_offers]
        )

    def schedule(
        self,
        flex_offers: Sequence[FlexOffer],
        reference: Optional[TimeSeries] = None,
    ) -> Schedule:
        """Hill-climb from the initial schedule; best restart wins.

        Parameters
        ----------
        flex_offers:
            The flex-offers to schedule.
        reference:
            Reference profile to track; overrides the objective's own
            reference when provided.
        """
        if not flex_offers:
            return Schedule(())
        objective = (
            self.objective
            if reference is None
            else ImbalanceObjective(self.objective.metric, reference)
        )
        best_overall: Optional[Schedule] = None
        best_overall_value = float("inf")
        # Every restart owns its rng, so the initial schedules can be built
        # up front and scored with one bulk objective call (bit-identical
        # to the per-restart fold) without perturbing any draw sequence.
        rngs = [
            random.Random(self.seed + restart) for restart in range(self.restarts)
        ]
        initials = [self._initial(flex_offers, rng) for rng in rngs]
        initial_values = objective.of_generation(initials)
        for rng, current, current_value in zip(rngs, initials, initial_values):
            current, current_value = self._climb(
                flex_offers, objective, rng, current, current_value
            )
            if current_value < best_overall_value:
                best_overall, best_overall_value = current, current_value
        assert best_overall is not None
        return best_overall

    def _climb(
        self,
        flex_offers: Sequence[FlexOffer],
        objective: ImbalanceObjective,
        rng: random.Random,
        current: Schedule,
        current_value: float,
    ) -> tuple[Schedule, float]:
        """One restart's inner loop, batched through ``batch_objectives``.

        Mutations are drawn ``speculation`` at a time — the draw sequence
        is exactly the scalar loop's, since drawing never depends on
        acceptance — and scored in one bulk objective call against the
        current schedule.  The verdicts are then consumed in draw order:
        a rejection's speculative score is already exact; an acceptance
        invalidates the scores of the batch's unvisited tail (they were
        computed against the replaced incumbent), which is re-scored
        against the new one without drawing anything.  Because the bulk
        objective is bit-identical to the scalar fold, the accept/reject
        trajectory equals the one-at-a-time loop's exactly.
        """
        remaining = self.iterations
        while remaining > 0:
            batch = min(self.speculation, remaining)
            remaining -= batch
            draws = []
            for _ in range(batch):
                index = rng.randrange(len(flex_offers))
                draws.append((index, random_assignment(flex_offers[index], rng)))
            position = 0
            while position < len(draws):
                candidates = [
                    current.replacing(index, assignment)
                    for index, assignment in draws[position:]
                ]
                values = objective.of_generation(candidates)
                advanced = 0
                for mutated, mutated_value in zip(candidates, values):
                    advanced += 1
                    if mutated_value < current_value:
                        current, current_value = mutated, mutated_value
                        break
                position += advanced
        return current, current_value
