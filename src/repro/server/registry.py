"""The named, capacity-bounded registry of tenant sessions.

One gateway process serves many tenants; each tenant owns a named
:class:`~repro.service.FlexSession` — its own engine, compute backend and
matrix-cache budgets, fully isolated from every other tenant (the PR 5
interleaving guarantee).  The registry is the multi-tenant bookkeeping on
top:

* **create / get / evict** by name, each tenant optionally carrying its
  own :class:`~repro.service.SessionConfig`;
* a **max-sessions cap** with LRU eviction of *idle* sessions (a session
  with requests in flight or queued is never evicted under it);
* optional **idle-TTL expiry**: sessions untouched for ``idle_ttl``
  seconds are closed and dropped on the next sweep.

The registry itself is cheap bookkeeping guarded by a thread lock, so it
can be inspected from worker threads; all structural mutation happens on
the gateway's event-loop thread.
"""

from __future__ import annotations

import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional

from ..service.config import SessionConfig
from ..service.session import FlexSession
from .limits import (
    BadRequestError,
    RegistryFullError,
    SessionExistsError,
    SessionGate,
    UnknownSessionError,
)

__all__ = ["SessionEntry", "SessionRegistry"]

#: Tenant names double as persistence directory names, so they must be
#: plain path components: no separators, no leading dot, no traversal.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


@dataclass
class SessionEntry:
    """One tenant's slot: the session, its queue gate and LRU bookkeeping."""

    name: str
    session: FlexSession
    gate: SessionGate
    created_at: float
    last_used: float
    served: int = 0

    def stats(self) -> dict:
        """A JSON-ready health block for this tenant."""
        payload = dict(self.session.stats())
        payload.update(
            name=self.name,
            served=self.served,
            queued=self.gate.waiting,
            rejected=self.gate.rejected,
        )
        return payload


class SessionRegistry:
    """Named tenant sessions behind one gateway.

    Parameters
    ----------
    max_sessions:
        Hard cap on live sessions.  Creating beyond it evicts the
        least-recently-used *idle* session; when every session is busy the
        create is refused with :class:`RegistryFullError` (HTTP 429).
    idle_ttl:
        Seconds of inactivity after which a session may be swept.  ``None``
        disables TTL expiry.
    default_config:
        :class:`SessionConfig` for tenants created without an explicit
        config (``None`` resolves the environment defaults once, lazily).
    queue_depth, retry_after:
        Per-session :class:`SessionGate` parameters.
    persist_root:
        When set, every tenant becomes durable under
        ``<persist_root>/<name>`` (unless its config already carries an
        explicit ``persist_dir``): sessions log and checkpoint as they
        serve, eviction/expiry checkpoints before closing, and a request
        for a name that is not live but has persisted state **lazily
        recovers** it — the restart story is simply "same persist_root,
        first request per tenant pays its recovery".
    clock:
        Monotonic time source (injectable for TTL tests).

    >>> registry = SessionRegistry(max_sessions=8)
    >>> session = registry.create("tenant-a")
    >>> registry.get("tenant-a") is session
    True
    >>> registry.evict("tenant-a").closed
    True
    >>> len(registry)
    0
    """

    def __init__(
        self,
        max_sessions: int = 1024,
        idle_ttl: Optional[float] = None,
        default_config: Optional[SessionConfig] = None,
        queue_depth: int = 8,
        retry_after: float = 1.0,
        persist_root: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError(f"idle_ttl must be positive, got {idle_ttl}")
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self.persist_root = None if persist_root is None else str(persist_root)
        self._clock = clock
        self._default_config = default_config
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.created = 0
        self.evicted = 0
        self.expired = 0
        self.recovered = 0
        self.sweep_failures = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self, name: str, config: Optional[SessionConfig] = None
    ) -> FlexSession:
        """Create (and register) the named tenant's session.

        Raises :class:`SessionExistsError` on a name collision and
        :class:`RegistryFullError` when the cap is reached and no idle
        session can be evicted.
        """
        with self._lock:
            self._check_name(name)
            self.sweep()
            if name in self._entries:
                raise SessionExistsError(f"session {name!r} already exists")
            self._make_room()
            if config is None:
                config = self._default()
            session = FlexSession(self._persistent_config(name, config))
            if session.recovery is not None:
                self.recovered += 1
            self._insert(name, session)
            return session

    def entry(self, name: str) -> SessionEntry:
        """The named tenant's entry; touches its LRU position.

        Raises :class:`UnknownSessionError` for unknown (or already
        evicted/expired) names.
        """
        with self._lock:
            try:
                entry = self._entries[name]
            except KeyError:
                entry = self._recover(name)
                if entry is None:
                    raise UnknownSessionError(
                        f"unknown session {name!r}"
                    ) from None
            self._entries.move_to_end(name)
            entry.last_used = self._clock()
            return entry

    def get(self, name: str) -> FlexSession:
        """The named tenant's session (LRU-touching); 404-shaped on a miss."""
        return self.entry(name).session

    def evict(self, name: str) -> FlexSession:
        """Close and drop the named session, returning it (now closed)."""
        with self._lock:
            try:
                entry = self._entries.pop(name)
            except KeyError:
                raise UnknownSessionError(f"unknown session {name!r}") from None
            self.evicted += 1
        entry.session.close()
        return entry.session

    def sweep(self, now: Optional[float] = None) -> List[str]:
        """Evict sessions idle past ``idle_ttl``; returns the evicted names.

        Busy sessions (requests running or queued) are left alone even
        when expired — their TTL clock restarts when the request finishes.
        One session's close blowing up (a checkpoint-on-evict ``OSError``,
        say) must not stop the sweep or kill the sweeper task: the failure
        is counted in ``sweep_failures`` (surfaced via ``/healthz``), the
        entry is still dropped, and the sweep moves on.
        """
        if self.idle_ttl is None:
            return []
        now = self._clock() if now is None else now
        swept = []
        with self._lock:
            for name in list(self._entries):
                entry = self._entries[name]
                if entry.gate.busy:
                    continue
                if now - entry.last_used > self.idle_ttl:
                    del self._entries[name]
                    self._close_quietly(entry)
                    self.expired += 1
                    swept.append(name)
        return swept

    def close(self) -> None:
        """Close every session and empty the registry."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.session.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Live session names, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def stats(self) -> dict:
        """Registry-level counters for the gateway health block."""
        with self._lock:
            return {
                "sessions": len(self._entries),
                "max_sessions": self.max_sessions,
                "idle_ttl": self.idle_ttl,
                "created": self.created,
                "evicted": self.evicted,
                "expired": self.expired,
                "recovered": self.recovered,
                "sweep_failures": self.sweep_failures,
                "persist_root": self.persist_root,
            }

    def persistence_health(self) -> dict:
        """Aggregate persistence status across live tenants (``/healthz``).

        ``disabled`` when the gateway has no persistence at all, ``ok``
        when every durable session's WAL is healthy, ``degraded`` when at
        least one suspended — with the offending tenants named, so an
        operator sees *which* volume is failing, not just that one is.
        """
        with self._lock:
            entries = list(self._entries.values())
        durable = 0
        degraded: List[str] = []
        for entry in entries:
            persister = getattr(entry.session, "_persister", None)
            if persister is None:
                continue
            durable += 1
            if persister.degraded:
                degraded.append(entry.name)
        if durable == 0 and self.persist_root is None:
            status = "disabled"
        else:
            status = "degraded" if degraded else "ok"
        return {
            "status": status,
            "durable_sessions": durable,
            "degraded_sessions": sorted(degraded),
        }

    def cluster_health(self) -> dict:
        """Aggregate remote-shard cluster state across tenants (``/healthz``).

        ``disabled`` when no live session fans out to a cluster, ``ok``
        when every host every clustered tenant talks to is ``up``, and
        ``degraded`` otherwise — with a merged per-host table
        (worst-state-wins across tenants) so the operator sees *which*
        worker is suspect or down.
        """
        with self._lock:
            entries = list(self._entries.values())
        clustered = 0
        hosts: dict = {}
        severity = {"up": 0, "suspect": 1, "down": 2}
        for entry in entries:
            backend = getattr(entry.session, "_backend", None)
            health = getattr(backend, "cluster_health", None)
            health = health() if callable(health) else None
            if health is None:
                continue
            clustered += 1
            for address, row in health.items():
                known = hosts.get(address)
                if known is None or (
                    severity.get(row["state"], 2)
                    > severity.get(known["state"], 2)
                ):
                    hosts[address] = dict(row)
        if clustered == 0:
            status = "disabled"
        elif all(row["state"] == "up" for row in hosts.values()):
            status = "ok"
        else:
            status = "degraded"
        return {
            "status": status,
            "clustered_sessions": clustered,
            "hosts": {address: hosts[address] for address in sorted(hosts)},
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _default(self) -> SessionConfig:
        """The shared default config (environment resolved exactly once)."""
        if self._default_config is None:
            self._default_config = SessionConfig()
        return self._default_config

    def _check_name(self, name: str) -> None:
        """Refuse names unusable as persistence path components.

        Tenant names come straight from request URLs and (with a
        ``persist_root``) become directory names, so anything that is not
        a plain path component — separators, ``..``, leading dots — is a
        400, never a filesystem traversal.
        """
        if not _NAME_RE.match(name) or ".." in name:
            raise BadRequestError(
                f"invalid session name {name!r}: use 1-128 characters "
                "[A-Za-z0-9._-] starting with a letter or digit"
            )

    def _make_room(self) -> None:
        """Enforce the session cap, evicting one idle session if needed."""
        if len(self._entries) >= self.max_sessions:
            if not self._evict_lru_idle():
                raise RegistryFullError(
                    f"session cap reached ({self.max_sessions}) and "
                    "every session is busy",
                    retry_after=self.retry_after,
                )

    def _insert(self, name: str, session: FlexSession) -> SessionEntry:
        now = self._clock()
        entry = SessionEntry(
            name=name,
            session=session,
            gate=SessionGate(self.queue_depth, self.retry_after),
            created_at=now,
            last_used=now,
        )
        self._entries[name] = entry
        self.created += 1
        return entry

    def _persistent_config(
        self, name: str, config: SessionConfig
    ) -> SessionConfig:
        """The tenant's config with its persistence directory filled in.

        With no ``persist_root`` (or an explicit ``persist_dir`` already
        on the config) the config passes through untouched.
        """
        if self.persist_root is None or config.persist_dir is not None:
            return config
        payload = config.as_dict()
        payload["persist_dir"] = str(Path(self.persist_root) / name)
        return SessionConfig.from_dict(payload)

    def _recover(self, name: str) -> Optional[SessionEntry]:
        """Lazily revive a tenant from its persisted directory, or ``None``.

        Called under the lock on an ``entry()`` miss.  The session is
        rebuilt with the ``config.json`` persisted when it was first
        created (with the directory itself re-pinned as ``persist_dir``),
        so a recovered tenant runs the same backend, measures and budgets
        it was configured with — and answers bit-identically to a process
        that never restarted.
        """
        if self.persist_root is None:
            return None
        self._check_name(name)
        from ..persist import load_config

        directory = Path(self.persist_root) / name
        payload = load_config(directory)
        if payload is None:
            return None
        payload["persist_dir"] = str(directory)
        config = SessionConfig.from_dict(payload)
        self._make_room()
        session = FlexSession(config)
        self.recovered += 1
        return self._insert(name, session)

    def _evict_lru_idle(self) -> bool:
        """Drop the least-recently-used idle session; False if all busy."""
        for name in list(self._entries):
            entry = self._entries[name]
            if not entry.gate.busy:
                del self._entries[name]
                self._close_quietly(entry)
                self.evicted += 1
                return True
        return False

    def _close_quietly(self, entry: SessionEntry) -> None:
        """Close a swept/evicted session without letting it break the caller.

        The entry is already out of the table; a close failure only costs
        that session its final checkpoint, which ``sweep_failures`` makes
        visible.
        """
        try:
            entry.session.close()
        except Exception:  # noqa: BLE001 - sweep must keep sweeping
            self.sweep_failures += 1
