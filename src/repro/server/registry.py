"""The named, capacity-bounded registry of tenant sessions.

One gateway process serves many tenants; each tenant owns a named
:class:`~repro.service.FlexSession` — its own engine, compute backend and
matrix-cache budgets, fully isolated from every other tenant (the PR 5
interleaving guarantee).  The registry is the multi-tenant bookkeeping on
top:

* **create / get / evict** by name, each tenant optionally carrying its
  own :class:`~repro.service.SessionConfig`;
* a **max-sessions cap** with LRU eviction of *idle* sessions (a session
  with requests in flight or queued is never evicted under it);
* optional **idle-TTL expiry**: sessions untouched for ``idle_ttl``
  seconds are closed and dropped on the next sweep.

The registry itself is cheap bookkeeping guarded by a thread lock, so it
can be inspected from worker threads; all structural mutation happens on
the gateway's event-loop thread.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..service.config import SessionConfig
from ..service.session import FlexSession
from .limits import (
    RegistryFullError,
    SessionExistsError,
    SessionGate,
    UnknownSessionError,
)

__all__ = ["SessionEntry", "SessionRegistry"]


@dataclass
class SessionEntry:
    """One tenant's slot: the session, its queue gate and LRU bookkeeping."""

    name: str
    session: FlexSession
    gate: SessionGate
    created_at: float
    last_used: float
    served: int = 0

    def stats(self) -> dict:
        """A JSON-ready health block for this tenant."""
        payload = dict(self.session.stats())
        payload.update(
            name=self.name,
            served=self.served,
            queued=self.gate.waiting,
            rejected=self.gate.rejected,
        )
        return payload


class SessionRegistry:
    """Named tenant sessions behind one gateway.

    Parameters
    ----------
    max_sessions:
        Hard cap on live sessions.  Creating beyond it evicts the
        least-recently-used *idle* session; when every session is busy the
        create is refused with :class:`RegistryFullError` (HTTP 429).
    idle_ttl:
        Seconds of inactivity after which a session may be swept.  ``None``
        disables TTL expiry.
    default_config:
        :class:`SessionConfig` for tenants created without an explicit
        config (``None`` resolves the environment defaults once, lazily).
    queue_depth, retry_after:
        Per-session :class:`SessionGate` parameters.
    clock:
        Monotonic time source (injectable for TTL tests).

    >>> registry = SessionRegistry(max_sessions=8)
    >>> session = registry.create("tenant-a")
    >>> registry.get("tenant-a") is session
    True
    >>> registry.evict("tenant-a").closed
    True
    >>> len(registry)
    0
    """

    def __init__(
        self,
        max_sessions: int = 1024,
        idle_ttl: Optional[float] = None,
        default_config: Optional[SessionConfig] = None,
        queue_depth: int = 8,
        retry_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if idle_ttl is not None and idle_ttl <= 0:
            raise ValueError(f"idle_ttl must be positive, got {idle_ttl}")
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.queue_depth = queue_depth
        self.retry_after = retry_after
        self._clock = clock
        self._default_config = default_config
        self._entries: "OrderedDict[str, SessionEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.created = 0
        self.evicted = 0
        self.expired = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def create(
        self, name: str, config: Optional[SessionConfig] = None
    ) -> FlexSession:
        """Create (and register) the named tenant's session.

        Raises :class:`SessionExistsError` on a name collision and
        :class:`RegistryFullError` when the cap is reached and no idle
        session can be evicted.
        """
        with self._lock:
            self.sweep()
            if name in self._entries:
                raise SessionExistsError(f"session {name!r} already exists")
            if len(self._entries) >= self.max_sessions:
                if not self._evict_lru_idle():
                    raise RegistryFullError(
                        f"session cap reached ({self.max_sessions}) and "
                        "every session is busy",
                        retry_after=self.retry_after,
                    )
            if config is None:
                config = self._default()
            session = FlexSession(config)
            now = self._clock()
            self._entries[name] = SessionEntry(
                name=name,
                session=session,
                gate=SessionGate(self.queue_depth, self.retry_after),
                created_at=now,
                last_used=now,
            )
            self.created += 1
            return session

    def entry(self, name: str) -> SessionEntry:
        """The named tenant's entry; touches its LRU position.

        Raises :class:`UnknownSessionError` for unknown (or already
        evicted/expired) names.
        """
        with self._lock:
            try:
                entry = self._entries[name]
            except KeyError:
                raise UnknownSessionError(f"unknown session {name!r}") from None
            self._entries.move_to_end(name)
            entry.last_used = self._clock()
            return entry

    def get(self, name: str) -> FlexSession:
        """The named tenant's session (LRU-touching); 404-shaped on a miss."""
        return self.entry(name).session

    def evict(self, name: str) -> FlexSession:
        """Close and drop the named session, returning it (now closed)."""
        with self._lock:
            try:
                entry = self._entries.pop(name)
            except KeyError:
                raise UnknownSessionError(f"unknown session {name!r}") from None
            self.evicted += 1
        entry.session.close()
        return entry.session

    def sweep(self, now: Optional[float] = None) -> List[str]:
        """Evict sessions idle past ``idle_ttl``; returns the evicted names.

        Busy sessions (requests running or queued) are left alone even
        when expired — their TTL clock restarts when the request finishes.
        """
        if self.idle_ttl is None:
            return []
        now = self._clock() if now is None else now
        swept = []
        with self._lock:
            for name in list(self._entries):
                entry = self._entries[name]
                if entry.gate.busy:
                    continue
                if now - entry.last_used > self.idle_ttl:
                    del self._entries[name]
                    entry.session.close()
                    self.expired += 1
                    swept.append(name)
        return swept

    def close(self) -> None:
        """Close every session and empty the registry."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.session.close()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Live session names, least-recently-used first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def stats(self) -> dict:
        """Registry-level counters for the gateway health block."""
        with self._lock:
            return {
                "sessions": len(self._entries),
                "max_sessions": self.max_sessions,
                "idle_ttl": self.idle_ttl,
                "created": self.created,
                "evicted": self.evicted,
                "expired": self.expired,
            }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _default(self) -> SessionConfig:
        """The shared default config (environment resolved exactly once)."""
        if self._default_config is None:
            self._default_config = SessionConfig()
        return self._default_config

    def _evict_lru_idle(self) -> bool:
        """Drop the least-recently-used idle session; False if all busy."""
        for name in list(self._entries):
            entry = self._entries[name]
            if not entry.gate.busy:
                del self._entries[name]
                entry.session.close()
                self.evicted += 1
                return True
        return False
